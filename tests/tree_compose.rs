//! Cross-layer properties of hierarchical (tree) composition and the
//! out-of-core edge arena.
//!
//! Three families, all over randomly generated protocol inputs:
//!
//! * **Concat-vs-union pinning** — `solve_composed_matching` now solves the
//!   coreset edge slices in machine order without materializing the union
//!   `Graph`; against protocol coresets (edge-disjoint by construction) its
//!   answer must be **bit-identical** to the frozen union path
//!   (`Graph::union` + warm-started solve), re-implemented here as the
//!   reference.
//! * **Flat-vs-tree equivalence** — the tree-composed matching is valid for
//!   the original graph and at least the best single machine's coreset (every
//!   merge solves a union containing each child matching); the tree-composed
//!   vertex cover is feasible for the original graph.
//! * **Arena round-trip** — a partition written to an arena file and streamed
//!   back through the out-of-core tree runner gives the bit-identical answer
//!   to the in-memory tree protocol on the same seed.

use coresets::matching_coreset::{MatchingCoresetBuilder, MaximumMatchingCoreset};
use coresets::vc_coreset::{PeelingVcCoreset, VcCoresetBuilder, VcCoresetOutput};
use coresets::{
    machine_rng, solve_composed_matching, tree_compose_vertex_cover, tree_solve_matching,
    CoresetParams,
};
use distsim::{ArenaProtocol, CoordinatorProtocol};
use graph::partition::{PartitionStrategy, PartitionedGraph};
use graph::Graph;
use matching::matching::{edges_form_matching, Matching};
use matching::maximum::{maximum_matching_warm, maximum_matching_with, MaximumMatchingAlgorithm};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a random simple graph with up to `max_n` vertices and a
/// density-controlled number of random edges.
fn arb_graph(max_n: usize, max_extra_edges: usize) -> impl Strategy<Value = Graph> {
    (8usize..max_n, 0usize..max_extra_edges, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        graph::gen::er::gnm(n, m.min(n * (n - 1) / 2), &mut rng)
    })
}

/// Builds the protocol's matching coresets exactly as the coordinator does:
/// random `k`-partition drawn from `seed`, one maximum-matching coreset per
/// piece on its `(seed, machine)` stream.
fn matching_coresets(g: &Graph, k: usize, seed: u64) -> Vec<Graph> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let part = PartitionedGraph::random(g, k, &mut rng).unwrap();
    let params = CoresetParams::new(g.n(), k);
    part.views()
        .iter()
        .enumerate()
        .map(|(i, piece)| {
            MaximumMatchingCoreset::new().build(*piece, &params, i, &mut machine_rng(seed, i))
        })
        .collect()
}

/// The frozen pre-concat composition path, kept as the reference: materialize
/// the first-occurrence-preserving union, warm-start from the first
/// maximal-size coreset that is a valid matching, and solve.
fn union_path_reference(coresets: &[Graph], algorithm: MaximumMatchingAlgorithm) -> Matching {
    let refs: Vec<&Graph> = coresets.iter().collect();
    let union = Graph::union(&refs);
    let mut best: Option<usize> = None;
    for (i, c) in coresets.iter().enumerate() {
        if edges_form_matching(c.edges()) && c.m() > best.map_or(0, |b| coresets[b].m()) {
            best = Some(i);
        }
    }
    match best.map(|i| Matching::try_from_edges(coresets[i].edges().to_vec()).unwrap()) {
        Some(warm) => maximum_matching_warm(&union, &warm, algorithm),
        None => maximum_matching_with(&union, algorithm),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The unmaterialized concat composition is bit-identical to the frozen
    /// union path on protocol coresets (edge-disjoint by construction).
    #[test]
    fn concat_composition_is_bit_identical_to_the_union_path(
        g in arb_graph(140, 700),
        k in 1usize..9,
        seed in any::<u64>(),
    ) {
        let coresets = matching_coresets(&g, k, seed);
        let concat = solve_composed_matching(&coresets, MaximumMatchingAlgorithm::Auto);
        let union = union_path_reference(&coresets, MaximumMatchingAlgorithm::Auto);
        prop_assert_eq!(concat.edges(), union.edges());
    }

    /// The tree-composed matching is valid for the original graph and never
    /// smaller than the best single machine's coreset: every merge solves a
    /// union that contains each child matching whole.
    #[test]
    fn tree_matching_dominates_every_single_machine(
        g in arb_graph(140, 700),
        k in 2usize..10,
        fan_in in 2usize..5,
        seed in any::<u64>(),
    ) {
        let coresets = matching_coresets(&g, k, seed);
        let best = coresets.iter().map(Graph::m).max().unwrap_or(0);
        let params = CoresetParams::new(g.n(), k);
        let answer = tree_solve_matching(
            g.n(),
            coresets,
            &MaximumMatchingCoreset::new(),
            &params,
            seed,
            fan_in,
            MaximumMatchingAlgorithm::Auto,
        );
        prop_assert!(answer.is_valid_for(&g));
        prop_assert!(
            answer.len() >= best,
            "tree answer {} below best single coreset {}", answer.len(), best
        );
    }

    /// The tree-composed vertex cover covers the original graph for every
    /// shape of the tree.
    #[test]
    fn tree_vertex_cover_is_feasible(
        g in arb_graph(140, 500),
        k in 2usize..9,
        fan_in in 2usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let part = PartitionedGraph::random(&g, k, &mut rng).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let outputs: Vec<VcCoresetOutput> = part
            .views()
            .iter()
            .enumerate()
            .map(|(i, piece)| {
                PeelingVcCoreset::new().build(*piece, &params, i, &mut machine_rng(seed, i))
            })
            .collect();
        let cover = tree_compose_vertex_cover(
            g.n(),
            outputs,
            &PeelingVcCoreset::new(),
            &params,
            seed,
            fan_in,
        );
        prop_assert!(cover.covers(&g));
    }
}

/// End-to-end arena round trip: the out-of-core tree runner over a written
/// arena file reproduces the in-memory tree protocol bit-for-bit, for both
/// problems.
#[test]
fn arena_tree_runs_match_the_in_memory_protocol() {
    let (k, fan_in, seed) = (11, 2, 97);
    let g = graph::gen::er::gnp(900, 0.012, &mut ChaCha8Rng::seed_from_u64(3));
    // The partition the coordinator would draw from this seed.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let partition = PartitionedGraph::new(&g, k, PartitionStrategy::Random, &mut rng).unwrap();
    let path = std::env::temp_dir().join(format!("rc_tree_compose_it_{}.bin", std::process::id()));
    graph::write_arena_file(&path, &partition).unwrap();
    let arena = graph::ArenaFile::open(&path).unwrap();

    let mem_matching = CoordinatorProtocol::tree(k, fan_in)
        .run_matching(&g, &MaximumMatchingCoreset::new(), seed)
        .unwrap();
    let ooc_matching = ArenaProtocol::tree(fan_in)
        .run_matching(&arena, &MaximumMatchingCoreset::new(), seed)
        .unwrap();
    assert_eq!(mem_matching.answer.edges(), ooc_matching.answer.edges());
    assert_eq!(mem_matching.communication, ooc_matching.communication);
    assert_eq!(mem_matching.piece_sizes, ooc_matching.piece_sizes);

    let mem_cover = CoordinatorProtocol::tree(k, fan_in)
        .run_vertex_cover(&g, &PeelingVcCoreset::new(), seed)
        .unwrap();
    let ooc_cover = ArenaProtocol::tree(fan_in)
        .run_vertex_cover(&arena, &PeelingVcCoreset::new(), seed)
        .unwrap();
    assert_eq!(mem_cover.answer, ooc_cover.answer);
    assert!(mem_cover.answer.covers(&g));

    std::fs::remove_file(&path).unwrap();
}
