//! Property-based tests (proptest) for the invariants the paper's analysis
//! rests on, exercised across the whole crate stack with randomly generated
//! graphs, machine counts and seeds.

use coresets::compose::{compose_vertex_cover, solve_composed_matching};
use coresets::matching_coreset::{MatchingCoresetBuilder, MaximumMatchingCoreset};
use coresets::vc_coreset::{PeelingVcCoreset, VcCoresetBuilder, VcCoresetOutput};
use coresets::{machine_rng, CoresetParams, DistributedMatching, DistributedVertexCover};
use graph::partition::EdgePartition;
use graph::{Graph, GraphRef};
use matching::greedy::maximal_matching;
use matching::matching::brute_force_maximum_matching_size;
use matching::maximum::{maximum_matching, MaximumMatchingAlgorithm};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vertexcover::approx::two_approx_cover;
use vertexcover::exact::{exact_cover_branch_and_bound, koenig_cover};

/// Strategy: a random simple graph with up to `max_n` vertices and a
/// density-controlled number of random edges.
fn arb_graph(max_n: usize, max_extra_edges: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_n, 0usize..max_extra_edges, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        graph::gen::er::gnm(n, m.min(n * (n - 1) / 2), &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random k-partitioning is a partition: nothing lost, nothing duplicated.
    #[test]
    fn partition_preserves_edges(g in arb_graph(120, 500), k in 1usize..12, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let part = EdgePartition::random(&g, k, &mut rng).unwrap();
        prop_assert_eq!(part.total_edges(), g.m());
        prop_assert_eq!(part.reunite().m(), g.m());
    }

    /// Maximum matching is at least as large as any maximal matching, and at
    /// most twice it; on small graphs it equals the brute-force optimum.
    #[test]
    fn matching_algorithms_are_consistent(g in arb_graph(40, 120)) {
        let maximal = maximal_matching(&g);
        let maximum = maximum_matching(&g);
        prop_assert!(maximum.is_valid_for(&g));
        prop_assert!(maximal.is_valid_for(&g));
        prop_assert!(maximum.len() >= maximal.len());
        prop_assert!(2 * maximal.len() >= maximum.len());
        if g.m() <= 22 {
            prop_assert_eq!(maximum.len(), brute_force_maximum_matching_size(&g));
        }
    }

    /// Weak duality and the 2-approximation: |max matching| <= |min VC| <= 2 |max matching|,
    /// and the 2-approximate cover is always feasible.
    #[test]
    fn matching_vertex_cover_duality(g in arb_graph(26, 60)) {
        let mm = maximum_matching(&g).len();
        let cover = exact_cover_branch_and_bound(&g);
        prop_assert!(cover.covers(&g));
        prop_assert!(cover.len() >= mm);
        prop_assert!(cover.len() <= 2 * mm);
        let approx = two_approx_cover(&g);
        prop_assert!(approx.covers(&g));
        prop_assert!(approx.len() <= 2 * cover.len().max(1));
    }

    /// König's theorem on random bipartite graphs: |min VC| == |max matching|.
    #[test]
    fn koenig_duality(left in 1usize..20, right in 1usize..20, m in 0usize..80, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let p = (m as f64 / (left * right) as f64).min(1.0);
        let bg = graph::gen::bipartite::random_bipartite(left, right, p, &mut rng);
        let cover = koenig_cover(&bg);
        let flat = bg.to_graph();
        prop_assert!(cover.covers(&flat));
        prop_assert_eq!(cover.len(), matching::hopcroft_karp::hopcroft_karp_size(&bg));
    }

    /// The composed matching coreset always yields a valid matching of the
    /// original graph, never exceeds the optimum, and each machine's coreset
    /// is a matching (<= n/2 edges).
    #[test]
    fn matching_coreset_composition_is_sound(g in arb_graph(80, 400), k in 1usize..8, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let part = EdgePartition::random(&g, k, &mut rng).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let coresets: Vec<Graph> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| MaximumMatchingCoreset::new().build(p.as_view(), &params, i, &mut machine_rng(seed, i)))
            .collect();
        for c in &coresets {
            prop_assert!(c.m() <= g.n() / 2 + 1);
        }
        let composed = solve_composed_matching(&coresets, MaximumMatchingAlgorithm::Auto);
        prop_assert!(composed.is_valid_for(&g));
        let opt = maximum_matching(&g).len();
        prop_assert!(composed.len() <= opt);
        // Composition is at least as good as the best single machine's coreset.
        let best_single = coresets.iter().map(Graph::m).max().unwrap_or(0);
        prop_assert!(composed.len() >= best_single);
    }

    /// The coordinator's warm-started composed solve (seeded from the best
    /// per-machine coreset) returns exactly the size of a cold maximum
    /// matching of the same union — warm starts save work, never quality.
    #[test]
    fn warm_started_composed_solve_size_identical_to_cold(
        g in arb_graph(90, 500), k in 1usize..8, seed in any::<u64>()
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let part = EdgePartition::random(&g, k, &mut rng).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let coresets: Vec<Graph> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| MaximumMatchingCoreset::new().build(p.as_view(), &params, i, &mut machine_rng(seed, i)))
            .collect();
        // Warm-started path (solve_composed_matching seeds from the best
        // coreset) vs a cold solve of the identical union.
        let warm = solve_composed_matching(&coresets, MaximumMatchingAlgorithm::Auto);
        let union = coresets::compose_matching(&coresets);
        let cold = matching::maximum::maximum_matching_with(&union, MaximumMatchingAlgorithm::Auto);
        prop_assert!(warm.is_valid_for(&union));
        prop_assert_eq!(warm.len(), cold.len());
    }

    /// The composed vertex-cover coreset always covers the original graph, and
    /// its size never exceeds n.
    #[test]
    fn vc_coreset_composition_always_covers(g in arb_graph(80, 400), k in 1usize..8, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let part = EdgePartition::random(&g, k, &mut rng).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let outputs: Vec<VcCoresetOutput> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| PeelingVcCoreset::new().build(p.as_view(), &params, i, &mut machine_rng(seed, i)))
            .collect();
        let cover = compose_vertex_cover(&outputs);
        prop_assert!(cover.covers(&g));
        prop_assert!(cover.len() <= g.n());
    }

    /// End-to-end pipeline: the composed matching is never smaller than the
    /// best single machine's matching — composition can only help, since the
    /// union of the coresets contains every machine's maximum matching.
    #[test]
    fn composed_matching_dominates_best_single_machine(g in arb_graph(90, 400), k in 1usize..9, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let part = EdgePartition::random(&g, k, &mut rng).unwrap();
        let best_single = part
            .pieces()
            .iter()
            .map(|p| maximum_matching(p).len())
            .max()
            .unwrap_or(0);
        let run = DistributedMatching::new(k).run_on_partition(g.n(), &graph::views_of(part.pieces()), seed);
        prop_assert!(run.matching.is_valid_for(&g));
        prop_assert!(
            run.matching.len() >= best_single,
            "composed {} < best single machine {best_single}",
            run.matching.len()
        );
    }

    /// End-to-end pipeline: the composed vertex cover is always a feasible
    /// cover of the original graph, and by weak duality never smaller than
    /// the maximum-matching lower bound.
    #[test]
    fn composed_cover_is_valid_and_dominates_matching_bound(g in arb_graph(90, 400), k in 1usize..9, seed in any::<u64>()) {
        let run = DistributedVertexCover::new(k).run(&g, seed).unwrap();
        prop_assert!(run.cover.covers(&g));
        let mm = maximum_matching(&g).len();
        prop_assert!(
            run.cover.len() >= mm,
            "cover {} below the maximum-matching lower bound {mm}",
            run.cover.len()
        );
    }

    /// GreedyMatch (the paper's analysis vehicle) never produces an invalid
    /// matching and is never larger than solving the composed graph exactly.
    #[test]
    fn greedy_match_is_dominated_by_exact_composition(g in arb_graph(60, 250), k in 1usize..6, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let part = EdgePartition::random(&g, k, &mut rng).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let coresets: Vec<Graph> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| MaximumMatchingCoreset::new().build(p.as_view(), &params, i, &mut machine_rng(seed, i)))
            .collect();
        let (greedy, trace) = coresets::greedy_match::greedy_match(g.n(), &coresets);
        prop_assert!(greedy.is_valid_for(&g));
        prop_assert_eq!(greedy.len(), trace.final_size());
        let exact = solve_composed_matching(&coresets, MaximumMatchingAlgorithm::Auto);
        prop_assert!(greedy.len() <= exact.len());
        // GreedyMatch extends the first coreset greedily, so it is at least as
        // large as the largest single coreset it saw first.
        if let Some(first) = coresets.first() {
            prop_assert!(greedy.len() >= first.m());
        }
    }
}
