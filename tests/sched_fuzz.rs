//! Scheduler-fuzz race detection: every protocol's complete output must be
//! bit-identical under adversarial worker schedules.
//!
//! `tests/determinism.rs` shows outputs don't depend on the worker *count*;
//! this suite shows they don't depend on worker *timing* either. The vendored
//! rayon's `RC_SCHED_FUZZ` mode (see `vendor/rayon/src/lib.rs`,
//! `sched_fuzz`) cuts each parallel fan-out into ~4 chunks per worker,
//! permutes the dispatch queue with a seed-derived schedule, lets the workers
//! race for chunks, and yields the OS scheduler at every chunk boundary. A
//! protocol whose answer leaks execution order — a machine result written
//! into shared state as it completes, an RNG stream drawn inside the
//! fan-out — diverges under some schedule; a correct one never moves.
//!
//! Coverage: three protocol families (coordinator, MapReduce, pipeline
//! runners) × [`FUZZ_SEEDS`] seeds = 36 fuzzed schedules at 4 worker
//! threads, each fingerprinted against the fuzz-off single-thread baseline.
//! Every individual protocol run issues at least one multi-chunk parallel
//! fan-out per seed, so each (protocol, seed) pair genuinely exercises a
//! distinct dispatch permutation (the per-process call counter advances the
//! schedule on every parallel call).

use coresets::matching_coreset::{MaximumMatchingCoreset, SubsampledMatchingCoreset};
use coresets::vc_coreset::PeelingVcCoreset;
use coresets::{DistributedMatching, DistributedVertexCover};
use distsim::coordinator::CoordinatorProtocol;
use distsim::mapreduce::{MapReduceConfig, MapReduceSimulator};
use graph::gen::er::gnp;
use graph::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::sched_fuzz::with_fuzz;
use rayon::ThreadPoolBuilder;

/// Twelve fuzz seeds per protocol family; 3 × 12 = 36 adversarial schedules,
/// comfortably above the 32-schedule floor this suite promises.
const FUZZ_SEEDS: [u64; 12] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233];

/// Worker count for the fuzzed runs; with ~4 chunks per worker each fan-out
/// has 16 schedulable chunks.
const FUZZ_THREADS: usize = 4;

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("vendored pool builder is infallible")
        .install(f)
}

/// Runs `f` once sequentially with fuzzing forced off, then once per fuzz
/// seed at [`FUZZ_THREADS`] workers, asserting every fuzzed output equals the
/// baseline.
fn assert_fuzz_invariant<T: PartialEq + std::fmt::Debug>(label: &str, f: impl Fn() -> T) {
    let baseline = with_fuzz(None, || with_threads(1, &f));
    for &seed in &FUZZ_SEEDS {
        let fuzzed = with_fuzz(Some(seed), || with_threads(FUZZ_THREADS, &f));
        assert_eq!(
            fuzzed, baseline,
            "{label}: output diverged under fuzzed schedule seed {seed}"
        );
    }
}

fn workload(n: usize, p: f64, seed: u64) -> Graph {
    gnp(n, p, &mut ChaCha8Rng::seed_from_u64(seed))
}

/// Coordinator protocol, matching side. `SubsampledMatchingCoreset` consumes
/// its per-machine RNG stream, so this also proves the streams stay decoupled
/// from chunk dispatch order.
#[test]
fn coordinator_protocols_survive_fuzzed_schedules() {
    let g = workload(800, 0.015, 101);
    assert_fuzz_invariant("coordinator/matching", || {
        let run = CoordinatorProtocol::random(8)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 61)
            .unwrap();
        (
            run.answer.edges().to_vec(),
            run.communication,
            run.piece_sizes,
        )
    });
    assert_fuzz_invariant("coordinator/matching-subsampled", || {
        let run = CoordinatorProtocol::random(8)
            .run_matching(&g, &SubsampledMatchingCoreset::new(3.0), 62)
            .unwrap();
        (run.answer.edges().to_vec(), run.communication)
    });
    assert_fuzz_invariant("coordinator/vertex-cover", || {
        let run = CoordinatorProtocol::random(8)
            .run_vertex_cover(&g, &PeelingVcCoreset::new(), 63)
            .unwrap();
        (
            run.answer.sorted_vertices(),
            run.communication,
            run.piece_sizes,
        )
    });
}

/// MapReduce simulator, both problems: round structure and memory accounting
/// must be schedule-independent too, not just the answers.
#[test]
fn mapreduce_protocols_survive_fuzzed_schedules() {
    let g = workload(600, 0.02, 102);
    let cfg = MapReduceConfig::paper_defaults(600);
    assert_fuzz_invariant("mapreduce/matching", || {
        let out = MapReduceSimulator::new(cfg)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 64)
            .unwrap();
        (
            out.answer.edges().to_vec(),
            out.rounds,
            out.within_memory_budget,
        )
    });
    assert_fuzz_invariant("mapreduce/vertex-cover", || {
        let out = MapReduceSimulator::new(cfg)
            .run_vertex_cover(&g, &PeelingVcCoreset::new(), 65)
            .unwrap();
        (
            out.answer.sorted_vertices(),
            out.rounds,
            out.within_memory_budget,
        )
    });
}

/// The high-level pipeline runners (partition → per-machine coreset →
/// composition), matching and vertex cover together.
#[test]
fn pipeline_runners_survive_fuzzed_schedules() {
    let g = workload(700, 0.015, 103);
    assert_fuzz_invariant("pipeline/matching+vertex-cover", || {
        let m = DistributedMatching::new(6).run(&g, 66).unwrap();
        let c = DistributedVertexCover::new(6).run(&g, 66).unwrap();
        (
            m.matching.edges().to_vec(),
            m.coreset_sizes,
            m.piece_sizes,
            c.cover.sorted_vertices(),
            c.coreset_sizes,
        )
    });
}

/// Sanity check on the detector itself: fuzzing genuinely perturbs execution
/// order (otherwise the suite above would be vacuous). Records the order
/// items are *processed* in and requires at least one seed to reorder it.
#[test]
fn fuzzing_perturbs_execution_order() {
    use rayon::prelude::*;
    use std::sync::Mutex;
    let mut saw_reordering = false;
    for &seed in &FUZZ_SEEDS {
        let trace: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let _: Vec<usize> = with_fuzz(Some(seed), || {
            with_threads(FUZZ_THREADS, || {
                (0..512usize)
                    .into_par_iter()
                    .map(|x| {
                        trace.lock().unwrap().push(x);
                        x
                    })
                    .collect()
            })
        });
        if trace.into_inner().unwrap().windows(2).any(|w| w[0] > w[1]) {
            saw_reordering = true;
            break;
        }
    }
    assert!(
        saw_reordering,
        "no fuzz seed perturbed execution order; the race detector is inert"
    );
}
