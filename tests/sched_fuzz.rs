//! Scheduler-fuzz race detection: every protocol's complete output must be
//! bit-identical under adversarial worker schedules.
//!
//! `tests/determinism.rs` shows outputs don't depend on the worker *count*;
//! this suite shows they don't depend on worker *timing* either. The vendored
//! rayon's `RC_SCHED_FUZZ` mode (see `vendor/rayon/src/lib.rs`,
//! `sched_fuzz`) runs the ordinary work-stealing engine — 8 size-capped
//! chunks per worker, workers racing an atomic cursor for chunks — under a
//! seed-derived *permutation* of the dispatch queue, with an OS yield at
//! every chunk boundary. A protocol whose answer leaks execution order — a
//! machine result written into shared state as it completes, an RNG stream
//! drawn inside the fan-out — diverges under some schedule; a correct one
//! never moves.
//!
//! Coverage: three protocol families (coordinator, MapReduce, pipeline
//! runners) × [`FUZZ_SEEDS`] seeds = 36 fuzzed schedules at 4 worker
//! threads, each fingerprinted against the fuzz-off single-thread baseline;
//! plus a skewed adversarial partition swept over seeds × 1/2/4 workers
//! (the regime work stealing exists for), a synthetic skewed-chunk-cost
//! sweep, and a proptest that the work-stealing `par_iter` is bit-identical
//! to sequential for arbitrary item counts, thread counts and fuzz seeds.
//! Every individual protocol run issues at least one multi-chunk parallel
//! fan-out per seed, so each (protocol, seed) pair genuinely exercises a
//! distinct dispatch permutation (the per-process call counter advances the
//! schedule on every parallel call).

use coresets::matching_coreset::{MaximumMatchingCoreset, SubsampledMatchingCoreset};
use coresets::vc_coreset::PeelingVcCoreset;
use coresets::{DistributedMatching, DistributedVertexCover};
use distsim::coordinator::CoordinatorProtocol;
use distsim::mapreduce::{MapReduceConfig, MapReduceSimulator};
use graph::gen::er::gnp;
use graph::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::sched_fuzz::with_fuzz;
use rayon::ThreadPoolBuilder;

/// Twelve fuzz seeds per protocol family; 3 × 12 = 36 adversarial schedules,
/// comfortably above the 32-schedule floor this suite promises.
const FUZZ_SEEDS: [u64; 12] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233];

/// Worker count for the fuzzed runs; with 8 chunks per worker each fan-out
/// has up to 32 schedulable chunks.
const FUZZ_THREADS: usize = 4;

/// Thread sweep for the skew-focused tests: the work-stealing queue must be
/// invisible at one worker (pure sequential), two, and four.
const SWEEP_THREADS: [usize; 3] = [1, 2, 4];

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("vendored pool builder is infallible")
        .install(f)
}

/// Runs `f` once sequentially with fuzzing forced off, then once per fuzz
/// seed at [`FUZZ_THREADS`] workers, asserting every fuzzed output equals the
/// baseline.
fn assert_fuzz_invariant<T: PartialEq + std::fmt::Debug>(label: &str, f: impl Fn() -> T) {
    let baseline = with_fuzz(None, || with_threads(1, &f));
    for &seed in &FUZZ_SEEDS {
        let fuzzed = with_fuzz(Some(seed), || with_threads(FUZZ_THREADS, &f));
        assert_eq!(
            fuzzed, baseline,
            "{label}: output diverged under fuzzed schedule seed {seed}"
        );
    }
}

fn workload(n: usize, p: f64, seed: u64) -> Graph {
    gnp(n, p, &mut ChaCha8Rng::seed_from_u64(seed))
}

/// Coordinator protocol, matching side. `SubsampledMatchingCoreset` consumes
/// its per-machine RNG stream, so this also proves the streams stay decoupled
/// from chunk dispatch order.
#[test]
fn coordinator_protocols_survive_fuzzed_schedules() {
    let g = workload(800, 0.015, 101);
    assert_fuzz_invariant("coordinator/matching", || {
        let run = CoordinatorProtocol::random(8)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 61)
            .unwrap();
        (
            run.answer.edges().to_vec(),
            run.communication,
            run.piece_sizes,
        )
    });
    assert_fuzz_invariant("coordinator/matching-subsampled", || {
        let run = CoordinatorProtocol::random(8)
            .run_matching(&g, &SubsampledMatchingCoreset::new(3.0), 62)
            .unwrap();
        (run.answer.edges().to_vec(), run.communication)
    });
    assert_fuzz_invariant("coordinator/vertex-cover", || {
        let run = CoordinatorProtocol::random(8)
            .run_vertex_cover(&g, &PeelingVcCoreset::new(), 63)
            .unwrap();
        (
            run.answer.sorted_vertices(),
            run.communication,
            run.piece_sizes,
        )
    });
}

/// MapReduce simulator, both problems: round structure and memory accounting
/// must be schedule-independent too, not just the answers.
#[test]
fn mapreduce_protocols_survive_fuzzed_schedules() {
    let g = workload(600, 0.02, 102);
    let cfg = MapReduceConfig::paper_defaults(600);
    assert_fuzz_invariant("mapreduce/matching", || {
        let out = MapReduceSimulator::new(cfg)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 64)
            .unwrap();
        (
            out.answer.edges().to_vec(),
            out.rounds,
            out.within_memory_budget,
        )
    });
    assert_fuzz_invariant("mapreduce/vertex-cover", || {
        let out = MapReduceSimulator::new(cfg)
            .run_vertex_cover(&g, &PeelingVcCoreset::new(), 65)
            .unwrap();
        (
            out.answer.sorted_vertices(),
            out.rounds,
            out.within_memory_budget,
        )
    });
}

/// The high-level pipeline runners (partition → per-machine coreset →
/// composition), matching and vertex cover together.
#[test]
fn pipeline_runners_survive_fuzzed_schedules() {
    let g = workload(700, 0.015, 103);
    assert_fuzz_invariant("pipeline/matching+vertex-cover", || {
        let m = DistributedMatching::new(6).run(&g, 66).unwrap();
        let c = DistributedVertexCover::new(6).run(&g, 66).unwrap();
        (
            m.matching.edges().to_vec(),
            m.coreset_sizes,
            m.piece_sizes,
            c.cover.sorted_vertices(),
            c.coreset_sizes,
        )
    });
}

/// The regime work stealing exists for: an **adversarial sorted-chunk
/// partition** concentrates dense subgraph structure on few machines, so the
/// fan-out's chunks have wildly uneven costs. Swept over fuzz seeds ×
/// 1/2/4 workers — every (seed, thread-count) cell must reproduce the
/// fuzz-off single-thread baseline bit-for-bit.
#[test]
fn skewed_partitions_survive_fuzzed_schedules_at_every_thread_count() {
    let g = workload(700, 0.02, 104);
    let baseline = with_fuzz(None, || {
        with_threads(1, || {
            let run = CoordinatorProtocol::adversarial(8)
                .run_matching(&g, &MaximumMatchingCoreset::new(), 67)
                .unwrap();
            (
                run.answer.edges().to_vec(),
                run.communication,
                run.piece_sizes,
            )
        })
    });
    for &seed in &FUZZ_SEEDS[..6] {
        for threads in SWEEP_THREADS {
            let fuzzed = with_fuzz(Some(seed), || {
                with_threads(threads, || {
                    let run = CoordinatorProtocol::adversarial(8)
                        .run_matching(&g, &MaximumMatchingCoreset::new(), 67)
                        .unwrap();
                    (
                        run.answer.edges().to_vec(),
                        run.communication,
                        run.piece_sizes,
                    )
                })
            });
            assert_eq!(
                fuzzed, baseline,
                "skewed partition diverged at seed {seed} × {threads} threads"
            );
        }
    }
}

/// Synthetic skewed chunk costs: item 0 carries ~half the total work (a
/// power-law cost curve), so under work stealing one worker chews on it
/// while the others drain hundreds of cheap chunks in racing order. Swept
/// over fuzz seeds × 1/2/4 workers against the plain sequential map.
#[test]
fn skewed_chunk_costs_keep_results_bit_identical() {
    fn busy(iters: u64, x: u64) -> u64 {
        let mut acc = x;
        for i in 0..iters {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        acc
    }
    // Power-law cost: item i costs ~50_000 / (i + 1) iterations.
    let items: Vec<u64> = (0..400).collect();
    let expected: Vec<u64> = items.iter().map(|&x| busy(50_000 / (x + 1), x)).collect();
    for &seed in &FUZZ_SEEDS[..4] {
        for threads in SWEEP_THREADS {
            let got: Vec<u64> = with_fuzz(Some(seed), || {
                with_threads(threads, || {
                    use rayon::prelude::*;
                    items
                        .par_iter()
                        .map(|&x| busy(50_000 / (x + 1), x))
                        .collect()
                })
            });
            assert_eq!(
                got, expected,
                "skewed-cost map diverged at seed {seed} × {threads} threads"
            );
        }
    }
}

mod work_stealing_properties {
    use super::*;
    use proptest::prelude::*;
    use rayon::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Work-stealing `par_iter` output is bit-identical to the sequential
        /// map for arbitrary item counts (tails included), thread counts and
        /// fuzz seeds — the scheduler contract, sampled at random instead of
        /// at hand-picked sizes.
        #[test]
        fn par_iter_is_bit_identical_to_sequential(
            len in 0usize..600,
            threads in 1usize..9,
            fuzz_raw in any::<u64>(),
        ) {
            // Half the cases run fuzz-off, half under a fuzzed schedule.
            let fuzz = if fuzz_raw.is_multiple_of(2) {
                None
            } else {
                Some(fuzz_raw)
            };
            let items: Vec<u64> = (0..len as u64).collect();
            let expected: Vec<u64> = items
                .iter()
                .map(|&x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (x >> 7))
                .collect();
            let got: Vec<u64> = with_fuzz(fuzz, || {
                with_threads(threads, || {
                    items
                        .par_iter()
                        .map(|&x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (x >> 7))
                        .collect()
                })
            });
            prop_assert_eq!(got, expected);
        }
    }
}

/// Sanity check on the detector itself: fuzzing genuinely perturbs execution
/// order (otherwise the suite above would be vacuous). Records the order
/// items are *processed* in and requires at least one seed to reorder it.
#[test]
fn fuzzing_perturbs_execution_order() {
    use rayon::prelude::*;
    use std::sync::Mutex;
    let mut saw_reordering = false;
    for &seed in &FUZZ_SEEDS {
        let trace: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let _: Vec<usize> = with_fuzz(Some(seed), || {
            with_threads(FUZZ_THREADS, || {
                (0..512usize)
                    .into_par_iter()
                    .map(|x| {
                        trace.lock().unwrap().push(x);
                        x
                    })
                    .collect()
            })
        });
        if trace.into_inner().unwrap().windows(2).any(|w| w[0] > w[1]) {
            saw_reordering = true;
            break;
        }
    }
    assert!(
        saw_reordering,
        "no fuzz seed perturbed execution order; the race detector is inert"
    );
}
