//! Cross-crate integration tests: the full pipelines of the paper, end to end.

use coresets::matching_coreset::MaximumMatchingCoreset;
use coresets::vc_coreset::PeelingVcCoreset;
use coresets::{DistributedMatching, DistributedVertexCover};
use distsim::coordinator::CoordinatorProtocol;
use distsim::mapreduce::{MapReduceConfig, MapReduceSimulator};
use distsim::protocols::filtering::filtering_matching;
use graph::gen::bipartite::planted_matching_bipartite;
use graph::gen::er::{gnm, gnp};
use graph::gen::powerlaw::chung_lu;
use graph::Graph;
use matching::maximum::{maximum_matching, maximum_matching_with, MaximumMatchingAlgorithm};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Theorem 1 bound (ratio <= 9) holds across workloads and machine counts.
#[test]
fn theorem1_bound_holds_across_workloads_and_k() {
    let mut r = rng(1);
    let workloads: Vec<Graph> = vec![
        gnp(1500, 0.004, &mut r),
        chung_lu(1500, 2.4, 5.0, &mut r),
        planted_matching_bipartite(800, 0.002, &mut r).0.to_graph(),
    ];
    for (w, g) in workloads.into_iter().enumerate() {
        let opt = maximum_matching(&g).len();
        for k in [2usize, 5, 9] {
            let result = DistributedMatching::new(k).run(&g, 100 + w as u64).unwrap();
            assert!(result.matching.is_valid_for(&g));
            assert!(
                9 * result.matching.len() >= opt,
                "workload {w}, k {k}: {} vs opt {opt}",
                result.matching.len()
            );
        }
    }
}

/// Theorem 2: the composed cover is feasible and within O(log n) of the
/// matching lower bound, across workloads and machine counts.
#[test]
fn theorem2_cover_is_feasible_and_reasonably_small() {
    let mut r = rng(2);
    let workloads: Vec<Graph> = vec![gnp(2000, 0.003, &mut r), chung_lu(2000, 2.5, 6.0, &mut r)];
    for (w, g) in workloads.into_iter().enumerate() {
        let lb = maximum_matching(&g).len().max(1);
        let log_n = (g.n() as f64).log2();
        for k in [3usize, 8] {
            let result = DistributedVertexCover::new(k)
                .run(&g, 200 + w as u64)
                .unwrap();
            assert!(result.cover.covers(&g));
            // |min VC| <= 2 * |max matching|, so cover / lb <= 2 * true ratio;
            // allow the full O(log n) slack with a constant of 4.
            assert!(
                (result.cover.len() as f64) <= 4.0 * log_n * lb as f64,
                "workload {w}, k {k}: cover {} vs bound {}",
                result.cover.len(),
                4.0 * log_n * lb as f64
            );
        }
    }
}

/// The coreset quality does not depend on which maximum-matching algorithm the
/// machines run (Theorem 1 is algorithm-agnostic).
#[test]
fn coreset_quality_is_algorithm_agnostic() {
    let mut r = rng(3);
    let g = planted_matching_bipartite(600, 0.002, &mut r).0.to_graph();
    let opt = maximum_matching(&g).len();
    let k = 6;
    for algorithm in [
        MaximumMatchingAlgorithm::HopcroftKarp,
        MaximumMatchingAlgorithm::Blossom,
    ] {
        let builder = MaximumMatchingCoreset::with_algorithm(algorithm);
        let result = DistributedMatching::with_builder(k, builder)
            .run(&g, 77)
            .unwrap();
        assert!(result.matching.is_valid_for(&g));
        assert!(9 * result.matching.len() >= opt, "{algorithm:?}");
    }
}

/// Coordinator-model protocol and the MapReduce simulation agree on quality,
/// and the MapReduce run respects its structural claims (2 rounds, memory).
#[test]
fn coordinator_and_mapreduce_agree() {
    let n = 1200;
    let g = gnm(n, 25_000, &mut rng(4));
    let opt = maximum_matching(&g).len();

    let coord = CoordinatorProtocol::random(8)
        .run_matching(&g, &MaximumMatchingCoreset::new(), 9)
        .unwrap();
    let mr = MapReduceSimulator::new(MapReduceConfig::paper_defaults(n))
        .run_matching(&g, &MaximumMatchingCoreset::new(), 9)
        .unwrap();

    assert!(coord.answer.is_valid_for(&g));
    assert!(mr.answer.is_valid_for(&g));
    assert_eq!(mr.round_count(), 2);
    assert!(mr.within_memory_budget);
    assert!(9 * coord.answer.len() >= opt);
    assert!(9 * mr.answer.len() >= opt);
}

/// The vertex-cover MapReduce pipeline is feasible and stays within budget.
#[test]
fn mapreduce_vertex_cover_pipeline() {
    let n = 1500;
    let g = gnm(n, 30_000, &mut rng(5));
    let out = MapReduceSimulator::new(MapReduceConfig::paper_defaults(n))
        .run_vertex_cover(&g, &PeelingVcCoreset::new(), 13)
        .unwrap();
    assert!(out.answer.covers(&g));
    assert_eq!(out.round_count(), 2);
    assert!(out.within_memory_budget);
}

/// The filtering baseline produces a maximal matching whose induced cover is
/// feasible; it needs more rounds than the coreset algorithm once the input
/// exceeds one machine's memory.
#[test]
fn filtering_baseline_is_correct_but_needs_more_rounds() {
    let g = gnm(800, 40_000, &mut rng(6));
    let memory = 5_000;
    let out = filtering_matching(&g, memory, 3);
    assert!(out.matching.is_valid_for(&g));
    assert!(out.matching.is_maximal_in(&g));
    assert!(out.rounds >= 3);
    assert!(out.vertex_cover().covers(&g));

    let opt = maximum_matching(&g).len();
    assert!(2 * out.matching.len() >= opt);
}

/// Everything is deterministic given the seed — the property every experiment
/// table relies on.
#[test]
fn runs_are_reproducible_across_the_stack() {
    let g = gnp(700, 0.01, &mut rng(7));
    let a = DistributedMatching::new(5).run(&g, 31).unwrap();
    let b = DistributedMatching::new(5).run(&g, 31).unwrap();
    assert_eq!(a.matching.edges(), b.matching.edges());
    assert_eq!(a.coreset_sizes, b.coreset_sizes);

    let c = DistributedVertexCover::new(5).run(&g, 31).unwrap();
    let d = DistributedVertexCover::new(5).run(&g, 31).unwrap();
    assert_eq!(c.cover.sorted_vertices(), d.cover.sorted_vertices());
}

/// Degenerate inputs flow through the whole stack without panicking.
#[test]
fn degenerate_inputs_are_handled() {
    let empty = Graph::empty(50);
    let m = DistributedMatching::new(4).run(&empty, 1).unwrap();
    assert!(m.matching.is_empty());
    let c = DistributedVertexCover::new(4).run(&empty, 1).unwrap();
    assert!(c.cover.is_empty());

    let single_edge = Graph::from_pairs(4, vec![(1, 2)]).unwrap();
    let m = DistributedMatching::new(8).run(&single_edge, 2).unwrap();
    assert_eq!(m.matching.len(), 1);
    let c = DistributedVertexCover::new(8).run(&single_edge, 2).unwrap();
    assert!(c.cover.covers(&single_edge));

    // Solving with more machines than edges.
    let tiny = gnp(30, 0.05, &mut rng(8));
    let m = DistributedMatching::new(64).run(&tiny, 3).unwrap();
    assert!(m.matching.is_valid_for(&tiny));

    // A maximum matching on one machine (k = 1) equals the true optimum.
    let g = gnp(400, 0.01, &mut rng(9));
    let opt = maximum_matching_with(&g, MaximumMatchingAlgorithm::Auto).len();
    let one = DistributedMatching::new(1).run(&g, 4).unwrap();
    assert_eq!(one.matching.len(), opt);
}
