//! Integration tests for the paper's hard distributions and the lower-bound
//! experiment machinery (Theorems 3 and 4, Section 1.2 separations).
//!
//! The `*_regression` tests promote the cap sweeps of the lower-bound
//! experiment binaries (`exp_matching_lower_bound` / E5 and
//! `exp_vc_lower_bound` / E6) into fixed-seed regressions: the *shape* of the
//! lower bound — approximation collapsing once the coreset is capped below
//! the Ω(n/α²) (matching) or Ω(n/α) (vertex cover) threshold — is asserted
//! with explicit ratio bounds, so a regression in the hard-instance
//! generators, the capping helpers, or the protocol runners trips a test
//! instead of silently bending an experiment table.

use coresets::capped::cap_vc_coreset;
use coresets::compose::compose_vertex_cover;
use coresets::matching_coreset::AvoidingMaximalMatchingCoreset;
use coresets::vc_coreset::{PeelingVcCoreset, VcCoresetBuilder, VcCoresetOutput};
use coresets::{machine_rng, CappedMatchingCoreset, CoresetParams, DistributedMatching};
use graph::gen::hard::{d_matching, d_vc, maximal_matching_trap};
use graph::partition::PartitionedGraph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// On D_Matching the uncapped coreset composition recovers a large matching,
/// while the capped coreset (below the Theorem 3 threshold) recovers much less.
#[test]
fn capped_coresets_degrade_on_d_matching() {
    let n = 3000;
    let alpha = 6.0;
    let k = 6;
    let mut r = rng(1);
    let inst = d_matching(n, alpha, k, &mut r).unwrap();
    let g = inst.graph.to_graph();
    let opt_lb = inst.matching_lower_bound();

    let uncapped = DistributedMatching::new(k).run(&g, 5).unwrap();
    let tiny_cap = ((n as f64 / (alpha * alpha)) as usize / 8).max(1);
    let capped = DistributedMatching::with_builder(k, CappedMatchingCoreset::new(tiny_cap))
        .run(&g, 5)
        .unwrap();

    assert!(uncapped.matching.is_valid_for(&g));
    assert!(capped.matching.is_valid_for(&g));
    assert!(
        uncapped.matching.len() as f64 >= 1.5 * capped.matching.len() as f64,
        "uncapped {} should clearly beat capped {}",
        uncapped.matching.len(),
        capped.matching.len()
    );
    // The uncapped composition is a constant-factor approximation of the
    // planted matching, as Theorem 1 promises.
    assert!(9 * uncapped.matching.len() >= opt_lb);
}

/// E5 promoted to a regression: sweep the per-machine cap across the
/// Theorem 3 threshold `n/α²` on D_Matching with a fixed seed and assert the
/// achieved approximation ratio (a) degrades monotonically as the cap
/// shrinks, (b) collapses past `α` for caps well below the threshold, and
/// (c) stays constant-factor for the uncapped coreset.
#[test]
fn theorem3_cap_sweep_regression() {
    let n = 3000;
    let alpha = 6.0;
    let k = 6;
    let seed = 41;
    let mut r = rng(seed);
    let inst = d_matching(n, alpha, k, &mut r).unwrap();
    let g = inst.graph.to_graph();
    let opt_lb = inst.matching_lower_bound() as f64;

    let threshold = (n as f64 / (alpha * alpha)).round() as usize; // ~83
    let caps = [threshold / 8, threshold / 2, threshold, 4 * threshold];
    let ratios: Vec<f64> = caps
        .iter()
        .map(|&cap| {
            let run = DistributedMatching::with_builder(k, CappedMatchingCoreset::new(cap))
                .run(&g, seed)
                .unwrap();
            assert!(run.matching.is_valid_for(&g));
            opt_lb / run.matching.len().max(1) as f64
        })
        .collect();

    // (a) Smaller caps never help.
    for w in ratios.windows(2) {
        assert!(
            w[0] >= w[1] * 0.95,
            "ratio should not improve as the cap shrinks: {ratios:?}"
        );
    }
    // (b) A cap 8x below the threshold is far worse than alpha-approximate.
    assert!(
        ratios[0] > alpha,
        "cap {} (threshold/8) should push the ratio past alpha = {alpha}, got {}",
        caps[0],
        ratios[0]
    );
    // (c) The uncapped protocol stays a small-constant-factor approximation.
    let uncapped = DistributedMatching::new(k).run(&g, seed).unwrap();
    let uncapped_ratio = opt_lb / uncapped.matching.len().max(1) as f64;
    assert!(
        uncapped_ratio <= 3.0,
        "uncapped ratio {uncapped_ratio} should be a small constant (Theorem 1)"
    );
    // And a cap comfortably above the threshold is much closer to uncapped
    // than the collapsed small-cap runs.
    assert!(
        ratios[3] <= ratios[0] / 2.0,
        "4x-threshold cap ({}) should at least halve the collapsed ratio ({})",
        ratios[3],
        ratios[0]
    );
}

/// On D_VC, capping the coreset far below n/alpha usually drops the hidden
/// edge e*, making the composed cover infeasible; the uncapped coreset always
/// covers it.
#[test]
fn capped_coresets_miss_the_hidden_edge_on_d_vc() {
    let n = 2000;
    let alpha = 8.0;
    let k = 6;
    let trials = 8;
    let mut covered_uncapped = 0;
    let mut covered_capped = 0;

    for t in 0..trials {
        let mut r = rng(100 + t);
        let inst = d_vc(n, alpha, k, &mut r).unwrap();
        let g = inst.graph.to_graph();
        let params = CoresetParams::new(g.n(), k);
        let partition = PartitionedGraph::random(&g, k, &mut r).unwrap();

        let full_outputs: Vec<VcCoresetOutput> = partition
            .views()
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                PeelingVcCoreset::new().build(p, &params, i, &mut machine_rng(100 + t, i))
            })
            .collect();
        let tiny_cap = ((n as f64 / alpha) as usize / 20).max(1);
        let capped_outputs: Vec<VcCoresetOutput> = full_outputs
            .iter()
            .map(|o| cap_vc_coreset(o, tiny_cap, &mut r))
            .collect();

        let full_cover = compose_vertex_cover(&full_outputs);
        let capped_cover = compose_vertex_cover(&capped_outputs);

        let (l, rstar) = inst.e_star;
        let r_flat = inst.graph.left_n() as u32 + rstar;
        if full_cover.contains(l) || full_cover.contains(r_flat) {
            covered_uncapped += 1;
        }
        if capped_cover.contains(l) || capped_cover.contains(r_flat) {
            covered_capped += 1;
        }
        // The uncapped composition must be a feasible cover of the whole graph.
        assert!(full_cover.covers(&g), "trial {t}");
    }
    assert_eq!(
        covered_uncapped, trials,
        "the uncapped coreset never misses e*"
    );
    assert!(
        covered_capped < trials,
        "a coreset capped 20x below n/alpha should miss e* at least once in {trials} trials"
    );
}

/// E6 promoted to a regression: sweep the cap across the Theorem 4 threshold
/// `n/α` on D_VC with fixed seeds. Below the threshold the hidden edge e* is
/// frequently dropped; at/above it, e* is (almost) always covered, and the
/// uncapped composed cover stays within the O(log n) approximation bound of
/// Theorem 2 relative to the certified optimum.
#[test]
fn theorem4_cap_sweep_regression() {
    let n = 2000;
    let alpha = 8.0;
    let k = 6;
    let trials = 10u64;
    let threshold = (n as f64 / alpha).round() as usize; // 250

    let coverage_of = |cap: usize| -> (usize, f64) {
        let mut covered = 0usize;
        let mut worst_ratio = 0.0f64;
        for t in 0..trials {
            let seed = 9000 + t;
            let mut r = rng(seed);
            let inst = d_vc(n, alpha, k, &mut r).unwrap();
            let g = inst.graph.to_graph();
            let params = CoresetParams::new(g.n(), k);
            let partition = PartitionedGraph::random(&g, k, &mut r).unwrap();
            let outputs: Vec<VcCoresetOutput> = partition
                .views()
                .into_iter()
                .enumerate()
                .map(|(i, piece)| {
                    let mut mrng = machine_rng(seed, i);
                    let full = PeelingVcCoreset::new().build(piece, &params, i, &mut mrng);
                    cap_vc_coreset(&full, cap, &mut mrng)
                })
                .collect();
            let cover = compose_vertex_cover(&outputs);
            let (l, rstar) = inst.e_star;
            let r_flat = inst.graph.left_n() as u32 + rstar;
            if cover.contains(l) || cover.contains(r_flat) {
                covered += 1;
            }
            worst_ratio = worst_ratio.max(cover.len() as f64 / inst.vc_upper_bound() as f64);
        }
        (covered, worst_ratio)
    };

    let (covered_tiny, _) = coverage_of(threshold / 10);
    let (covered_at, _) = coverage_of(2 * threshold);
    assert!(
        covered_tiny < covered_at,
        "a cap 10x below n/alpha ({covered_tiny}/{trials}) must miss e* more often than a cap \
         above it ({covered_at}/{trials})"
    );
    assert_eq!(
        covered_at, trials as usize,
        "caps above the threshold keep e* in every trial"
    );

    // Uncapped: always feasible and within the Theorem 2 O(log n) factor of
    // the certified optimum upper bound (|A| + 1).
    let (covered_uncapped, worst_ratio) = coverage_of(usize::MAX);
    assert_eq!(covered_uncapped, trials as usize);
    let log_n = (n as f64).log2();
    assert!(
        worst_ratio <= 4.0 * log_n,
        "uncapped cover ratio {worst_ratio} exceeds the 4·log2(n) = {} slack",
        4.0 * log_n
    );
}

/// The Section 1.2 trap: adversarially chosen maximal matchings compose to a
/// matching that degrades as k grows, while maximum matchings do not.
#[test]
fn trap_instance_separates_maximal_from_maximum() {
    let n = 1200;
    let mut previous_bad_ratio = 0.0;
    for k in [4usize, 16] {
        let inst = maximal_matching_trap(n, 1.0 / k as f64).unwrap();
        let avoid = AvoidingMaximalMatchingCoreset::new(inst.planted_matching.iter().copied());
        let good = DistributedMatching::new(k).run(&inst.graph, 9).unwrap();
        let bad = DistributedMatching::with_builder(k, avoid)
            .run(&inst.graph, 9)
            .unwrap();
        let opt = inst.matching_lower_bound() as f64;
        let good_ratio = opt / good.matching.len().max(1) as f64;
        let bad_ratio = opt / bad.matching.len().max(1) as f64;
        assert!(
            good_ratio <= 1.5,
            "k={k}: maximum-coreset ratio {good_ratio}"
        );
        assert!(
            bad_ratio >= 2.0,
            "k={k}: adversarial ratio should be large, got {bad_ratio}"
        );
        assert!(
            bad_ratio > previous_bad_ratio,
            "adversarial ratio should grow with k ({bad_ratio} after {previous_bad_ratio})"
        );
        previous_bad_ratio = bad_ratio;
    }
}

/// The bucket-queue peeling engine on a skewed-degree (star-heavy) graph:
/// high-degree centres force the threshold rounds to actually fire (the
/// sparse-piece pre-screen cannot short-circuit), and the engine must agree
/// with the pre-engine reference peeling round by round while the composed
/// protocol stays feasible and far below the trivial cover.
#[test]
fn bucket_queue_peeling_on_star_heavy_graph() {
    use graph::gen::er::gnp;
    use graph::gen::structured::star_forest;
    use graph::Graph;
    use vertexcover::peeling::{peel_with_thresholds, peel_with_thresholds_reference};

    // 30 stars of 600 leaves each, plus G(n, p) noise over the same vertex
    // set: a heavy-tailed degree sequence (centres ~600, noise degree ~4).
    let stars = star_forest(30, 600);
    let n = stars.n();
    let noise = gnp(n, 4.0 / n as f64, &mut rng(77));
    let g = Graph::union(&[&stars, &noise]);

    let k = 4;
    let params = CoresetParams::new(n, k);
    let schedule = params.peeling_schedule();
    assert!(
        !schedule.is_empty() && *schedule.last().unwrap() < 600,
        "the schedule must reach the star centres"
    );

    // Whole-graph peeling: engine vs reference, round by round.
    let engine_out = peel_with_thresholds(&g, &schedule);
    let reference = peel_with_thresholds_reference(&g, &schedule);
    assert_eq!(engine_out.peeled_per_round, reference.peeled_per_round);
    assert_eq!(engine_out.thresholds, reference.thresholds);
    assert_eq!(engine_out.residual, reference.residual);
    // Every centre (ids 0, 601, 1202, …) is eventually peeled.
    let peeled = engine_out.peeled_cover();
    for s in 0..30u32 {
        assert!(peeled.contains(s * 601), "centre {s} must be peeled");
    }

    // Per-piece peeling through the full protocol: feasible, and the peeled
    // centres strip the star edges out of the residual coresets, so the
    // total communication drops well below the input size.
    let vc = coresets::DistributedVertexCover::new(k).run(&g, 7).unwrap();
    assert!(vc.cover.covers(&g));
    assert!(vc.cover.len() < n, "cover must be non-trivial");
    assert!(
        vc.total_coreset_size() < g.m() - 12_000,
        "peeling the centres must strip most star edges from the coresets \
         (total {} vs m {})",
        vc.total_coreset_size(),
        g.m()
    );
}

/// Structural sanity of the hard distributions at scale (beyond the unit
/// tests): sizes and certified optima match the construction.
#[test]
fn hard_distributions_have_the_documented_structure() {
    let mut r = rng(3);
    let inst = d_matching(4000, 10.0, 8, &mut r).unwrap();
    assert_eq!(inst.a.len(), 400);
    assert_eq!(inst.planted_matching.len(), 3600);
    assert!(inst.graph.m() >= 3600 + inst.dense_edges);

    let inst = d_vc(4000, 10.0, 8, &mut r).unwrap();
    assert_eq!(inst.a.len(), 400);
    assert_eq!(inst.vc_upper_bound(), 401);
    // e* exists and is the only edge on v*.
    let v_star_edges = inst
        .graph
        .edges()
        .iter()
        .filter(|(l, _)| *l == inst.v_star)
        .count();
    assert_eq!(v_star_edges, 1);
}
