//! Integration tests for the paper's hard distributions and the lower-bound
//! experiment machinery (Theorems 3 and 4, Section 1.2 separations).

use coresets::capped::{cap_matching_coreset, cap_vc_coreset};
use coresets::compose::compose_vertex_cover;
use coresets::matching_coreset::{
    AvoidingMaximalMatchingCoreset, MatchingCoresetBuilder, MaximumMatchingCoreset,
};
use coresets::vc_coreset::{PeelingVcCoreset, VcCoresetBuilder, VcCoresetOutput};
use coresets::{CoresetParams, DistributedMatching};
use graph::gen::hard::{d_matching, d_vc, maximal_matching_trap};
use graph::partition::EdgePartition;
use graph::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// On D_Matching the uncapped coreset composition recovers a large matching,
/// while the capped coreset (below the Theorem 3 threshold) recovers much less.
#[test]
fn capped_coresets_degrade_on_d_matching() {
    let n = 3000;
    let alpha = 6.0;
    let k = 6;
    let mut r = rng(1);
    let inst = d_matching(n, alpha, k, &mut r).unwrap();
    let g = inst.graph.to_graph();
    let opt_lb = inst.matching_lower_bound();

    #[derive(Clone, Copy)]
    struct Capped {
        cap: usize,
    }
    impl MatchingCoresetBuilder for Capped {
        fn build(&self, piece: &Graph, params: &CoresetParams, machine: usize) -> Graph {
            let full = MaximumMatchingCoreset::new().build(piece, params, machine);
            let mut rng = ChaCha8Rng::seed_from_u64(machine as u64);
            cap_matching_coreset(&full, self.cap, &mut rng)
        }
        fn name(&self) -> &'static str {
            "capped"
        }
    }

    let uncapped = DistributedMatching::new(k).run(&g, 5).unwrap();
    let tiny_cap = ((n as f64 / (alpha * alpha)) as usize / 8).max(1);
    let capped = DistributedMatching::with_builder(k, Capped { cap: tiny_cap })
        .run(&g, 5)
        .unwrap();

    assert!(uncapped.matching.is_valid_for(&g));
    assert!(capped.matching.is_valid_for(&g));
    assert!(
        uncapped.matching.len() as f64 >= 1.5 * capped.matching.len() as f64,
        "uncapped {} should clearly beat capped {}",
        uncapped.matching.len(),
        capped.matching.len()
    );
    // The uncapped composition is a constant-factor approximation of the
    // planted matching, as Theorem 1 promises.
    assert!(9 * uncapped.matching.len() >= opt_lb);
}

/// On D_VC, capping the coreset far below n/alpha usually drops the hidden
/// edge e*, making the composed cover infeasible; the uncapped coreset always
/// covers it.
#[test]
fn capped_coresets_miss_the_hidden_edge_on_d_vc() {
    let n = 2000;
    let alpha = 8.0;
    let k = 6;
    let trials = 8;
    let mut covered_uncapped = 0;
    let mut covered_capped = 0;

    for t in 0..trials {
        let mut r = rng(100 + t);
        let inst = d_vc(n, alpha, k, &mut r).unwrap();
        let g = inst.graph.to_graph();
        let params = CoresetParams::new(g.n(), k);
        let partition = EdgePartition::random(&g, k, &mut r).unwrap();

        let full_outputs: Vec<VcCoresetOutput> = partition
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| PeelingVcCoreset::new().build(p, &params, i))
            .collect();
        let tiny_cap = ((n as f64 / alpha) as usize / 20).max(1);
        let capped_outputs: Vec<VcCoresetOutput> = full_outputs
            .iter()
            .map(|o| cap_vc_coreset(o, tiny_cap, &mut r))
            .collect();

        let full_cover = compose_vertex_cover(&full_outputs);
        let capped_cover = compose_vertex_cover(&capped_outputs);

        let (l, rstar) = inst.e_star;
        let r_flat = inst.graph.left_n() as u32 + rstar;
        if full_cover.contains(l) || full_cover.contains(r_flat) {
            covered_uncapped += 1;
        }
        if capped_cover.contains(l) || capped_cover.contains(r_flat) {
            covered_capped += 1;
        }
        // The uncapped composition must be a feasible cover of the whole graph.
        assert!(full_cover.covers(&g), "trial {t}");
    }
    assert_eq!(
        covered_uncapped, trials,
        "the uncapped coreset never misses e*"
    );
    assert!(
        covered_capped < trials,
        "a coreset capped 20x below n/alpha should miss e* at least once in {trials} trials"
    );
}

/// The Section 1.2 trap: adversarially chosen maximal matchings compose to a
/// matching that degrades as k grows, while maximum matchings do not.
#[test]
fn trap_instance_separates_maximal_from_maximum() {
    let n = 1200;
    let mut previous_bad_ratio = 0.0;
    for k in [4usize, 16] {
        let inst = maximal_matching_trap(n, 1.0 / k as f64).unwrap();
        let avoid = AvoidingMaximalMatchingCoreset::new(inst.planted_matching.iter().copied());
        let good = DistributedMatching::new(k).run(&inst.graph, 9).unwrap();
        let bad = DistributedMatching::with_builder(k, avoid)
            .run(&inst.graph, 9)
            .unwrap();
        let opt = inst.matching_lower_bound() as f64;
        let good_ratio = opt / good.matching.len().max(1) as f64;
        let bad_ratio = opt / bad.matching.len().max(1) as f64;
        assert!(
            good_ratio <= 1.5,
            "k={k}: maximum-coreset ratio {good_ratio}"
        );
        assert!(
            bad_ratio >= 2.0,
            "k={k}: adversarial ratio should be large, got {bad_ratio}"
        );
        assert!(
            bad_ratio > previous_bad_ratio,
            "adversarial ratio should grow with k ({bad_ratio} after {previous_bad_ratio})"
        );
        previous_bad_ratio = bad_ratio;
    }
}

/// Structural sanity of the hard distributions at scale (beyond the unit
/// tests): sizes and certified optima match the construction.
#[test]
fn hard_distributions_have_the_documented_structure() {
    let mut r = rng(3);
    let inst = d_matching(4000, 10.0, 8, &mut r).unwrap();
    assert_eq!(inst.a.len(), 400);
    assert_eq!(inst.planted_matching.len(), 3600);
    assert!(inst.graph.m() >= 3600 + inst.dense_edges);

    let inst = d_vc(4000, 10.0, 8, &mut r).unwrap();
    assert_eq!(inst.a.len(), 400);
    assert_eq!(inst.vc_upper_bound(), 401);
    // e* exists and is the only edge on v*.
    let v_star_edges = inst
        .graph
        .edges()
        .iter()
        .filter(|(l, _)| *l == inst.v_star)
        .count();
    assert_eq!(v_star_edges, 1);
}
