//! Fault-tolerance integration tests: deterministic injection, retry by
//! replay, degraded composition over survivors, and checkpoint/resume.
//!
//! Three families of guarantees are pinned here:
//!
//! * **Degradation** (proptests): for *any* non-empty set of lost machines
//!   that leaves at least one survivor, the degraded composed matching is at
//!   least the best surviving machine's own coreset answer, and the degraded
//!   vertex cover is feasible for every edge a surviving machine held.
//! * **Recovery determinism** (cross-product sweep): a run whose every
//!   machine recovers within the retry budget is bit-identical to the
//!   fault-free run — across fault seeds × forced scheduler-fuzz seeds ×
//!   1/4 worker threads, because retries replay the per-machine RNG streams
//!   and fault decisions are pure functions of `(fault_seed, site)`.
//! * **Resumability**: killing an out-of-core arena run after *every*
//!   possible leaf and resuming from its checkpoint reproduces the
//!   uninterrupted answer bit-for-bit, including under injected transient
//!   segment faults.

use coresets::matching_coreset::{MatchingCoresetBuilder, MaximumMatchingCoreset};
use coresets::streams::machine_rng;
use coresets::vc_coreset::PeelingVcCoreset;
use coresets::CoresetParams;
use distsim::coordinator::{ArenaProtocol, CoordinatorProtocol, FaultRunOptions};
use distsim::{FaultPlan, ProtocolError, RetryPolicy};
use graph::partition::{PartitionStrategy, PartitionedGraph};
use graph::{write_arena_file, ArenaFile, Graph};
use matching::maximum::maximum_matching;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::sched_fuzz::with_fuzz;
use rayon::ThreadPoolBuilder;

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("vendored pool builder is infallible")
        .install(f)
}

/// Strategy: a random simple graph with up to `max_n` vertices.
fn arb_graph(max_n: usize, max_edges: usize) -> impl Strategy<Value = Graph> {
    (8usize..max_n, 1usize..max_edges, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        graph::gen::er::gnm(n, m.min(n * (n - 1) / 2), &mut rng)
    })
}

/// Picks `f` distinct machines to lose out of `k` from `seed`, with
/// `1 <= f < k` so at least one machine survives.
fn lost_set(k: usize, f: usize, seed: u64) -> Vec<usize> {
    let mut machines: Vec<usize> = (0..k).collect();
    let mut s = seed;
    for i in (1..k).rev() {
        // Simple seeded Fisher–Yates; quality is irrelevant, determinism is.
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        machines.swap(i, (s >> 33) as usize % (i + 1));
    }
    machines.truncate(f.clamp(1, k - 1));
    machines.sort_unstable();
    machines
}

/// Rebuilds every machine's coreset exactly as the protocol does and returns
/// each machine's own answer (the maximum matching of its coreset).
fn per_machine_answers(g: &Graph, k: usize, seed: u64) -> Vec<usize> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let partition = PartitionedGraph::new(g, k, PartitionStrategy::Random, &mut rng)
        .expect("k >= 1 and proptest graphs are non-empty");
    let params = CoresetParams::new(g.n(), k);
    let builder = MaximumMatchingCoreset::new();
    partition
        .views()
        .iter()
        .enumerate()
        .map(|(i, piece)| {
            let coreset = builder.build(*piece, &params, i, &mut machine_rng(seed, i));
            maximum_matching(&coreset).len()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Losing any f >= 1 machines (with a survivor left) keeps the composed
    /// matching at least as large as the best surviving machine's own
    /// coreset answer — the graceful-degradation guarantee of randomized
    /// composable coresets.
    #[test]
    fn degraded_matching_is_at_least_the_best_survivor(
        g in arb_graph(120, 600),
        k in 2usize..7,
        f in 1usize..6,
        seed in any::<u64>(),
        pick in any::<u64>(),
    ) {
        let lost = lost_set(k, f, pick);
        let plan = FaultPlan::new(7).losing(lost.clone());
        let run = CoordinatorProtocol::random(k)
            .run_matching_faulty(&g, &MaximumMatchingCoreset::new(), seed, &plan, &RetryPolicy::default())
            .expect("a survivor remains, so composition proceeds");
        prop_assert!(run.run.answer.is_valid_for(&g));
        prop_assert_eq!(&run.faults.lost_machines, &lost);
        prop_assert!(run.faults.degraded);
        let answers = per_machine_answers(&g, k, seed);
        let best_survivor = answers
            .iter()
            .enumerate()
            .filter(|&(i, _)| !lost.contains(&i))
            .map(|(_, &a)| a)
            .max()
            .expect("at least one survivor");
        prop_assert!(
            run.run.answer.len() >= best_survivor,
            "composed {} < best survivor {}", run.run.answer.len(), best_survivor
        );
    }

    /// The degraded vertex cover stays feasible for every edge a surviving
    /// machine held (the lost machines' edges are unknowable).
    #[test]
    fn degraded_vertex_cover_is_feasible_for_survivors(
        g in arb_graph(120, 600),
        k in 2usize..7,
        f in 1usize..6,
        seed in any::<u64>(),
        pick in any::<u64>(),
    ) {
        let lost = lost_set(k, f, pick);
        let plan = FaultPlan::new(11).losing(lost.clone());
        let run = CoordinatorProtocol::random(k)
            .run_vertex_cover_faulty(&g, &PeelingVcCoreset::new(), seed, &plan, &RetryPolicy::default())
            .expect("a survivor remains, so composition proceeds");
        prop_assert!(run.faults.degraded);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let partition = PartitionedGraph::new(&g, k, PartitionStrategy::Random, &mut rng)
            .expect("k >= 1 and proptest graphs are non-empty");
        for (i, piece) in partition.views().iter().enumerate() {
            if lost.contains(&i) {
                continue;
            }
            for e in piece.edges() {
                prop_assert!(
                    run.run.answer.contains(e.u) || run.run.answer.contains(e.v),
                    "machine {}'s edge ({}, {}) uncovered", i, e.u, e.v
                );
            }
        }
    }
}

/// Fault seeds for the recovery cross-product; probabilities high enough
/// that every seed injects at least one fault at k = 6.
const FAULT_SEEDS: [u64; 3] = [0xFA11, 0xFA12, 0xFA13];
/// Forced scheduler-fuzz seeds (same adversarial-schedule machinery as
/// `tests/sched_fuzz.rs`).
const FUZZ_SEEDS: [u64; 2] = [21, 89];
/// Worker counts for the cross-product.
const THREADS: [usize; 2] = [1, 4];

/// Recovered faulty runs are bit-identical to the fault-free run across
/// fault seeds × scheduler-fuzz seeds × worker counts: 3 × (1 + 2 × 2) = 15
/// schedules per problem, one shared fault-free baseline each.
#[test]
fn recovered_runs_are_bit_identical_across_schedules_and_threads() {
    let g = graph::gen::er::gnp(500, 0.02, &mut ChaCha8Rng::seed_from_u64(3));
    let (k, seed) = (6, 17);
    let protocol = CoordinatorProtocol::random(k);
    let builder = MaximumMatchingCoreset::new();
    let vc_builder = PeelingVcCoreset::new();
    let retry = RetryPolicy::attempts(16);
    let baseline = protocol.run_matching(&g, &builder, seed).unwrap();
    let vc_baseline = protocol.run_vertex_cover(&g, &vc_builder, seed).unwrap();

    for fault_seed in FAULT_SEEDS {
        let plan = FaultPlan::machine_failure(fault_seed, 0.25);
        let run_once = || {
            let m = protocol
                .run_matching_faulty(&g, &builder, seed, &plan, &retry)
                .expect("retry budget recovers every machine");
            let c = protocol
                .run_vertex_cover_faulty(&g, &vc_builder, seed, &plan, &retry)
                .expect("retry budget recovers every machine");
            (m, c)
        };
        let (plain_m, plain_c) = run_once();
        assert!(
            plain_m.faults.injected > 0,
            "seed {fault_seed:#x} must inject"
        );
        assert!(!plain_m.faults.degraded && !plain_c.faults.degraded);
        assert_eq!(plain_m.run.answer.edges(), baseline.answer.edges());
        assert_eq!(plain_c.run.answer, vc_baseline.answer);
        assert_eq!(plain_m.run.communication, baseline.communication);

        for fuzz in FUZZ_SEEDS {
            for threads in THREADS {
                let (m, c) = with_fuzz(Some(fuzz), || with_threads(threads, run_once));
                assert_eq!(
                    m.run.answer.edges(),
                    baseline.answer.edges(),
                    "matching diverged at fault seed {fault_seed:#x}, fuzz {fuzz}, {threads} threads"
                );
                assert_eq!(
                    c.run.answer, vc_baseline.answer,
                    "cover diverged at fault seed {fault_seed:#x}, fuzz {fuzz}, {threads} threads"
                );
                // The fault accounting itself is schedule-independent too.
                assert_eq!(m.faults, plain_m.faults);
                assert_eq!(c.faults, plain_c.faults);
            }
        }
    }
}

/// Writes `g`'s protocol partition to a temp arena file.
fn arena_of(g: &Graph, k: usize, seed: u64, tag: &str) -> (ArenaFile, std::path::PathBuf) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let partition = PartitionedGraph::new(g, k, PartitionStrategy::Random, &mut rng).unwrap();
    let path = std::env::temp_dir().join(format!("rc_faults_{}_{tag}.bin", std::process::id()));
    write_arena_file(&path, &partition).unwrap();
    (ArenaFile::open(&path).unwrap(), path)
}

/// Kills a checkpointed arena run after **every** possible leaf count and
/// resumes it, asserting the final answer and communication are bit-identical
/// to the uninterrupted run — with transient segment faults injected the
/// whole time.
#[test]
fn killing_at_every_leaf_and_resuming_is_bit_identical() {
    let g = graph::gen::er::gnp(400, 0.02, &mut ChaCha8Rng::seed_from_u64(5));
    let (k, fan_in, seed) = (6, 2, 29);
    let (arena, arena_path) = arena_of(&g, k, seed, "kill_every_leaf");
    let protocol = ArenaProtocol::tree(fan_in);
    let builder = MaximumMatchingCoreset::new();

    let mut plan = FaultPlan::new(0xC4A5);
    plan.segment_io_prob = 0.3;
    let opts = FaultRunOptions {
        plan,
        retry: RetryPolicy {
            max_attempts: 12,
            backoff_ticks: 1,
        },
        ..FaultRunOptions::default()
    };
    let uninterrupted = protocol
        .run_matching_resumable(&arena, &builder, seed, &opts)
        .expect("transient faults recover within the budget");
    assert!(!uninterrupted.faults.degraded);

    for kill_at in 1..k {
        let ckpt = std::env::temp_dir().join(format!(
            "rc_faults_ckpt_{}_{kill_at}.bin",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&ckpt);
        let mut killed = opts.clone();
        killed.checkpoint = Some(ckpt.clone());
        killed.kill_after_leaves = Some(kill_at);
        let err = protocol
            .run_matching_resumable(&arena, &builder, seed, &killed)
            .expect_err("the kill knob must interrupt the run");
        assert_eq!(err, ProtocolError::Interrupted { pushed: kill_at });
        assert!(ckpt.exists(), "kill at {kill_at} must leave a checkpoint");

        killed.kill_after_leaves = None;
        let resumed = protocol
            .run_matching_resumable(&arena, &builder, seed, &killed)
            .expect("resumed run completes");
        assert_eq!(
            resumed.run.answer.edges(),
            uninterrupted.run.answer.edges(),
            "resume after kill-at-{kill_at} diverged"
        );
        assert_eq!(resumed.run.communication, uninterrupted.run.communication);
        // The merged fault accounting (checkpointed prefix + resumed suffix)
        // equals the uninterrupted run's: injection is positional, not
        // temporal.
        assert_eq!(resumed.faults, uninterrupted.faults);
        assert!(
            !ckpt.exists(),
            "completed resume must remove the checkpoint"
        );
    }
    std::fs::remove_file(arena_path).unwrap();
}

/// A checkpoint written for one run configuration is ignored by a different
/// one (different seed → different key → fresh start, same answer as an
/// unchckpointed run).
#[test]
fn checkpoints_do_not_leak_across_run_configurations() {
    let g = graph::gen::er::gnp(300, 0.025, &mut ChaCha8Rng::seed_from_u64(6));
    let (k, fan_in) = (5, 2);
    let (arena, arena_path) = arena_of(&g, k, 37, "key_isolation");
    let protocol = ArenaProtocol::tree(fan_in);
    let builder = PeelingVcCoreset::new();
    let ckpt = std::env::temp_dir().join(format!("rc_faults_ckpt_{}_key.bin", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);

    let mut opts = FaultRunOptions {
        checkpoint: Some(ckpt.clone()),
        kill_after_leaves: Some(2),
        ..FaultRunOptions::default()
    };
    let err = protocol
        .run_vertex_cover_resumable(&arena, &builder, 37, &opts)
        .expect_err("the kill knob must interrupt the run");
    assert_eq!(err, ProtocolError::Interrupted { pushed: 2 });
    assert!(ckpt.exists());

    // Same checkpoint path, different protocol seed: the stale checkpoint's
    // key mismatches, so the run starts fresh and must equal a plain run.
    opts.kill_after_leaves = None;
    let crossed = protocol
        .run_vertex_cover_resumable(&arena, &builder, 38, &opts)
        .expect("fresh run completes");
    let plain = protocol
        .run_vertex_cover(&arena, &builder, 38)
        .expect("plain run completes");
    assert_eq!(crossed.run.answer, plain.answer);
    assert_eq!(crossed.run.communication, plain.communication);
    std::fs::remove_file(arena_path).unwrap();
}
