//! Cross-thread-count determinism: for a fixed seed, every protocol's
//! **complete** output — matching edge lists, cover vertex sets, coreset
//! sizes, communication costs, MapReduce round stats — must be bit-identical
//! whether the simulated machines run on 1, 2, or 8 worker threads.
//!
//! This is the contract that makes the experiment tables in EXPERIMENTS.md
//! trustworthy on any host: parallelism may only change wall-clock time,
//! never the answer. The vendored rayon backend guarantees it by chunking
//! machines over scoped `std::thread` workers and collecting per-machine
//! results in machine order, and the protocol runners guarantee it by
//! deriving each machine's private `ChaCha8Rng` stream from `(seed, machine)`
//! *before* the parallel fan-out (see `coresets::streams`).

use coresets::matching_coreset::{MaximumMatchingCoreset, SubsampledMatchingCoreset};
use coresets::vc_coreset::PeelingVcCoreset;
use coresets::{DistributedMatching, DistributedVertexCover};
use distsim::coordinator::CoordinatorProtocol;
use distsim::mapreduce::{MapReduceConfig, MapReduceSimulator};
use graph::gen::er::gnp;
use graph::gen::hard::maximal_matching_trap;
use graph::Graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::ThreadPoolBuilder;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs `f` under a pool pinned to `threads` workers.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("vendored pool builder is infallible")
        .install(f)
}

/// Collects `f()` under every thread count and asserts all outputs are equal
/// (comparing against the 1-thread reference).
fn assert_same_across_thread_counts<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let reference = with_threads(THREAD_COUNTS[0], &f);
    for &threads in &THREAD_COUNTS[1..] {
        let got = with_threads(threads, &f);
        assert_eq!(
            got, reference,
            "output diverged between 1 and {threads} worker threads"
        );
    }
}

fn workload(n: usize, p: f64, seed: u64) -> Graph {
    gnp(n, p, &mut ChaCha8Rng::seed_from_u64(seed))
}

#[test]
fn coordinator_matching_protocol_is_thread_count_invariant() {
    let g = workload(1200, 0.01, 1);
    assert_same_across_thread_counts(|| {
        let run = CoordinatorProtocol::random(8)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 42)
            .unwrap();
        (
            run.answer.edges().to_vec(),
            run.communication,
            run.piece_sizes,
        )
    });
}

#[test]
fn coordinator_vertex_cover_protocol_is_thread_count_invariant() {
    let g = workload(1500, 0.008, 2);
    assert_same_across_thread_counts(|| {
        let run = CoordinatorProtocol::random(8)
            .run_vertex_cover(&g, &PeelingVcCoreset::new(), 43)
            .unwrap();
        (
            run.answer.sorted_vertices(),
            run.communication,
            run.piece_sizes,
        )
    });
}

#[test]
fn mapreduce_matching_is_thread_count_invariant() {
    let g = workload(900, 0.02, 3);
    let cfg = MapReduceConfig::paper_defaults(900);
    assert_same_across_thread_counts(|| {
        let out = MapReduceSimulator::new(cfg)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 44)
            .unwrap();
        (
            out.answer.edges().to_vec(),
            out.rounds,
            out.within_memory_budget,
        )
    });
}

#[test]
fn mapreduce_vertex_cover_is_thread_count_invariant() {
    let g = workload(900, 0.02, 4);
    let cfg = MapReduceConfig::paper_defaults(900);
    assert_same_across_thread_counts(|| {
        let out = MapReduceSimulator::new(cfg)
            .run_vertex_cover(&g, &PeelingVcCoreset::new(), 45)
            .unwrap();
        (
            out.answer.sorted_vertices(),
            out.rounds,
            out.within_memory_budget,
        )
    });
}

#[test]
fn pipeline_runners_are_thread_count_invariant() {
    let g = workload(1000, 0.012, 5);
    assert_same_across_thread_counts(|| {
        let m = DistributedMatching::new(6).run(&g, 46).unwrap();
        let c = DistributedVertexCover::new(6).run(&g, 46).unwrap();
        (
            m.matching.edges().to_vec(),
            m.coreset_sizes,
            m.piece_sizes,
            c.cover.sorted_vertices(),
            c.coreset_sizes,
        )
    });
}

/// The subsampled coreset (Remark 5.2) actually *consumes* its per-machine
/// RNG stream, so this is the sharpest determinism test: any coupling between
/// scheduling and randomness would show up here.
#[test]
fn rng_consuming_builder_is_thread_count_invariant() {
    let g = workload(1400, 0.015, 6);
    assert_same_across_thread_counts(|| {
        let run = CoordinatorProtocol::random(8)
            .run_matching(&g, &SubsampledMatchingCoreset::new(3.0), 47)
            .unwrap();
        (run.answer.edges().to_vec(), run.communication)
    });
}

/// The paper's hard trap instance, not just G(n,p): determinism must hold on
/// adversarial structure too.
#[test]
fn hard_instance_runs_are_thread_count_invariant() {
    let inst = maximal_matching_trap(400, 0.125).unwrap();
    assert_same_across_thread_counts(|| {
        let run = DistributedMatching::new(8).run(&inst.graph, 48).unwrap();
        (run.matching.edges().to_vec(), run.coreset_sizes)
    });
}

/// E14's engine on the protocol path, pinned: for this fixed seed the VC
/// pipeline's complete output — cover vertices and coreset sizes — is
/// bit-identical at 1 / 4 worker threads *and* matches the recorded
/// regression values, and the whole run performs zero legacy peeling-scratch
/// allocations (`graph::metrics::vc_peel_scratch_elems` untouched — the
/// "zero per-round edge-buffer reallocations" contract of the VcEngine).
#[test]
fn vc_pipeline_fixed_seed_regression_with_engine() {
    // Dense enough that the peeling rounds actually fire on the pieces.
    let g = workload(2000, 0.05, 14);
    let scratch_before = graph::metrics::vc_peel_scratch_elems();
    let run_once = || {
        let run = DistributedVertexCover::new(4).run(&g, 49).unwrap();
        (run.cover.sorted_vertices(), run.coreset_sizes)
    };
    let reference = with_threads(1, run_once);
    let parallel = with_threads(4, run_once);
    assert_eq!(parallel, reference, "1 vs 4 worker threads");
    assert_eq!(
        graph::metrics::vc_peel_scratch_elems(),
        scratch_before,
        "an engine-backed protocol run must never take the legacy peeling path"
    );

    // Fixed-seed regression: pin the exact output of the engine pipeline
    // (the peeling rounds fire here — coreset sizes are well below the
    // ~25k-edge pieces).
    let (cover, coreset_sizes) = reference;
    assert_eq!(cover.len(), 1992, "pinned cover size");
    assert_eq!(
        coreset_sizes,
        vec![17077, 17103, 17245, 16805],
        "pinned coreset sizes"
    );
    let fingerprint: u64 = cover
        .iter()
        .fold(0u64, |acc, &v| acc.wrapping_mul(31).wrapping_add(v as u64));
    assert_eq!(
        fingerprint, 0x840a_d37c_6594_3389,
        "pinned cover fingerprint"
    );
}

/// Hierarchical (tree) composition, pinned: for a fixed seed the tree-mode
/// coordinator's complete matching output is bit-identical at 1 / 4 worker
/// threads *and* under two forced scheduler-fuzz seeds, and matches the
/// recorded regression values — the `(seed, level, node)` RNG streams and the
/// node-ordered merge collection keep the whole `log k`-level merge cascade
/// schedule-independent.
#[test]
fn tree_mode_fixed_seed_regression() {
    use rayon::sched_fuzz::with_fuzz;
    let g = workload(1600, 0.01, 16);
    let run_once = || {
        let run = CoordinatorProtocol::tree(16, 2)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 50)
            .unwrap();
        run.answer.edges().to_vec()
    };
    let reference = with_threads(1, run_once);
    assert_eq!(
        with_threads(4, run_once),
        reference,
        "1 vs 4 worker threads"
    );
    for fuzz in [21u64, 89] {
        let fuzzed = with_fuzz(Some(fuzz), || with_threads(4, run_once));
        assert_eq!(fuzzed, reference, "fuzz seed {fuzz}");
    }

    // Fixed-seed regression: pin the exact tree-composed matching.
    assert_eq!(reference.len(), 749, "pinned matching size");
    let fingerprint: u64 = reference.iter().fold(0u64, |acc, e| {
        acc.wrapping_mul(31)
            .wrapping_add(e.u as u64)
            .wrapping_mul(31)
            .wrapping_add(e.v as u64)
    });
    assert_eq!(
        fingerprint, 0xe276_6ef8_03f8_513b,
        "pinned matching fingerprint"
    );
}

/// The edge-churn service, pinned: for a fixed seed a `GraphService` run —
/// batched inserts/deletes through the churn overlay, dirty-piece-only
/// coreset rebuilds, cached composition after every batch — produces a
/// complete answer stream (composed matching edges, composed cover vertices,
/// incremental sizes) that equals a from-scratch `naive_full_round` of the
/// current graph after **every** batch, is bit-identical at 1 / 4 worker
/// threads and under two forced scheduler-fuzz seeds, and matches the
/// recorded regression values.
#[test]
fn churn_service_fixed_seed_regression() {
    use distsim::{naive_full_round, GraphService, GraphServiceConfig};
    use graph::{ChurnOp, Edge};
    use rand::Rng;
    use rayon::sched_fuzz::with_fuzz;

    const SEED: u64 = 18;
    const N: usize = 600;
    const K: usize = 8;
    let g = workload(N, 0.02, SEED);

    let run_once = || {
        let cfg = GraphServiceConfig {
            k: K,
            seed: SEED,
            eps: 0.5,
        };
        let mut svc = GraphService::new(&g, cfg).expect("service");
        let mut acc = 0u64;
        for batch in 0..4u64 {
            // Deterministic churn: half fresh inserts, half deletes of
            // currently present edges, derived from (SEED, batch) only.
            let current = svc.current_graph();
            let edges = current.edges();
            let mut rng = ChaCha8Rng::seed_from_u64(SEED ^ (0xC0DE + batch));
            let mut ops = Vec::new();
            while ops.len() < 12 {
                if !edges.is_empty() && rng.gen_bool(0.5) {
                    ops.push(ChurnOp::Delete(edges[rng.gen_range(0..edges.len())]));
                } else {
                    let u = rng.gen_range(0..N as u32);
                    let v = rng.gen_range(0..N as u32);
                    if u != v {
                        ops.push(ChurnOp::Insert(Edge::new(u, v)));
                    }
                }
            }
            let outcome = svc.apply_batch(&ops).expect("batch");

            // Cached composition must equal the from-scratch batch round.
            let now = svc.current_graph();
            let (naive_m, naive_c) = naive_full_round(&now, K, SEED).expect("naive");
            assert_eq!(svc.matching(), &naive_m, "batch {batch}: matching");
            assert_eq!(svc.cover(), &naive_c, "batch {batch}: cover");

            acc ^= graph::fingerprint_edges(svc.matching().edges());
            for v in svc.cover().sorted_vertices() {
                acc = acc.wrapping_mul(31).wrapping_add(v as u64);
            }
            acc = acc
                .wrapping_mul(31)
                .wrapping_add(outcome.approx_matching_size as u64)
                .wrapping_mul(31)
                .wrapping_add(outcome.approx_cover_size as u64);
        }
        (acc, svc.matching().len(), svc.cover().len())
    };

    let reference = with_threads(1, run_once);
    assert_eq!(
        with_threads(4, run_once),
        reference,
        "1 vs 4 worker threads"
    );
    for fuzz in [21u64, 89] {
        let fuzzed = with_fuzz(Some(fuzz), || with_threads(4, run_once));
        assert_eq!(fuzzed, reference, "fuzz seed {fuzz}");
    }

    // Fixed-seed regression: pin the exact answer stream.
    let (fingerprint, matching_len, cover_len) = reference;
    assert_eq!(matching_len, 299, "pinned composed matching size");
    assert_eq!(cover_len, 556, "pinned composed cover size");
    assert_eq!(
        fingerprint, 0xbf4d_5f51_d3c5_3bf0,
        "pinned answer-stream fingerprint"
    );
}

/// Different seeds still change the answer (the determinism above is not the
/// degenerate "everything collapsed to one stream" kind).
#[test]
fn different_seeds_produce_different_subsampled_runs() {
    let g = workload(1400, 0.015, 7);
    let run = |seed| {
        CoordinatorProtocol::random(8)
            .run_matching(&g, &SubsampledMatchingCoreset::new(3.0), seed)
            .unwrap()
            .answer
            .edges()
            .to_vec()
    };
    assert_ne!(run(1), run(2), "distinct seeds should perturb the output");
}
