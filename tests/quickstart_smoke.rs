//! In-process smoke test for the five-minute tour in `examples/quickstart.rs`.
//!
//! Runs the same pipeline as the example — generate a random graph, build and
//! compose matching and vertex-cover coresets, compare against the optimum —
//! on a smaller instance so the advertised quickstart can't silently rot. If
//! the example's API calls stop compiling or its guarantees stop holding,
//! this test fails under plain `cargo test`.

use coresets::{DistributedMatching, DistributedVertexCover};
use graph::gen::er::gnp;
use matching::maximum::maximum_matching;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn quickstart_pipeline_runs_and_approximates() {
    // Same shape as examples/quickstart.rs (n = 20_000, avg degree ~8,
    // k = 16, seeds 42/7), scaled down 10x to keep the test fast.
    let n = 2_000;
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let g = gnp(n, 8.0 / n as f64, &mut rng);
    assert_eq!(g.n(), n);
    assert!(
        g.m() > 0,
        "a gnp graph with ~8n/2 expected edges is non-empty"
    );

    let k = 16;
    let opt = maximum_matching(&g).len();
    assert!(opt > 0);

    // Theorem 1: composing per-machine maximum-matching coresets is an
    // O(1)-approximation w.h.p. The quickstart advertises a small constant;
    // assert a conservative bound so the test is robust across RNG streams.
    let result = DistributedMatching::new(k).run(&g, 7).expect("k >= 1");
    assert!(!result.matching.is_empty());
    let ratio = opt as f64 / result.matching.len() as f64;
    assert!(
        ratio < 3.0,
        "matching composition ratio {ratio:.3} is far from the O(1) guarantee"
    );
    // Each machine sends at most n/2 edges (a maximum matching of its piece).
    assert!(result.total_coreset_size() <= k * (n / 2 + 1));

    // Theorem 2: the composed peeling coreset yields a feasible cover within
    // O(log n) of the optimum; the maximum matching size lower-bounds OPT.
    let result = DistributedVertexCover::new(k).run(&g, 7).expect("k >= 1");
    assert!(
        result.cover.covers(&g),
        "the composed vertex cover must cover every edge of the input"
    );
    let vc_ratio = result.cover.len() as f64 / opt as f64;
    let log_n = (n as f64).log2();
    assert!(
        vc_ratio <= 4.0 * log_n,
        "vertex-cover ratio {vc_ratio:.3} exceeds the O(log n) regime (log2 n = {log_n:.1})"
    );
}
