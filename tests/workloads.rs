//! Integration tests running the full protocols on the *realistic* workload
//! generators (R-MAT, grids, power-law) that the experiment tables do not
//! cover, plus the LP lower bound as a tighter reference for vertex cover.

use coresets::{DistributedMatching, DistributedVertexCover};
use graph::gen::powerlaw::chung_lu;
use graph::gen::rmat::{grid, rmat_graph500};
use matching::maximum::maximum_matching;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vertexcover::lp::lp_vertex_cover;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[test]
fn coresets_on_rmat_social_graph() {
    let g = rmat_graph500(11, 8, &mut rng(1)); // 2048 vertices, ~16k edges, heavy-tailed
    let opt = maximum_matching(&g).len();
    for k in [4usize, 16] {
        let m = DistributedMatching::new(k).run(&g, 17).unwrap();
        assert!(m.matching.is_valid_for(&g));
        assert!(9 * m.matching.len() >= opt, "k={k}");

        let c = DistributedVertexCover::new(k).run(&g, 17).unwrap();
        assert!(c.cover.covers(&g));
    }
}

#[test]
fn coresets_on_grid_graph() {
    // Grids are bipartite and near-regular: the opposite regime from R-MAT.
    let g = grid(40, 50); // 2000 vertices, 3910 edges
    let opt = maximum_matching(&g).len();
    assert_eq!(opt, 1000, "an even grid has a perfect matching");
    let m = DistributedMatching::new(8).run(&g, 23).unwrap();
    assert!(m.matching.is_valid_for(&g));
    assert!(9 * m.matching.len() >= opt);

    let c = DistributedVertexCover::new(8).run(&g, 23).unwrap();
    assert!(c.cover.covers(&g));
    assert!(
        c.cover.len() >= opt,
        "weak duality: any cover is at least the matching size"
    );
}

#[test]
fn lp_bound_tightens_the_vertex_cover_reference() {
    // On a power-law graph, the LP lower bound lies between the matching
    // bound and the composed cover, giving a tighter measured ratio.
    let g = chung_lu(1200, 2.4, 6.0, &mut rng(2));
    let mm = maximum_matching(&g).len() as f64;
    let lp = lp_vertex_cover(&g).objective();
    let cover = DistributedVertexCover::new(6).run(&g, 3).unwrap();
    assert!(cover.cover.covers(&g));
    assert!(lp >= mm - 1e-9);
    assert!(
        cover.cover.len() as f64 >= lp - 1e-9,
        "LP is a genuine lower bound on any cover"
    );
    // The measured ratio against the LP bound stays comfortably below log2 n.
    let ratio = cover.cover.len() as f64 / lp.max(1.0);
    assert!(ratio <= (g.n() as f64).log2(), "ratio {ratio} vs log2(n)");
}

#[test]
fn coreset_sizes_follow_the_theory_on_rmat() {
    // Matching coresets are matchings (<= n/2 edges each) even on skewed
    // inputs; vertex-cover coresets stay within O(n log n) per machine.
    let g = rmat_graph500(11, 16, &mut rng(3));
    let n = g.n();
    let k = 8;
    let m = DistributedMatching::new(k).run(&g, 7).unwrap();
    assert!(m.coreset_sizes.iter().all(|&s| s <= n / 2));
    let c = DistributedVertexCover::new(k).run(&g, 7).unwrap();
    let n_log_n = (n as f64 * (n as f64).log2()).ceil() as usize;
    assert!(c.coreset_sizes.iter().all(|&s| s <= n_log_n));
}
