//! View-vs-owned equivalence: every solver in the workspace must return
//! *identical* results on an owned `Graph` and on the corresponding zero-copy
//! `GraphView` / `Csr` — the contract that makes the arena data path a pure
//! representation change rather than a behavioural one.
//!
//! The solvers are deterministic functions of `(n, edge sequence)`, so
//! identical inputs through either representation must produce bit-identical
//! outputs; these properties pin that down across random inputs, and also
//! check solvers on arena pieces against the same pieces materialized as
//! owned graphs.

use graph::gen::er::gnm;
use graph::partition::{PartitionStrategy, PartitionedGraph};
use graph::{Csr, Graph, GraphRef};
use matching::blossom::blossom_maximum_matching;
use matching::greedy::{maximal_matching, maximal_matching_by_key, maximal_matching_shuffled};
use matching::maximum::{maximum_matching, two_coloring};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vertexcover::approx::{greedy_degree_cover, two_approx_cover};
use vertexcover::exact::exact_cover_branch_and_bound;
use vertexcover::lp::lp_vertex_cover;
use vertexcover::peeling::{parnas_ron_peeling, peel_with_thresholds};

fn arb_graph(max_n: usize, density: f64) -> impl Strategy<Value = Graph> {
    (2usize..max_n, any::<u64>()).prop_map(move |(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let max_m = n * (n - 1) / 2;
        gnm(n, ((max_m as f64) * density) as usize, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Matching solvers: identical outputs on `Graph` and `GraphView`.
    #[test]
    fn matching_solvers_agree_on_view_and_owned(g in arb_graph(70, 0.08), seed in any::<u64>()) {
        let v = g.as_view();
        prop_assert_eq!(maximal_matching(&g), maximal_matching(&v));
        prop_assert_eq!(blossom_maximum_matching(&g), blossom_maximum_matching(&v));
        prop_assert_eq!(maximum_matching(&g), maximum_matching(&v));
        prop_assert_eq!(two_coloring(&g), two_coloring(&v));
        prop_assert_eq!(
            maximal_matching_by_key(&g, |e| std::cmp::Reverse(e.v)),
            maximal_matching_by_key(&v, |e| std::cmp::Reverse(e.v))
        );
        // The shuffled variant consumes the RNG identically for both
        // representations, so equal seeds give equal matchings.
        let a = maximal_matching_shuffled(&g, &mut ChaCha8Rng::seed_from_u64(seed));
        let b = maximal_matching_shuffled(&v, &mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    /// Vertex-cover solvers: identical outputs on `Graph` and `GraphView`.
    #[test]
    fn vertex_cover_solvers_agree_on_view_and_owned(g in arb_graph(40, 0.12)) {
        let v = g.as_view();
        prop_assert_eq!(
            two_approx_cover(&g).sorted_vertices(),
            two_approx_cover(&v).sorted_vertices()
        );
        prop_assert_eq!(
            greedy_degree_cover(&g).sorted_vertices(),
            greedy_degree_cover(&v).sorted_vertices()
        );
        prop_assert_eq!(
            exact_cover_branch_and_bound(&g).sorted_vertices(),
            exact_cover_branch_and_bound(&v).sorted_vertices()
        );
        prop_assert_eq!(lp_vertex_cover(&g).values, lp_vertex_cover(&v).values);

        let thresholds = [g.n() / 2, g.n() / 4, 2];
        let a = peel_with_thresholds(&g, &thresholds);
        let b = peel_with_thresholds(&v, &thresholds);
        prop_assert_eq!(a.peeled_per_round, b.peeled_per_round);
        prop_assert_eq!(a.residual, b.residual);
        let a = parnas_ron_peeling(&g, 2);
        let b = parnas_ron_peeling(&v, 2);
        prop_assert_eq!(a.peeled_per_round, b.peeled_per_round);
        prop_assert_eq!(a.residual, b.residual);
    }

    /// The CSR built from a view is the canonical adjacency: it agrees with
    /// the owned graph's `Adjacency` on every neighbourhood.
    #[test]
    fn csr_from_view_is_the_owned_adjacency(g in arb_graph(80, 0.1)) {
        let csr = Csr::from_ref(&g.as_view());
        let adj = g.adjacency();
        for x in 0..g.n() as u32 {
            prop_assert_eq!(csr.neighbors(x), adj.neighbors(x));
            prop_assert_eq!(csr.degree(x), adj.degree(x));
        }
    }

    /// Solvers on arena pieces equal solvers on the same pieces materialized
    /// as owned graphs — the whole-pipeline form of the equivalence.
    #[test]
    fn solvers_agree_on_arena_pieces_and_materialized_pieces(
        g in arb_graph(60, 0.1),
        k in 1usize..7,
        seed in any::<u64>(),
        strategy in prop_oneof![
            Just(PartitionStrategy::Random),
            Just(PartitionStrategy::RoundRobin),
            Just(PartitionStrategy::Adversarial),
        ],
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let arena = PartitionedGraph::new(&g, k, strategy, &mut rng).unwrap();
        let owned = arena.materialize();
        for (view, piece) in arena.views().into_iter().zip(owned.pieces()) {
            prop_assert_eq!(maximum_matching(&view), maximum_matching(piece));
            prop_assert_eq!(
                two_approx_cover(&view).sorted_vertices(),
                two_approx_cover(piece).sorted_vertices()
            );
        }
    }
}
