//! # randomized-coresets
//!
//! Umbrella crate for the reproduction of *Randomized Composable Coresets for
//! Matching and Vertex Cover* (Assadi & Khanna, SPAA 2017).
//!
//! The implementation lives in five focused crates which this facade
//! re-exports:
//!
//! * [`graph`] — graph types, generators (including the paper's hard
//!   distributions), and random k-partitioning.
//! * [`matching`] — maximal / maximum (Hopcroft–Karp, Blossom) / weighted
//!   matching algorithms.
//! * [`vertexcover`] — vertex-cover algorithms (2-approximation, greedy,
//!   peeling, exact).
//! * [`coresets`] — the paper's contribution: randomized composable coresets
//!   for matching and vertex cover, together with the communication-efficient
//!   protocol variants (Remarks 5.2 and 5.8) and weighted extensions.
//! * [`distsim`] — the coordinator-model and MapReduce simulators with
//!   communication/round/memory accounting, plus the filtering baseline.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `EXPERIMENTS.md`
//! for the full experiment suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use coresets;
pub use distsim;
pub use graph;
pub use matching;
pub use vertexcover;
