//! Offline stand-in for `serde`.
//!
//! The real serde crate is unavailable in this build environment (no network
//! access), so the workspace vendors a small tree-based serialization
//! framework under the same crate name and import paths:
//!
//! * [`Serialize`] converts a value into a [`Value`] tree;
//! * [`Deserialize`] rebuilds a value from a [`Value`] tree;
//! * `#[derive(Serialize, Deserialize)]` works for structs with named fields
//!   and fieldless enums (everything this workspace derives on);
//! * `serde_json` (also vendored) renders [`Value`] trees to JSON text and
//!   parses JSON text back.
//!
//! The trait shapes are intentionally simpler than real serde (no
//! `Serializer`/`Deserializer` visitors), but call sites — derives plus
//! `serde_json::{to_string, to_string_pretty, from_str}` — are source
//! compatible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree, the data model shared by all vendored serde
/// stubs. JSON maps onto it directly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (JSON numbers without fraction that fit `i64`).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of a [`Value::Map`].
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected a map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, accepting any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64`, accepting non-negative integer variants.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, accepting integer variants that fit.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error produced when rebuilding a value from a [`Value`] tree fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Creates a type-mismatch error.
    pub fn expected(expected: &str, found: &Value) -> Self {
        DeError::new(format!("expected {expected}, found {}", found.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value from `v`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::expected("an unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| DeError::new(format!(
                    "integer {u} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::expected("an integer", v))?;
                <$t>::try_from(i).map_err(|_| DeError::new(format!(
                    "integer {i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| DeError::expected("a number", v))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("a bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("a string", v))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("a sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("a 2-element sequence", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(
            Vec::<u64>::from_value(&vec![1u64, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn numeric_coercions_are_checked() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert_eq!(u64::from_value(&Value::Int(7)).unwrap(), 7);
        assert_eq!(f64::from_value(&Value::Int(7)).unwrap(), 7.0);
    }

    #[test]
    fn field_lookup_reports_missing_and_mistyped() {
        let m = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert!(m.field("a").is_ok());
        assert!(m
            .field("b")
            .unwrap_err()
            .to_string()
            .contains("missing field"));
        assert!(Value::Null.field("a").is_err());
    }
}
