//! Offline stand-in for `criterion`.
//!
//! Exposes the bench-author API this workspace uses — [`Criterion`],
//! `benchmark_group`, `bench_with_input`/`bench_function`, [`BenchmarkId`],
//! `criterion_group!`, `criterion_main!` — backed by a deliberately simple
//! harness: each benchmark runs `sample_size` timed samples and reports the
//! median wall-clock time per iteration to stdout. No statistics, plotting,
//! or `target/criterion` output. Good enough to keep benches compiling,
//! runnable, and honest about relative cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring criterion's `Criterion` struct.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Registers a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.default_sample_size;
        run_one(&name.into(), samples, &mut f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Finishes the group (no-op in this stub; kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        if b.iterations > 0 {
            per_iter.push(b.elapsed / b.iterations as u32);
        }
    }
    per_iter.sort();
    let median = per_iter
        .get(per_iter.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    println!("bench {label:<50} median {median:>12.3?} ({samples} samples)");
}

/// Passed to benchmark closures; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `f`, contributing one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Declares a group-runner function from a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from a list of group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(1), &7u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            });
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
