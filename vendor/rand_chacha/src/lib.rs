//! Offline stand-in for the `rand_chacha` crate, providing [`ChaCha8Rng`].
//!
//! Unlike the other vendored stubs this one contains a full, real ChaCha8
//! keystream implementation (RFC 7539 state layout, 8 rounds, 64-bit block
//! counter), so seeded streams are high-quality and fully deterministic. The
//! exact word stream is not guaranteed to be bit-identical to the upstream
//! `rand_chacha` crate; everything in this workspace treats seeded RNGs as
//! opaque deterministic streams, never as golden values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A deterministic RNG backed by the ChaCha8 stream cipher.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word index in `buf`; 16 means "refill needed".
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buf
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }

    /// Returns the current stream position as consumed 32-bit words. Only
    /// used by tests; the workspace treats the RNG as an opaque stream.
    pub fn word_pos(&self) -> u128 {
        let block = ((self.state[13] as u128) << 32 | self.state[12] as u128)
            .wrapping_sub(if self.idx < 16 { 1 } else { 0 });
        block * 16 + if self.idx < 16 { self.idx as u128 } else { 0 }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..23 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn counter_crosses_block_boundaries() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let head: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        // All four blocks' worth of words must not all be equal (keystream
        // must change across refills).
        assert!(head[..16] != head[16..32]);
    }
}
