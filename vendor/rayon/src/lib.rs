//! Offline stand-in for `rayon`, backed by **real `std::thread` parallelism**.
//!
//! Unlike the earlier sequential stub, `par_iter()`/`into_par_iter()` here
//! execute their `map` stages on a scoped pool of OS threads: the input is
//! split into one contiguous chunk per worker, each worker maps its chunk, and
//! the per-chunk outputs are concatenated **in input order**. Results are
//! therefore bit-identical to a sequential run regardless of the number of
//! threads or how the OS schedules them — the property the workspace's
//! cross-thread-count determinism tests (`tests/determinism.rs`) assert.
//!
//! The worker count is resolved, in priority order, from:
//!
//! 1. a surrounding [`ThreadPool::install`] scope (highest priority),
//! 2. the `RC_THREADS` environment variable,
//! 3. the `RAYON_NUM_THREADS` environment variable (rayon's own knob),
//! 4. [`std::thread::available_parallelism`].
//!
//! Only the API surface this workspace uses is provided (`par_iter`,
//! `into_par_iter`, `map`, `enumerate`, `filter`, `collect`, `sum`, `count`,
//! `for_each`, plus `ThreadPoolBuilder`/`ThreadPool` and
//! [`current_num_threads`]); swapping the real rayon back in remains a
//! manifest-only change. Nested parallel calls from inside a worker thread are
//! executed with the default thread count (a fresh scope is spawned); the
//! simulators never nest, so this is a documented simplification rather than a
//! limitation in practice.
//!
//! ## Scheduler fuzzing (`RC_SCHED_FUZZ`)
//!
//! Setting `RC_SCHED_FUZZ=<seed>` (or wrapping a call in
//! [`sched_fuzz::with_fuzz`]) switches `map` execution to an adversarial
//! work-stealing schedule: the input is cut into ~4× more chunks than
//! workers, the dispatch order is shuffled by a seed-derived permutation, and
//! workers race to pull chunks from a shared queue with an OS yield injected
//! at every chunk boundary. Because chunk outputs are still reassembled by
//! chunk index, a correct caller observes bit-identical results under every
//! seed; a caller that secretly depends on dispatch order (e.g. mutates
//! shared state from inside a `map`) will diverge. `tests/sched_fuzz.rs` in
//! the workspace root reruns the distributed protocols under dozens of fuzzed
//! schedules and asserts their fingerprints never move.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Thread-count resolution.
// ---------------------------------------------------------------------------

/// Process-wide default worker count, resolved once from the environment.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; `0` = none.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn env_threads(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

fn default_num_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        env_threads("RC_THREADS")
            .or_else(|| env_threads("RAYON_NUM_THREADS"))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// The number of worker threads parallel iterators will use on this thread:
/// the innermost [`ThreadPool::install`] scope if one is active, otherwise the
/// process default (`RC_THREADS` / `RAYON_NUM_THREADS` / available cores).
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed >= 1 {
        installed
    } else {
        default_num_threads()
    }
}

// ---------------------------------------------------------------------------
// ThreadPool / ThreadPoolBuilder (the subset of rayon's API the tests use).
// ---------------------------------------------------------------------------

/// Error returned by [`ThreadPoolBuilder::build`]. The vendored pool cannot
/// actually fail to build; the type exists for rayon API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (environment-derived) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means "use the default resolution".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in this vendored implementation.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle that pins the worker count for closures run via [`install`].
///
/// Unlike real rayon no threads are kept alive between calls — workers are
/// spawned per parallel operation with `std::thread::scope` — but the
/// observable semantics (worker count inside `install`) match.
///
/// [`install`]: ThreadPool::install
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

/// Restores the previous install-override even if `op` panics.
struct InstallGuard {
    previous: usize,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED_THREADS.with(|c| c.set(self.previous));
    }
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count pinned for all parallel
    /// iterators invoked (non-nested) inside it.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let resolved = if self.num_threads >= 1 {
            self.num_threads
        } else {
            default_num_threads()
        };
        let _guard = InstallGuard {
            previous: INSTALLED_THREADS.with(|c| c.replace(resolved)),
        };
        op()
    }

    /// The worker count closures run under this pool will observe.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads >= 1 {
            self.num_threads
        } else {
            default_num_threads()
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduler fuzzing (RC_SCHED_FUZZ).
// ---------------------------------------------------------------------------

/// Deterministic adversarial scheduling for shaking out order-dependence.
///
/// With a fuzz seed active (from the `RC_SCHED_FUZZ` environment variable or
/// a surrounding [`with_fuzz`](sched_fuzz::with_fuzz) scope), every parallel
/// `map` randomizes which
/// worker picks up which chunk and in what order, and yields the OS scheduler
/// at each chunk boundary. Results are still assembled in input order, so the
/// fuzzing is observable only to code that (incorrectly) depends on execution
/// order.
pub mod sched_fuzz {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    /// Process-wide fuzz seed from `RC_SCHED_FUZZ`, resolved once. `None`
    /// when the variable is unset or unparseable.
    static ENV_SEED: OnceLock<Option<u64>> = OnceLock::new();

    /// Monotone per-process counter mixed into each parallel call's schedule,
    /// so consecutive calls under one seed exercise *different* dispatch
    /// orders while the whole run stays reproducible from the seed alone.
    static CALL_COUNTER: AtomicU64 = AtomicU64::new(0);

    /// Thread-local fuzz override installed by [`with_fuzz`].
    #[derive(Clone, Copy)]
    enum Override {
        /// No override: defer to the environment.
        Inherit,
        /// Fuzzing forced off, even if `RC_SCHED_FUZZ` is set.
        Off,
        /// Fuzzing forced on with this seed.
        Seed(u64),
    }

    thread_local! {
        static OVERRIDE: Cell<Override> = const { Cell::new(Override::Inherit) };
    }

    fn env_seed() -> Option<u64> {
        *ENV_SEED.get_or_init(|| {
            std::env::var("RC_SCHED_FUZZ")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        })
    }

    /// The fuzz seed in effect on the current thread, if any: the innermost
    /// [`with_fuzz`] scope wins, otherwise `RC_SCHED_FUZZ` from the
    /// environment.
    pub fn active_seed() -> Option<u64> {
        match OVERRIDE.with(Cell::get) {
            Override::Inherit => env_seed(),
            Override::Off => None,
            Override::Seed(s) => Some(s),
        }
    }

    /// Restores the previous override even if the closure panics.
    struct Guard {
        previous: Override,
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.previous));
        }
    }

    /// Runs `f` with scheduler fuzzing forced on (`Some(seed)`) or forced off
    /// (`None`) on this thread, regardless of `RC_SCHED_FUZZ`. Scopes nest;
    /// the previous state is restored on exit, panics included.
    pub fn with_fuzz<R>(seed: Option<u64>, f: impl FnOnce() -> R) -> R {
        let next = match seed {
            Some(s) => Override::Seed(s),
            None => Override::Off,
        };
        let _guard = Guard {
            previous: OVERRIDE.with(|c| c.replace(next)),
        };
        f()
    }

    /// One SplitMix64 step — a full-period, well-mixed 64-bit generator,
    /// plenty for deriving adversarial (not cryptographic) schedules.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The dispatch order for the next fuzzed parallel call: a Fisher–Yates
    /// permutation of `0..n_chunks` derived from `seed` and the per-process
    /// call counter.
    pub(crate) fn dispatch_order(seed: u64, n_chunks: usize) -> Vec<usize> {
        let call = CALL_COUNTER.fetch_add(1, Ordering::Relaxed);
        permutation(seed, call, n_chunks)
    }

    /// Deterministic permutation of `0..n` from `(seed, call)`; split from
    /// [`dispatch_order`] so tests can pin exact schedules.
    pub(crate) fn permutation(seed: u64, call: u64, n: usize) -> Vec<usize> {
        let mut state = seed ^ call.wrapping_mul(0xA076_1D64_78BD_642F);
        // Warm up so nearby (seed, call) pairs decorrelate immediately.
        let _ = splitmix64(&mut state);
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        order
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn permutation_is_a_permutation() {
            for seed in 0..8u64 {
                let p = permutation(seed, 3, 64);
                let mut sorted = p.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..64).collect::<Vec<_>>());
            }
        }

        #[test]
        fn permutation_depends_on_seed_and_call() {
            assert_ne!(permutation(1, 0, 64), permutation(2, 0, 64));
            assert_ne!(permutation(1, 0, 64), permutation(1, 1, 64));
            assert_eq!(permutation(7, 3, 64), permutation(7, 3, 64));
        }

        #[test]
        fn with_fuzz_overrides_and_restores() {
            with_fuzz(Some(42), || {
                assert_eq!(active_seed(), Some(42));
                with_fuzz(None, || assert_eq!(active_seed(), None));
                assert_eq!(active_seed(), Some(42));
            });
        }
    }
}

// ---------------------------------------------------------------------------
// The parallel execution core.
// ---------------------------------------------------------------------------

/// Maps `f` over `items` on up to [`current_num_threads`] scoped threads.
///
/// The input is cut into contiguous chunks (one per worker) and the chunk
/// outputs are concatenated in chunk order, so the result is always identical
/// to `items.into_iter().map(f).collect()` — parallelism changes wall-clock
/// time, never the answer. A panic in any worker is resumed on the caller.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    if let Some(seed) = sched_fuzz::active_seed() {
        return fuzzed_parallel_map(items, f, threads, seed);
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::new();
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// The [`parallel_map`] core under an adversarial schedule (see
/// [`sched_fuzz`]).
///
/// Differences from the plain path, all invisible in the output:
///
/// * the input is cut into ~4 chunks per worker (so chunk-to-worker
///   assignment is a real degree of freedom, not fixed 1:1),
/// * the dispatch queue is permuted by the seed-derived schedule, and
///   workers *race* to pop from it — which worker runs which chunk depends
///   on OS timing,
/// * every worker yields the OS scheduler between chunks, widening the
///   interleaving window.
///
/// Chunk outputs are tagged with their chunk index and reassembled in input
/// order, so for any caller whose `f` is a pure function the result is
/// bit-identical to the sequential run under every seed.
fn fuzzed_parallel_map<T, R, F>(items: Vec<T>, f: &F, threads: usize, seed: u64) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    use std::sync::Mutex;

    let total = items.len();
    let target_chunks = (threads * 4).clamp(1, total);
    let chunk_size = total.div_ceil(target_chunks);
    let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(target_chunks);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push((chunks.len(), chunk));
    }
    let n_chunks = chunks.len();
    let order = sched_fuzz::dispatch_order(seed, n_chunks);
    let mut queue_vec: Vec<Option<(usize, Vec<T>)>> = chunks.into_iter().map(Some).collect();
    // Workers pop from the back, so the last entry of `shuffled` is dispatched
    // first; the permutation already makes the order arbitrary.
    let mut shuffled: Vec<(usize, Vec<T>)> = Vec::with_capacity(n_chunks);
    for &i in &order {
        shuffled.push(queue_vec[i].take().expect("each chunk dispatched once"));
    }
    let queue = Mutex::new(shuffled);
    let results: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(n_chunks));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let job = queue.lock().expect("queue lock").pop();
                    let Some((idx, chunk)) = job else { break };
                    let part: Vec<R> = chunk.into_iter().map(f).collect();
                    results.lock().expect("results lock").push((idx, part));
                    // Chunk-boundary yield: hand the OS scheduler a chance to
                    // interleave the racing workers differently.
                    std::thread::yield_now();
                })
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    let mut parts = results.into_inner().expect("results mutex");
    parts.sort_unstable_by_key(|&(idx, _)| idx);
    let mut out = Vec::with_capacity(total);
    for (_, part) in parts {
        out.extend(part);
    }
    out
}

// ---------------------------------------------------------------------------
// Parallel iterator adapters.
// ---------------------------------------------------------------------------

/// The vendored mirror of rayon's `ParallelIterator`.
///
/// Pipelines are built lazily (`map`, `enumerate`, `filter`) and executed by
/// the consuming methods (`collect`, `sum`, `count`, `for_each`); `map` stages
/// run on the scoped thread pool, everything else is cheap bookkeeping on the
/// calling thread.
pub trait ParallelIterator: Sized + Send {
    /// The element type produced by this iterator.
    type Item: Send;

    /// Executes the pipeline, returning all items in deterministic input
    /// order. This is the vendored equivalent of rayon's internal `drive`.
    fn run(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Pairs every item with its index (indices follow input order, exactly
    /// like the sequential `enumerate`).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Keeps only the items for which `predicate` returns `true`.
    fn filter<P>(self, predicate: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter {
            base: self,
            predicate,
        }
    }

    /// Executes the pipeline and collects the results (in input order).
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.run().into_iter().collect()
    }

    /// Executes the pipeline and sums the results.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.run().into_iter().sum()
    }

    /// Executes the pipeline and counts the results.
    fn count(self) -> usize {
        self.run().len()
    }

    /// Runs `f` on every item in parallel (for side effects).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.map(f).run();
    }
}

/// Lazy `map` stage; see [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_map(self.base.run(), &self.f)
    }
}

/// Lazy `enumerate` stage; see [`ParallelIterator::enumerate`].
pub struct Enumerate<B> {
    base: B,
}

impl<B> ParallelIterator for Enumerate<B>
where
    B: ParallelIterator,
{
    type Item = (usize, B::Item);

    fn run(self) -> Vec<(usize, B::Item)> {
        self.base.run().into_iter().enumerate().collect()
    }
}

/// Lazy `filter` stage; see [`ParallelIterator::filter`].
pub struct Filter<B, P> {
    base: B,
    predicate: P,
}

impl<B, P> ParallelIterator for Filter<B, P>
where
    B: ParallelIterator,
    P: Fn(&B::Item) -> bool + Sync + Send,
{
    type Item = B::Item;

    fn run(self) -> Vec<B::Item> {
        let mut items = self.base.run();
        items.retain(|item| (self.predicate)(item));
        items
    }
}

/// Leaf iterator over `&T` items of a slice (what `par_iter()` returns).
pub struct ParSliceIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for ParSliceIter<'data, T> {
    type Item = &'data T;

    fn run(self) -> Vec<&'data T> {
        self.slice.iter().collect()
    }
}

/// Leaf iterator over owned items (what `into_par_iter()` returns).
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// The traits rayon users import as a blanket `use rayon::prelude::*;`.
pub mod prelude {
    pub use super::ParallelIterator;
    use super::{IntoParIter, ParSliceIter};

    /// Mirror of rayon's `IntoParallelRefIterator`, yielding `&T` items.
    pub trait IntoParallelRefIterator<'data> {
        /// The parallel iterator produced by [`Self::par_iter`].
        type Iter: ParallelIterator;

        /// Returns a parallel iterator over references. Items keep their
        /// input order in every consuming method.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Iter = ParSliceIter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            ParSliceIter { slice: self }
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = ParSliceIter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            ParSliceIter { slice: self }
        }
    }

    /// Mirror of rayon's `IntoParallelIterator` for owned collections.
    pub trait IntoParallelIterator {
        /// The parallel iterator produced by [`Self::into_par_iter`].
        type Iter: ParallelIterator;

        /// Consumes the collection into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = IntoParIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            IntoParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = IntoParIter<usize>;

        fn into_par_iter(self) -> Self::Iter {
            IntoParIter {
                items: self.collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
            .install(f)
    }

    #[test]
    fn par_iter_matches_sequential_map() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_consumes() {
        let total: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(total, 45);
    }

    #[test]
    fn results_are_in_input_order_for_every_thread_count() {
        let input: Vec<usize> = (0..1000).collect();
        let expected: Vec<usize> = input.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got: Vec<usize> =
                with_threads(threads, || input.par_iter().map(|&x| x * x).collect());
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn enumerate_indices_follow_input_order() {
        let items = vec!["a", "b", "c", "d", "e"];
        let pairs: Vec<(usize, String)> = with_threads(4, || {
            items
                .par_iter()
                .enumerate()
                .map(|(i, s)| (i, s.to_string()))
                .collect()
        });
        assert_eq!(
            pairs,
            vec![
                (0, "a".to_string()),
                (1, "b".to_string()),
                (2, "c".to_string()),
                (3, "d".to_string()),
                (4, "e".to_string()),
            ]
        );
    }

    #[test]
    fn work_is_actually_distributed_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        with_threads(4, || {
            (0..64usize).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert!(
            ids.lock().unwrap().len() > 1,
            "a 4-thread pool over 64 items must use more than one thread"
        );
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 2);
            inner.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn filter_keeps_order() {
        let odds: Vec<usize> = with_threads(3, || {
            (0..100usize)
                .into_par_iter()
                .filter(|x| x % 2 == 1)
                .collect()
        });
        assert_eq!(odds.len(), 50);
        assert!(odds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn count_and_sum_agree_with_sequential() {
        let n: usize = with_threads(8, || (0..500usize).into_par_iter().count());
        assert_eq!(n, 500);
        let s: usize = with_threads(8, || (0..500usize).into_par_iter().map(|x| x + 1).sum());
        assert_eq!(s, (1..=500).sum::<usize>());
    }

    #[test]
    #[should_panic(expected = "worker panic propagates")]
    fn worker_panics_propagate_to_the_caller() {
        with_threads(4, || {
            (0..16usize).into_par_iter().for_each(|i| {
                if i == 7 {
                    panic!("worker panic propagates");
                }
            });
        });
    }

    #[test]
    fn builder_zero_means_default() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn fuzzed_schedules_preserve_results_for_every_seed() {
        let input: Vec<usize> = (0..777).collect();
        let expected: Vec<usize> = input.iter().map(|x| x * 3 + 1).collect();
        for seed in 0..16u64 {
            let got: Vec<usize> = sched_fuzz::with_fuzz(Some(seed), || {
                with_threads(4, || input.par_iter().map(|&x| x * 3 + 1).collect())
            });
            assert_eq!(got, expected, "seed = {seed}");
        }
    }

    #[test]
    fn fuzzed_execution_order_actually_varies() {
        use std::sync::Mutex;
        // Record the order items are *processed* in; under fuzzing with many
        // chunks this should not be the input order (probability of the
        // identity permutation across 16 seeds is negligible).
        let mut saw_reordering = false;
        for seed in 0..16u64 {
            let trace: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            let _: Vec<usize> = sched_fuzz::with_fuzz(Some(seed), || {
                with_threads(4, || {
                    (0..256usize)
                        .into_par_iter()
                        .map(|x| {
                            trace.lock().unwrap().push(x);
                            x
                        })
                        .collect()
                })
            });
            let trace = trace.into_inner().unwrap();
            if trace.windows(2).any(|w| w[0] > w[1]) {
                saw_reordering = true;
                break;
            }
        }
        assert!(
            saw_reordering,
            "16 fuzzed schedules over 16 chunks never perturbed execution order"
        );
    }

    #[test]
    fn fuzzed_worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            sched_fuzz::with_fuzz(Some(9), || {
                with_threads(4, || {
                    (0..64usize).into_par_iter().for_each(|i| {
                        if i == 33 {
                            panic!("fuzzed worker panic");
                        }
                    });
                });
            });
        });
        assert!(caught.is_err());
    }
}
