//! Offline stand-in for `rayon`, backed by **real `std::thread` parallelism**
//! with a deterministic **work-stealing scheduler**.
//!
//! `par_iter()`/`into_par_iter()` execute their `map` stages on a scoped pool
//! of OS threads. The input is cut into **many more chunks than workers**
//! (8 per worker, size-capped — see `CHUNKS_PER_WORKER` /
//! `MAX_CHUNK_SIZE`) and the workers *race an atomic cursor* over the chunk
//! queue: a worker that finishes a cheap chunk immediately claims the next
//! one, so a single expensive chunk — the dense machine of a skewed edge
//! partition — occupies one worker while the others drain the rest of the
//! queue. Chunk outputs are written into per-chunk slots and reassembled **by
//! chunk index**, so the result is bit-identical to a sequential run
//! regardless of the number of threads, how the OS schedules them, or which
//! worker claimed which chunk — the property the workspace's
//! cross-thread-count determinism tests (`tests/determinism.rs`) and
//! scheduler-fuzz suite (`tests/sched_fuzz.rs`) assert.
//!
//! The worker count is resolved, in priority order, from:
//!
//! 1. a surrounding [`ThreadPool::install`] scope (highest priority),
//! 2. the `RC_THREADS` environment variable,
//! 3. the `RAYON_NUM_THREADS` environment variable (rayon's own knob),
//! 4. [`std::thread::available_parallelism`].
//!
//! For the *process default* (what a bare `par_iter()` outside any `install`
//! scope uses) the environment is read **once** and cached for the lifetime
//! of the process. A [`ThreadPoolBuilder`] with `num_threads(0)`, by
//! contrast, re-reads `RC_THREADS` / `RAYON_NUM_THREADS` **at `build()`
//! time** — so a pool built after an environment change observes the new
//! value, while the cached process default stays frozen (test harnesses rely
//! on both behaviours; see `builder_resolves_env_at_build_time`).
//!
//! **Nested parallel calls from inside a worker thread execute inline** on
//! that worker, sequentially — no fresh scope is spawned. This keeps the
//! worker count bounded by the outermost scope, makes nested calls
//! deadlock-free by construction, and is deterministic (inline execution is
//! exactly the sequential order). The simulators only nest through the
//! composition helpers, which are called both from protocol code (outside the
//! fan-out) and from tests that wrap whole runs in `par_iter`.
//!
//! Only the API surface this workspace uses is provided (`par_iter`,
//! `into_par_iter`, `map`, `enumerate`, `filter`, `collect`, `sum`, `count`,
//! `for_each`, plus `ThreadPoolBuilder`/`ThreadPool` and
//! [`current_num_threads`]); swapping the real rayon back in remains a
//! manifest-only change.
//!
//! ## Scheduler fuzzing (`RC_SCHED_FUZZ`)
//!
//! Setting `RC_SCHED_FUZZ=<seed>` (or wrapping a call in
//! [`sched_fuzz::with_fuzz`]) runs the **same work-stealing engine under an
//! adversarial dispatch permutation**: the chunk queue the workers race over
//! is permuted by a seed-derived schedule, and an OS yield is injected at
//! every chunk boundary to widen the interleaving window. Fuzzing is not a
//! parallel re-implementation — plain and fuzzed execution share one worker
//! loop; the fuzz seed only chooses the order in which the cursor hands out
//! chunks. Because chunk outputs are still reassembled by chunk index, a
//! correct caller observes bit-identical results under every seed; a caller
//! that secretly depends on dispatch order (e.g. mutates shared state from
//! inside a `map`) will diverge. `tests/sched_fuzz.rs` in the workspace root
//! reruns the distributed protocols under dozens of fuzzed schedules and
//! thread counts and asserts their fingerprints never move.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Thread-count resolution.
// ---------------------------------------------------------------------------

/// Process-wide default worker count, resolved once from the environment.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; `0` = none.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };

    /// Set while this thread is executing chunks as a scoped worker; nested
    /// parallel calls check it and run inline instead of spawning a scope.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn env_threads(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// Fresh (uncached) environment resolution: `RC_THREADS`, then
/// `RAYON_NUM_THREADS`. Used by [`ThreadPoolBuilder::build`] so pools built
/// after an environment change observe the new value.
fn env_threads_fresh() -> Option<usize> {
    env_threads("RC_THREADS").or_else(|| env_threads("RAYON_NUM_THREADS"))
}

fn default_num_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        env_threads_fresh().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// The number of worker threads parallel iterators will use on this thread:
/// the innermost [`ThreadPool::install`] scope if one is active, otherwise the
/// process default (`RC_THREADS` / `RAYON_NUM_THREADS` / available cores,
/// cached at first use).
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed >= 1 {
        installed
    } else {
        default_num_threads()
    }
}

// ---------------------------------------------------------------------------
// ThreadPool / ThreadPoolBuilder (the subset of rayon's API the tests use).
// ---------------------------------------------------------------------------

/// Error returned by [`ThreadPoolBuilder::build`]. The vendored pool cannot
/// actually fail to build; the type exists for rayon API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (environment-derived) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means "resolve from the environment at
    /// [`build`](Self::build) time".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in this vendored implementation.
    ///
    /// A builder with `num_threads(0)` resolves the worker count **here**, in
    /// priority order: a fresh read of `RC_THREADS`, a fresh read of
    /// `RAYON_NUM_THREADS`, then the cached process default (which itself
    /// froze the environment at its first resolution). Re-reading at build
    /// time means `build()` after `std::env::set_var("RC_THREADS", ..)` never
    /// silently uses a stale count.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let resolved = if self.num_threads >= 1 {
            self.num_threads
        } else {
            env_threads_fresh().unwrap_or_else(default_num_threads)
        };
        Ok(ThreadPool {
            num_threads: resolved,
        })
    }
}

/// A handle that pins the worker count for closures run via [`install`].
///
/// Unlike real rayon no threads are kept alive between calls — workers are
/// spawned per parallel operation with `std::thread::scope` — but the
/// observable semantics (worker count inside `install`) match. The count is
/// fully resolved at [`ThreadPoolBuilder::build`] time.
///
/// [`install`]: ThreadPool::install
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

/// Restores the previous install-override even if `op` panics.
struct InstallGuard {
    previous: usize,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED_THREADS.with(|c| c.set(self.previous));
    }
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count pinned for all parallel
    /// iterators invoked (non-nested) inside it.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let _guard = InstallGuard {
            previous: INSTALLED_THREADS.with(|c| c.replace(self.num_threads)),
        };
        op()
    }

    /// The worker count closures run under this pool will observe (resolved
    /// at build time).
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

// ---------------------------------------------------------------------------
// Scheduler fuzzing (RC_SCHED_FUZZ).
// ---------------------------------------------------------------------------

/// Deterministic adversarial scheduling for shaking out order-dependence.
///
/// With a fuzz seed active (from the `RC_SCHED_FUZZ` environment variable or
/// a surrounding [`with_fuzz`](sched_fuzz::with_fuzz) scope), every parallel
/// `map` runs the ordinary work-stealing engine but hands chunks out in a
/// seed-derived permuted order, and yields the OS scheduler at each chunk
/// boundary. Results are still assembled in input order, so the fuzzing is
/// observable only to code that (incorrectly) depends on execution order.
pub mod sched_fuzz {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    /// Process-wide fuzz seed from `RC_SCHED_FUZZ`, resolved once. `None`
    /// when the variable is unset or unparseable.
    static ENV_SEED: OnceLock<Option<u64>> = OnceLock::new();

    /// Monotone per-process counter mixed into each parallel call's schedule,
    /// so consecutive calls under one seed exercise *different* dispatch
    /// orders while the whole run stays reproducible from the seed alone.
    static CALL_COUNTER: AtomicU64 = AtomicU64::new(0);

    /// Thread-local fuzz override installed by [`with_fuzz`].
    #[derive(Clone, Copy)]
    enum Override {
        /// No override: defer to the environment.
        Inherit,
        /// Fuzzing forced off, even if `RC_SCHED_FUZZ` is set.
        Off,
        /// Fuzzing forced on with this seed.
        Seed(u64),
    }

    thread_local! {
        static OVERRIDE: Cell<Override> = const { Cell::new(Override::Inherit) };
    }

    fn env_seed() -> Option<u64> {
        *ENV_SEED.get_or_init(|| {
            std::env::var("RC_SCHED_FUZZ")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        })
    }

    /// The fuzz seed in effect on the current thread, if any: the innermost
    /// [`with_fuzz`] scope wins, otherwise `RC_SCHED_FUZZ` from the
    /// environment.
    pub fn active_seed() -> Option<u64> {
        match OVERRIDE.with(Cell::get) {
            Override::Inherit => env_seed(),
            Override::Off => None,
            Override::Seed(s) => Some(s),
        }
    }

    /// Restores the previous override even if the closure panics.
    struct Guard {
        previous: Override,
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.previous));
        }
    }

    /// Runs `f` with scheduler fuzzing forced on (`Some(seed)`) or forced off
    /// (`None`) on this thread, regardless of `RC_SCHED_FUZZ`. Scopes nest;
    /// the previous state is restored on exit, panics included.
    pub fn with_fuzz<R>(seed: Option<u64>, f: impl FnOnce() -> R) -> R {
        let next = match seed {
            Some(s) => Override::Seed(s),
            None => Override::Off,
        };
        let _guard = Guard {
            previous: OVERRIDE.with(|c| c.replace(next)),
        };
        f()
    }

    /// One SplitMix64 step — a full-period, well-mixed 64-bit generator,
    /// plenty for deriving adversarial (not cryptographic) schedules.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The dispatch order for the next fuzzed parallel call: a Fisher–Yates
    /// permutation of `0..n_chunks` derived from `seed` and the per-process
    /// call counter.
    pub(crate) fn dispatch_order(seed: u64, n_chunks: usize) -> Vec<usize> {
        let call = CALL_COUNTER.fetch_add(1, Ordering::Relaxed);
        permutation(seed, call, n_chunks)
    }

    /// Deterministic permutation of `0..n` from `(seed, call)`; split from
    /// [`dispatch_order`] so tests can pin exact schedules.
    pub(crate) fn permutation(seed: u64, call: u64, n: usize) -> Vec<usize> {
        let mut state = seed ^ call.wrapping_mul(0xA076_1D64_78BD_642F);
        // Warm up so nearby (seed, call) pairs decorrelate immediately.
        let _ = splitmix64(&mut state);
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        order
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn permutation_is_a_permutation() {
            for seed in 0..8u64 {
                let p = permutation(seed, 3, 64);
                let mut sorted = p.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..64).collect::<Vec<_>>());
            }
        }

        #[test]
        fn permutation_depends_on_seed_and_call() {
            assert_ne!(permutation(1, 0, 64), permutation(2, 0, 64));
            assert_ne!(permutation(1, 0, 64), permutation(1, 1, 64));
            assert_eq!(permutation(7, 3, 64), permutation(7, 3, 64));
        }

        #[test]
        fn with_fuzz_overrides_and_restores() {
            with_fuzz(Some(42), || {
                assert_eq!(active_seed(), Some(42));
                with_fuzz(None, || assert_eq!(active_seed(), None));
                assert_eq!(active_seed(), Some(42));
            });
        }
    }
}

// ---------------------------------------------------------------------------
// The work-stealing execution core.
// ---------------------------------------------------------------------------

/// How many chunks the scheduler cuts per worker. Chunk-count ≫ threads is
/// what lets a worker that drew a cheap chunk steal the next one instead of
/// idling while a skewed chunk pins a sibling.
const CHUNKS_PER_WORKER: usize = 8;

/// Upper bound on items per chunk, so very large inputs still split finely
/// even at low thread counts (more chunks = finer-grained stealing; the
/// per-chunk overhead is one atomic increment and two uncontended locks).
const MAX_CHUNK_SIZE: usize = 4096;

/// The chunk size for `total` items on `threads` workers: targets
/// [`CHUNKS_PER_WORKER`] chunks per worker, capped at [`MAX_CHUNK_SIZE`]
/// items per chunk, and never 0. With `total >= threads` every worker has at
/// least one chunk to claim (the old one-chunk-per-worker split could leave
/// workers idle: 9 items on 4 threads made only 3 chunks of `div_ceil` size).
fn chunk_size_for(total: usize, threads: usize) -> usize {
    let target_chunks = (threads * CHUNKS_PER_WORKER).max(1);
    total.div_ceil(target_chunks).clamp(1, MAX_CHUNK_SIZE)
}

/// Marks the current thread as a scoped worker for the duration of a
/// [`worker_loop`] run, restoring the previous state on drop (panics
/// included) so panic propagation never leaves the flag stuck.
struct WorkerGuard {
    previous: bool,
}

impl WorkerGuard {
    fn enter() -> Self {
        WorkerGuard {
            previous: IN_WORKER.with(|c| c.replace(true)),
        }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_WORKER.with(|c| c.set(self.previous));
    }
}

/// Maps `f` over `items` on up to [`current_num_threads`] scoped threads via
/// the work-stealing engine.
///
/// Chunk outputs are reassembled by chunk index, so the result is always
/// identical to `items.into_iter().map(f).collect()` — parallelism changes
/// wall-clock time, never the answer. A panic in any worker is resumed on the
/// caller. Nested calls from inside a worker execute inline (sequentially on
/// that worker) rather than spawning a fresh scope.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 || IN_WORKER.with(Cell::get) {
        return items.into_iter().map(f).collect();
    }
    work_steal_map(items, f, threads, sched_fuzz::active_seed())
}

/// The scheduler proper: cut `items` into chunks, race `threads` scoped
/// workers over an atomic cursor on the chunk queue, reassemble by chunk
/// index. `fuzz_seed` permutes the dispatch order (and injects OS yields at
/// chunk boundaries) without changing anything else — plain and fuzzed
/// execution share this one engine.
fn work_steal_map<T, R, F>(items: Vec<T>, f: &F, threads: usize, fuzz_seed: Option<u64>) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let total = items.len();
    let chunk_size = chunk_size_for(total, threads);
    // Job slots: each chunk is claimed exactly once (the cursor hands every
    // queue position to exactly one worker); the per-slot mutex is what lets
    // safe Rust express that hand-off and is uncontended by construction.
    let mut jobs: Vec<Mutex<Option<Vec<T>>>> = Vec::with_capacity(total.div_ceil(chunk_size));
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        jobs.push(Mutex::new(Some(chunk)));
    }
    let n_chunks = jobs.len();
    // Dispatch order over queue positions: identity normally, a seed-derived
    // permutation under fuzzing. Which *worker* runs which chunk is always a
    // race; only the hand-out order is pinned.
    let order: Vec<usize> = match fuzz_seed {
        Some(seed) => sched_fuzz::dispatch_order(seed, n_chunks),
        None => (0..n_chunks).collect(),
    };
    let slots: Vec<Mutex<Option<Vec<R>>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let yield_at_boundaries = fuzz_seed.is_some();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| worker_loop(&cursor, &order, &jobs, &slots, f, yield_at_boundaries))
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    reassemble(slots, total)
}

/// One worker's life: claim the next queue position from the shared cursor,
/// map the chunk it names, write the output into that chunk's slot, repeat
/// until the queue is drained. Runs with the in-worker flag set so nested
/// parallel calls inside `f` execute inline.
fn worker_loop<T, R, F>(
    cursor: &AtomicUsize,
    order: &[usize],
    jobs: &[Mutex<Option<Vec<T>>>],
    slots: &[Mutex<Option<Vec<R>>>],
    f: &F,
    yield_at_boundaries: bool,
) where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let _guard = WorkerGuard::enter();
    loop {
        let pos = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(&idx) = order.get(pos) else { break };
        let chunk = jobs[idx]
            .lock()
            .expect("job lock")
            .take()
            .expect("each chunk is claimed exactly once");
        let part: Vec<R> = chunk.into_iter().map(f).collect();
        *slots[idx].lock().expect("slot lock") = Some(part);
        if yield_at_boundaries {
            // Chunk-boundary yield (fuzz mode): hand the OS scheduler a
            // chance to interleave the racing workers differently.
            std::thread::yield_now();
        }
    }
}

/// Concatenates the per-chunk outputs in chunk-index order into one
/// preallocated vector — the step that makes the racing schedule invisible.
fn reassemble<R>(slots: Vec<Mutex<Option<Vec<R>>>>, total: usize) -> Vec<R> {
    let mut out = Vec::with_capacity(total);
    for slot in slots {
        let part = slot
            .into_inner()
            .expect("slot mutex")
            .expect("every claimed chunk wrote its slot");
        out.extend(part);
    }
    debug_assert_eq!(out.len(), total, "output length must equal input length");
    out
}

// ---------------------------------------------------------------------------
// Parallel iterator adapters.
// ---------------------------------------------------------------------------

/// The vendored mirror of rayon's `ParallelIterator`.
///
/// Pipelines are built lazily (`map`, `enumerate`, `filter`) and executed by
/// the consuming methods (`collect`, `sum`, `count`, `for_each`); `map` stages
/// run on the work-stealing scoped pool, everything else is cheap bookkeeping
/// on the calling thread.
pub trait ParallelIterator: Sized + Send {
    /// The element type produced by this iterator.
    type Item: Send;

    /// Executes the pipeline, returning all items in deterministic input
    /// order. This is the vendored equivalent of rayon's internal `drive`.
    fn run(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Pairs every item with its index (indices follow input order, exactly
    /// like the sequential `enumerate`).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Keeps only the items for which `predicate` returns `true`.
    fn filter<P>(self, predicate: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter {
            base: self,
            predicate,
        }
    }

    /// Executes the pipeline and collects the results (in input order).
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.run().into_iter().collect()
    }

    /// Executes the pipeline and sums the results.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.run().into_iter().sum()
    }

    /// Executes the pipeline and counts the results.
    fn count(self) -> usize {
        self.run().len()
    }

    /// Runs `f` on every item in parallel (for side effects).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.map(f).run();
    }
}

/// Lazy `map` stage; see [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_map(self.base.run(), &self.f)
    }
}

/// Lazy `enumerate` stage; see [`ParallelIterator::enumerate`].
pub struct Enumerate<B> {
    base: B,
}

impl<B> ParallelIterator for Enumerate<B>
where
    B: ParallelIterator,
{
    type Item = (usize, B::Item);

    fn run(self) -> Vec<(usize, B::Item)> {
        self.base.run().into_iter().enumerate().collect()
    }
}

/// Lazy `filter` stage; see [`ParallelIterator::filter`].
pub struct Filter<B, P> {
    base: B,
    predicate: P,
}

impl<B, P> ParallelIterator for Filter<B, P>
where
    B: ParallelIterator,
    P: Fn(&B::Item) -> bool + Sync + Send,
{
    type Item = B::Item;

    fn run(self) -> Vec<B::Item> {
        let mut items = self.base.run();
        items.retain(|item| (self.predicate)(item));
        items
    }
}

/// Leaf iterator over `&T` items of a slice (what `par_iter()` returns).
pub struct ParSliceIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for ParSliceIter<'data, T> {
    type Item = &'data T;

    fn run(self) -> Vec<&'data T> {
        self.slice.iter().collect()
    }
}

/// Leaf iterator over owned items (what `into_par_iter()` returns).
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// The traits rayon users import as a blanket `use rayon::prelude::*;`.
pub mod prelude {
    pub use super::ParallelIterator;
    use super::{IntoParIter, ParSliceIter};

    /// Mirror of rayon's `IntoParallelRefIterator`, yielding `&T` items.
    pub trait IntoParallelRefIterator<'data> {
        /// The parallel iterator produced by [`Self::par_iter`].
        type Iter: ParallelIterator;

        /// Returns a parallel iterator over references. Items keep their
        /// input order in every consuming method.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Iter = ParSliceIter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            ParSliceIter { slice: self }
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = ParSliceIter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            ParSliceIter { slice: self }
        }
    }

    /// Mirror of rayon's `IntoParallelIterator` for owned collections.
    pub trait IntoParallelIterator {
        /// The parallel iterator produced by [`Self::into_par_iter`].
        type Iter: ParallelIterator;

        /// Consumes the collection into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = IntoParIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            IntoParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = IntoParIter<usize>;

        fn into_par_iter(self) -> Self::Iter {
            IntoParIter {
                items: self.collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
            .install(f)
    }

    #[test]
    fn par_iter_matches_sequential_map() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_consumes() {
        let total: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(total, 45);
    }

    #[test]
    fn results_are_in_input_order_for_every_thread_count() {
        let input: Vec<usize> = (0..1000).collect();
        let expected: Vec<usize> = input.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got: Vec<usize> =
                with_threads(threads, || input.par_iter().map(|&x| x * x).collect());
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    /// The satellite micro-assert: output length (and order) equals input
    /// length for every (length, thread-count) combination, including the
    /// `len % threads != 0` tails that starved workers under the old
    /// one-chunk-per-worker split (9 items × 4 threads made only 3 chunks).
    #[test]
    fn every_tail_length_is_preserved() {
        for len in [0usize, 1, 2, 3, 4, 5, 7, 9, 17, 63, 100, 1001] {
            let input: Vec<usize> = (0..len).collect();
            let expected: Vec<usize> = input.iter().map(|x| x + 1).collect();
            for threads in [1, 2, 3, 4, 5, 8] {
                let got: Vec<usize> =
                    with_threads(threads, || input.par_iter().map(|&x| x + 1).collect());
                assert_eq!(got.len(), len, "len {len} × {threads} threads");
                assert_eq!(got, expected, "len {len} × {threads} threads");
            }
        }
    }

    /// The chunk-layout math behind the queue: chunk count is ≥ the worker
    /// count whenever the input allows it (no idle workers on ragged
    /// lengths), targets [`CHUNKS_PER_WORKER`] chunks per worker, and the
    /// chunk sizes always tile the input exactly.
    #[test]
    fn chunk_layout_leaves_no_worker_idle_and_tiles_exactly() {
        for total in [1usize, 2, 3, 9, 16, 17, 100, 1000, 100_000] {
            for threads in [1usize, 2, 3, 4, 8, 64] {
                let size = chunk_size_for(total, threads);
                assert!((1..=MAX_CHUNK_SIZE).contains(&size));
                let n_chunks = total.div_ceil(size);
                // Enough chunks for every worker whenever the input allows.
                assert!(
                    n_chunks >= threads.min(total),
                    "total {total} × {threads} threads: {n_chunks} chunks of {size}"
                );
                // The chunks tile the input exactly: n-1 full chunks plus a
                // non-empty tail.
                assert!((n_chunks - 1) * size < total && total <= n_chunks * size);
            }
        }
        // 9 items × 4 threads — the old one-chunk-per-worker split produced
        // only 3 chunks (div_ceil size 3), idling a worker; the queue now
        // yields 9 schedulable unit chunks.
        assert_eq!(chunk_size_for(9, 4), 1);
        assert_eq!(9usize.div_ceil(chunk_size_for(9, 4)), 9);
        // Huge inputs stay finely split: the size cap keeps stealing granular
        // even at low thread counts.
        assert_eq!(chunk_size_for(1_000_000, 2), MAX_CHUNK_SIZE);
    }

    #[test]
    fn enumerate_indices_follow_input_order() {
        let items = vec!["a", "b", "c", "d", "e"];
        let pairs: Vec<(usize, String)> = with_threads(4, || {
            items
                .par_iter()
                .enumerate()
                .map(|(i, s)| (i, s.to_string()))
                .collect()
        });
        assert_eq!(
            pairs,
            vec![
                (0, "a".to_string()),
                (1, "b".to_string()),
                (2, "c".to_string()),
                (3, "d".to_string()),
                (4, "e".to_string()),
            ]
        );
    }

    /// With work stealing a fast worker may drain the whole queue before its
    /// siblings are scheduled, so distribution is forced with a barrier: four
    /// items, four workers, and every item blocks until all four workers have
    /// claimed one — which requires four distinct threads to participate.
    #[test]
    fn work_is_actually_distributed_across_threads() {
        use std::collections::HashSet;
        use std::sync::{Barrier, Mutex};
        let barrier = Barrier::new(4);
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        with_threads(4, || {
            (0..4usize).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                barrier.wait();
            });
        });
        assert_eq!(
            ids.lock().unwrap().len(),
            4,
            "four barrier-synchronised items require four distinct workers"
        );
    }

    /// Nested parallel calls from inside a worker execute inline on that
    /// worker — same thread, sequential order — instead of spawning a fresh
    /// default-width scope.
    #[test]
    fn nested_parallel_calls_execute_inline() {
        let results: Vec<Vec<usize>> = with_threads(4, || {
            (0..8usize)
                .into_par_iter()
                .map(|outer| {
                    let caller = std::thread::current().id();
                    (0..16usize)
                        .into_par_iter()
                        .map(|inner| {
                            assert_eq!(
                                std::thread::current().id(),
                                caller,
                                "nested call left its worker thread"
                            );
                            outer * 100 + inner
                        })
                        .collect()
                })
                .collect()
        });
        for (outer, inner_results) in results.iter().enumerate() {
            let expected: Vec<usize> = (0..16).map(|i| outer * 100 + i).collect();
            assert_eq!(inner_results, &expected);
        }
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 2);
            inner.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn filter_keeps_order() {
        let odds: Vec<usize> = with_threads(3, || {
            (0..100usize)
                .into_par_iter()
                .filter(|x| x % 2 == 1)
                .collect()
        });
        assert_eq!(odds.len(), 50);
        assert!(odds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn count_and_sum_agree_with_sequential() {
        let n: usize = with_threads(8, || (0..500usize).into_par_iter().count());
        assert_eq!(n, 500);
        let s: usize = with_threads(8, || (0..500usize).into_par_iter().map(|x| x + 1).sum());
        assert_eq!(s, (1..=500).sum::<usize>());
    }

    #[test]
    #[should_panic(expected = "worker panic propagates")]
    fn worker_panics_propagate_to_the_caller() {
        with_threads(4, || {
            (0..16usize).into_par_iter().for_each(|i| {
                if i == 7 {
                    panic!("worker panic propagates");
                }
            });
        });
    }

    #[test]
    fn builder_zero_means_default() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    /// The staleness regression: a `num_threads(0)` builder resolves the
    /// environment at `build()` time, so a pool built after an env change
    /// observes the new value — while the cached process default (used by
    /// bare calls outside `install`) stays frozen at its first resolution.
    /// Guarded by a lock because the test mutates process-global env state.
    #[test]
    fn builder_resolves_env_at_build_time() {
        static ENV_LOCK: Mutex<()> = Mutex::new(());
        let _guard = ENV_LOCK.lock().unwrap();
        let saved_rc = std::env::var("RC_THREADS").ok();
        let saved_rayon = std::env::var("RAYON_NUM_THREADS").ok();

        // Freeze the process default before mutating the environment.
        let frozen_default = default_num_threads();

        std::env::set_var("RC_THREADS", "3");
        std::env::remove_var("RAYON_NUM_THREADS");
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert_eq!(
            pool.current_num_threads(),
            3,
            "build() must re-read RC_THREADS"
        );
        pool.install(|| assert_eq!(current_num_threads(), 3));

        // RC_THREADS takes precedence over RAYON_NUM_THREADS…
        std::env::set_var("RAYON_NUM_THREADS", "5");
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);

        // …and RAYON_NUM_THREADS applies when RC_THREADS is gone.
        std::env::remove_var("RC_THREADS");
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert_eq!(pool.current_num_threads(), 5);

        // With both gone, build() falls back to the cached process default.
        std::env::remove_var("RAYON_NUM_THREADS");
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert_eq!(pool.current_num_threads(), frozen_default);
        assert_eq!(default_num_threads(), frozen_default);

        // An explicit num_threads(n >= 1) never consults the environment.
        std::env::set_var("RC_THREADS", "7");
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.current_num_threads(), 2);

        match saved_rc {
            Some(v) => std::env::set_var("RC_THREADS", v),
            None => std::env::remove_var("RC_THREADS"),
        }
        match saved_rayon {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
    }

    #[test]
    fn fuzzed_schedules_preserve_results_for_every_seed() {
        let input: Vec<usize> = (0..777).collect();
        let expected: Vec<usize> = input.iter().map(|x| x * 3 + 1).collect();
        for seed in 0..16u64 {
            let got: Vec<usize> = sched_fuzz::with_fuzz(Some(seed), || {
                with_threads(4, || input.par_iter().map(|&x| x * 3 + 1).collect())
            });
            assert_eq!(got, expected, "seed = {seed}");
        }
    }

    #[test]
    fn fuzzed_execution_order_actually_varies() {
        use std::sync::Mutex;
        // Record the order items are *processed* in; under fuzzing with many
        // chunks this should not be the input order (probability of the
        // identity permutation across 16 seeds is negligible).
        let mut saw_reordering = false;
        for seed in 0..16u64 {
            let trace: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            let _: Vec<usize> = sched_fuzz::with_fuzz(Some(seed), || {
                with_threads(4, || {
                    (0..256usize)
                        .into_par_iter()
                        .map(|x| {
                            trace.lock().unwrap().push(x);
                            x
                        })
                        .collect()
                })
            });
            let trace = trace.into_inner().unwrap();
            if trace.windows(2).any(|w| w[0] > w[1]) {
                saw_reordering = true;
                break;
            }
        }
        assert!(
            saw_reordering,
            "16 fuzzed schedules over many chunks never perturbed execution order"
        );
    }

    #[test]
    fn fuzzed_worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            sched_fuzz::with_fuzz(Some(9), || {
                with_threads(4, || {
                    (0..64usize).into_par_iter().for_each(|i| {
                        if i == 33 {
                            panic!("fuzzed worker panic");
                        }
                    });
                });
            });
        });
        assert!(caught.is_err());
    }
}
