//! Offline stand-in for `rayon`, backed by **real `std::thread` parallelism**.
//!
//! Unlike the earlier sequential stub, `par_iter()`/`into_par_iter()` here
//! execute their `map` stages on a scoped pool of OS threads: the input is
//! split into one contiguous chunk per worker, each worker maps its chunk, and
//! the per-chunk outputs are concatenated **in input order**. Results are
//! therefore bit-identical to a sequential run regardless of the number of
//! threads or how the OS schedules them — the property the workspace's
//! cross-thread-count determinism tests (`tests/determinism.rs`) assert.
//!
//! The worker count is resolved, in priority order, from:
//!
//! 1. a surrounding [`ThreadPool::install`] scope (highest priority),
//! 2. the `RC_THREADS` environment variable,
//! 3. the `RAYON_NUM_THREADS` environment variable (rayon's own knob),
//! 4. [`std::thread::available_parallelism`].
//!
//! Only the API surface this workspace uses is provided (`par_iter`,
//! `into_par_iter`, `map`, `enumerate`, `filter`, `collect`, `sum`, `count`,
//! `for_each`, plus `ThreadPoolBuilder`/`ThreadPool` and
//! [`current_num_threads`]); swapping the real rayon back in remains a
//! manifest-only change. Nested parallel calls from inside a worker thread are
//! executed with the default thread count (a fresh scope is spawned); the
//! simulators never nest, so this is a documented simplification rather than a
//! limitation in practice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Thread-count resolution.
// ---------------------------------------------------------------------------

/// Process-wide default worker count, resolved once from the environment.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; `0` = none.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn env_threads(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

fn default_num_threads() -> usize {
    *DEFAULT_THREADS.get_or_init(|| {
        env_threads("RC_THREADS")
            .or_else(|| env_threads("RAYON_NUM_THREADS"))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// The number of worker threads parallel iterators will use on this thread:
/// the innermost [`ThreadPool::install`] scope if one is active, otherwise the
/// process default (`RC_THREADS` / `RAYON_NUM_THREADS` / available cores).
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed >= 1 {
        installed
    } else {
        default_num_threads()
    }
}

// ---------------------------------------------------------------------------
// ThreadPool / ThreadPoolBuilder (the subset of rayon's API the tests use).
// ---------------------------------------------------------------------------

/// Error returned by [`ThreadPoolBuilder::build`]. The vendored pool cannot
/// actually fail to build; the type exists for rayon API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (environment-derived) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means "use the default resolution".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in this vendored implementation.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle that pins the worker count for closures run via [`install`].
///
/// Unlike real rayon no threads are kept alive between calls — workers are
/// spawned per parallel operation with `std::thread::scope` — but the
/// observable semantics (worker count inside `install`) match.
///
/// [`install`]: ThreadPool::install
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

/// Restores the previous install-override even if `op` panics.
struct InstallGuard {
    previous: usize,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED_THREADS.with(|c| c.set(self.previous));
    }
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count pinned for all parallel
    /// iterators invoked (non-nested) inside it.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let resolved = if self.num_threads >= 1 {
            self.num_threads
        } else {
            default_num_threads()
        };
        let _guard = InstallGuard {
            previous: INSTALLED_THREADS.with(|c| c.replace(resolved)),
        };
        op()
    }

    /// The worker count closures run under this pool will observe.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads >= 1 {
            self.num_threads
        } else {
            default_num_threads()
        }
    }
}

// ---------------------------------------------------------------------------
// The parallel execution core.
// ---------------------------------------------------------------------------

/// Maps `f` over `items` on up to [`current_num_threads`] scoped threads.
///
/// The input is cut into contiguous chunks (one per worker) and the chunk
/// outputs are concatenated in chunk order, so the result is always identical
/// to `items.into_iter().map(f).collect()` — parallelism changes wall-clock
/// time, never the answer. A panic in any worker is resumed on the caller.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::new();
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

// ---------------------------------------------------------------------------
// Parallel iterator adapters.
// ---------------------------------------------------------------------------

/// The vendored mirror of rayon's `ParallelIterator`.
///
/// Pipelines are built lazily (`map`, `enumerate`, `filter`) and executed by
/// the consuming methods (`collect`, `sum`, `count`, `for_each`); `map` stages
/// run on the scoped thread pool, everything else is cheap bookkeeping on the
/// calling thread.
pub trait ParallelIterator: Sized + Send {
    /// The element type produced by this iterator.
    type Item: Send;

    /// Executes the pipeline, returning all items in deterministic input
    /// order. This is the vendored equivalent of rayon's internal `drive`.
    fn run(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Pairs every item with its index (indices follow input order, exactly
    /// like the sequential `enumerate`).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Keeps only the items for which `predicate` returns `true`.
    fn filter<P>(self, predicate: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter {
            base: self,
            predicate,
        }
    }

    /// Executes the pipeline and collects the results (in input order).
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.run().into_iter().collect()
    }

    /// Executes the pipeline and sums the results.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.run().into_iter().sum()
    }

    /// Executes the pipeline and counts the results.
    fn count(self) -> usize {
        self.run().len()
    }

    /// Runs `f` on every item in parallel (for side effects).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.map(f).run();
    }
}

/// Lazy `map` stage; see [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        parallel_map(self.base.run(), &self.f)
    }
}

/// Lazy `enumerate` stage; see [`ParallelIterator::enumerate`].
pub struct Enumerate<B> {
    base: B,
}

impl<B> ParallelIterator for Enumerate<B>
where
    B: ParallelIterator,
{
    type Item = (usize, B::Item);

    fn run(self) -> Vec<(usize, B::Item)> {
        self.base.run().into_iter().enumerate().collect()
    }
}

/// Lazy `filter` stage; see [`ParallelIterator::filter`].
pub struct Filter<B, P> {
    base: B,
    predicate: P,
}

impl<B, P> ParallelIterator for Filter<B, P>
where
    B: ParallelIterator,
    P: Fn(&B::Item) -> bool + Sync + Send,
{
    type Item = B::Item;

    fn run(self) -> Vec<B::Item> {
        let mut items = self.base.run();
        items.retain(|item| (self.predicate)(item));
        items
    }
}

/// Leaf iterator over `&T` items of a slice (what `par_iter()` returns).
pub struct ParSliceIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for ParSliceIter<'data, T> {
    type Item = &'data T;

    fn run(self) -> Vec<&'data T> {
        self.slice.iter().collect()
    }
}

/// Leaf iterator over owned items (what `into_par_iter()` returns).
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// The traits rayon users import as a blanket `use rayon::prelude::*;`.
pub mod prelude {
    pub use super::ParallelIterator;
    use super::{IntoParIter, ParSliceIter};

    /// Mirror of rayon's `IntoParallelRefIterator`, yielding `&T` items.
    pub trait IntoParallelRefIterator<'data> {
        /// The parallel iterator produced by [`Self::par_iter`].
        type Iter: ParallelIterator;

        /// Returns a parallel iterator over references. Items keep their
        /// input order in every consuming method.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Iter = ParSliceIter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            ParSliceIter { slice: self }
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = ParSliceIter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            ParSliceIter { slice: self }
        }
    }

    /// Mirror of rayon's `IntoParallelIterator` for owned collections.
    pub trait IntoParallelIterator {
        /// The parallel iterator produced by [`Self::into_par_iter`].
        type Iter: ParallelIterator;

        /// Consumes the collection into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = IntoParIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            IntoParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = IntoParIter<usize>;

        fn into_par_iter(self) -> Self::Iter {
            IntoParIter {
                items: self.collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
            .install(f)
    }

    #[test]
    fn par_iter_matches_sequential_map() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_consumes() {
        let total: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(total, 45);
    }

    #[test]
    fn results_are_in_input_order_for_every_thread_count() {
        let input: Vec<usize> = (0..1000).collect();
        let expected: Vec<usize> = input.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got: Vec<usize> =
                with_threads(threads, || input.par_iter().map(|&x| x * x).collect());
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn enumerate_indices_follow_input_order() {
        let items = vec!["a", "b", "c", "d", "e"];
        let pairs: Vec<(usize, String)> = with_threads(4, || {
            items
                .par_iter()
                .enumerate()
                .map(|(i, s)| (i, s.to_string()))
                .collect()
        });
        assert_eq!(
            pairs,
            vec![
                (0, "a".to_string()),
                (1, "b".to_string()),
                (2, "c".to_string()),
                (3, "d".to_string()),
                (4, "e".to_string()),
            ]
        );
    }

    #[test]
    fn work_is_actually_distributed_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        with_threads(4, || {
            (0..64usize).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert!(
            ids.lock().unwrap().len() > 1,
            "a 4-thread pool over 64 items must use more than one thread"
        );
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 2);
            inner.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn filter_keeps_order() {
        let odds: Vec<usize> = with_threads(3, || {
            (0..100usize)
                .into_par_iter()
                .filter(|x| x % 2 == 1)
                .collect()
        });
        assert_eq!(odds.len(), 50);
        assert!(odds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn count_and_sum_agree_with_sequential() {
        let n: usize = with_threads(8, || (0..500usize).into_par_iter().count());
        assert_eq!(n, 500);
        let s: usize = with_threads(8, || (0..500usize).into_par_iter().map(|x| x + 1).sum());
        assert_eq!(s, (1..=500).sum::<usize>());
    }

    #[test]
    #[should_panic(expected = "worker panic propagates")]
    fn worker_panics_propagate_to_the_caller() {
        with_threads(4, || {
            (0..16usize).into_par_iter().for_each(|i| {
                if i == 7 {
                    panic!("worker panic propagates");
                }
            });
        });
    }

    #[test]
    fn builder_zero_means_default() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
