//! Offline stand-in for `rayon`.
//!
//! `par_iter()` returns the corresponding **sequential** std iterator, so all
//! downstream adapters (`map`, `enumerate`, `collect`, …) work unchanged and
//! results are bit-identical to a rayon run with one worker thread. The
//! simulators in this workspace only rely on `par_iter` for throughput, never
//! for semantics, so a sequential drop-in preserves correctness; swapping the
//! real rayon back in is a manifest-only change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The traits rayon users import as a blanket `use rayon::prelude::*;`.
pub mod prelude {
    /// Mirror of rayon's `IntoParallelRefIterator`, yielding `&T` items.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator produced by [`Self::par_iter`].
        type Iter: Iterator;

        /// Returns a "parallel" iterator over references — sequentially
        /// ordered in this vendored stub.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// Mirror of rayon's `IntoParallelIterator` for owned collections.
    pub trait IntoParallelIterator {
        /// The iterator produced by [`Self::into_par_iter`].
        type Iter: Iterator;

        /// Consumes the collection into a "parallel" iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential_map() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_consumes() {
        let total: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(total, 45);
    }
}
