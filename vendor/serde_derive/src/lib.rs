//! Derive macros for the vendored `serde` stub.
//!
//! Supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields (any field types that implement the stub's
//!   `Serialize`/`Deserialize` traits), and
//! * fieldless ("C-like") enums, serialized as their variant name.
//!
//! The input item is parsed directly from the `proc_macro` token stream —
//! `syn`/`quote` are not available offline. Unsupported shapes (tuple
//! structs, generic types, data-carrying enums) produce a compile error
//! naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum ItemShape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum whose variants all carry no data.
    Enum { name: String, variants: Vec<String> },
}

/// Skips `#[...]` attributes (including doc comments) at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …) at the cursor.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Result<ItemShape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("cannot derive serde for a `{kind}` item"));
    }
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected an item name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde derive does not support generic type `{name}`"
            ));
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
            "expected a braced body for `{name}` (tuple/unit items unsupported), found {other:?}"
        ))
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();

    if kind == "struct" {
        Ok(ItemShape::Struct {
            name,
            fields: parse_named_fields(&body)?,
        })
    } else {
        Ok(ItemShape::Enum {
            name,
            variants: parse_unit_variants(&body)?,
        })
    }
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_vis(body, skip_attrs(body, i));
        if i >= body.len() {
            break;
        }
        let field = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected a field name, found {other:?}")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                "expected `:` after field `{field}` (tuple structs unsupported), found {other:?}"
            ))
            }
        }
        // Consume the type: everything until a `,` at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_unit_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        let variant = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected a variant name, found {other:?}")),
        };
        i += 1;
        match body.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => {
                return Err(format!(
                    "variant `{variant}` carries data or a discriminant ({other:?}); \
                     the vendored serde derive only supports fieldless enums"
                ))
            }
        }
        variants.push(variant);
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!(
        "compile_error!({:?});",
        format!("serde_derive (vendored): {msg}")
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_item(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        ItemShape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Map(__m)\n\
                     }}\n\
                 }}"
            )
        }
        ItemShape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_item(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        ItemShape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__v.field({f:?})?)?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        ItemShape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v.as_str() {{\n\
                             ::std::option::Option::Some(__s) => match __s {{\n\
                                 {arms}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n\
                             }},\n\
                             ::std::option::Option::None => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"a variant string\", __v)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
