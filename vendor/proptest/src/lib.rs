//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest surface this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`strategy::Just`], `any::<T>()`, `prop_oneof!`,
//! `collection::{vec, hash_set}`, [`ProptestConfig`], and the `proptest!` /
//! `prop_assert*!` macros.
//!
//! Semantics differ from real proptest in one deliberate way: there is **no
//! shrinking**. Each test runs `cases` deterministic pseudo-random cases
//! (seeded from the test name and case index), and the first failing case
//! panics with its case number so it can be replayed by re-running the test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::RngCore;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut dyn RngCore) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> strategy::BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        strategy::BoxedStrategy(Box::new(self))
    }
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::Strategy;
    use rand::{Rng, RngCore};

    /// Always produces a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut dyn RngCore) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut dyn RngCore) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy, produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(pub(crate) Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut dyn RngCore) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice among several strategies (the `prop_oneof!` backend).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A union over the given alternatives. Panics when empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! requires at least one option"
            );
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut dyn RngCore) -> T {
            let i = rng.gen_range(0..self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut dyn RngCore) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut dyn RngCore) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// `any::<T>()` and the `Arbitrary` trait behind it.
pub mod arbitrary {
    use super::Strategy;
    use rand::RngCore;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut dyn RngCore) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut dyn RngCore) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut dyn RngCore) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut dyn RngCore) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing unconstrained values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use super::Strategy;
    use rand::{Rng, RngCore};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut dyn RngCore) -> Vec<S::Value> {
            let len = sample_len(rng, &self.size);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut dyn RngCore) -> HashSet<S::Value> {
            let target = sample_len(rng, &self.size);
            let mut out = HashSet::with_capacity(target);
            // Bounded attempts: duplicates may leave the set below target,
            // matching proptest's "size is an upper bound" behavior closely
            // enough for the workspace's set-algebra tests.
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// Generates a `HashSet` with roughly `size` elements.
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    fn sample_len(rng: &mut dyn RngCore, size: &Range<usize>) -> usize {
        if size.start >= size.end {
            size.start
        } else {
            rng.gen_range(size.start..size.end)
        }
    }
}

/// Deterministic per-case RNG plumbing used by the `proptest!` macro.
pub mod test_runner {
    use rand::RngCore;

    /// Error type carried by `prop_assert*!` failures.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failed-assertion error.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// A small, fast SplitMix64 generator for test-case derivation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Derives the deterministic RNG for `(test name, case index)`.
    pub fn rng_for_case(case: u64, name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D),
        }
    }
}

pub use arbitrary::any;
pub use strategy::Just;
pub use test_runner::TestCaseError;

/// The glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Just;
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions that run many random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases as u64 {
                let mut __rng = $crate::test_runner::rng_for_case(__case, stringify!($name));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __e
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{}\n  both: {:?}",
                ::std::format!($($fmt)+),
                __l
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5usize..17, y in -3i64..4, f in 0.25f64..0.5) {
            prop_assert!((5..17).contains(&x));
            prop_assert!((-3..4).contains(&y));
            prop_assert!((0.25..0.5).contains(&f));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 20);
        }

        #[test]
        fn oneof_and_just_produce_known_values(v in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&v), "unexpected value {}", v);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0usize..50, 0..6),
            s in crate::collection::hash_set(0u32..200, 0..40),
        ) {
            prop_assert!(v.len() < 6);
            prop_assert!(s.len() < 40);
            prop_assert_ne!(s.len(), usize::MAX);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::test_runner::rng_for_case;
        use rand::RngCore;
        let a = rng_for_case(3, "x").next_u64();
        let b = rng_for_case(3, "x").next_u64();
        let c = rng_for_case(4, "x").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
