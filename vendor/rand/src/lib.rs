//! Offline stand-in for the `rand` crate, implementing the 0.8-era subset of
//! the API that this workspace uses: [`RngCore`], [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng`] (including the standard PCG-based
//! `seed_from_u64` expansion), and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this minimal implementation instead of the real crate. The trait shapes
//! match `rand 0.8` closely enough that swapping the real crate back in is a
//! one-line manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated deterministically from a seed.
pub trait SeedableRng: Sized {
    /// The seed type, a fixed-size byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with a PCG32 stream (the same
    /// expansion `rand_core 0.6` uses), then calls [`Self::from_seed`].
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the half-open `range`.
    ///
    /// Panics when the range is empty.
    fn gen_range<T: distributions::SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Samples a value from the standard distribution of `T` (full range for
    /// integers, `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T: distributions::SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        <f64 as distributions::SampleStandard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distribution traits backing [`Rng::gen`] and [`Rng::gen_range`].
pub mod distributions {
    use super::RngCore;

    /// Types that can be sampled uniformly from a half-open range.
    pub trait SampleUniform: Sized {
        /// Samples uniformly from `[low, high)`.
        fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    /// Types that have a standard distribution (see [`super::Rng::gen`]).
    pub trait SampleStandard: Sized {
        /// Samples from the standard distribution.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    #[inline]
    pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits of a u64, scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    #[inline]
    fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        // Lemire multiply-shift; bias is < 2^-64 per draw, irrelevant here.
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! impl_uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range called with an empty range");
                    let span = (high - low) as u64;
                    low + uniform_u64(rng, span) as $t
                }
            }
            impl SampleStandard for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range called with an empty range");
                    let span = (high as i128 - low as i128) as u64;
                    (low as i128 + uniform_u64(rng, span) as i128) as $t
                }
            }
            impl SampleStandard for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_uniform_int!(i8, i16, i32, i64, isize);

    macro_rules! impl_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range called with an empty range");
                    low + (high - low) * unit_f64(rng) as $t
                }
            }
            impl SampleStandard for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    unit_f64(rng) as $t
                }
            }
        )*};
    }
    impl_uniform_float!(f32, f64);

    impl SampleStandard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Returns a uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..(i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
            let z: usize = rng.gen_range(0..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(42);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Counter(1);
        let v = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
