//! Offline stand-in for `serde_json`: renders the vendored [`serde::Value`]
//! tree to JSON text and parses JSON text back into it.
//!
//! Supports `to_string`, `to_string_pretty`, and `from_str` — the full
//! surface this workspace uses. Non-finite floats serialize as `null`, the
//! same behavior as the real `serde_json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest-round-trip formatting; always valid JSON
                // because finite floats never format as `inf`/`NaN`.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: expect a low surrogate next.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        let combined =
                                            0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        _ => return Err(Error::new("invalid escape character")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "0", "42", "-17", "1.5", "\"hi\""] {
            let v = parse_value(json).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let json = r#"{"a":[1,2,3],"b":{"c":"x\ny","d":null},"e":-2.25}"#;
        let v = parse_value(json).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, json);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse_value(r#"{"a":[1,2],"b":"x"}"#).unwrap();
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0);
        assert!(pretty.contains('\n'));
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_value("").is_err());
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse_value(r#""é😀""#).unwrap();
        assert_eq!(v, Value::Str("é😀".to_string()));
        // Escaped surrogate pair for U+1F600.
        let v = parse_value(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::Str("😀".to_string()));
    }

    #[test]
    fn invalid_surrogate_sequences_are_rejected() {
        // High surrogate followed by a non-surrogate escape.
        assert!(parse_value(r#""\ud800A""#).is_err());
        // High surrogate followed by another high surrogate.
        assert!(parse_value(r#""\ud800\ud800""#).is_err());
        // Lone high surrogate, lone low surrogate.
        assert!(parse_value(r#""\ud800""#).is_err());
        assert!(parse_value(r#""\udc00""#).is_err());
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        let mut out = String::new();
        write_value(&mut out, &Value::Float(f64::INFINITY), None, 0);
        assert_eq!(out, "null");
    }
}
