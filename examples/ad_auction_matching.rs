//! Domain scenario: advertiser–impression matching sharded across machines.
//!
//! A large ad exchange holds a bipartite compatibility graph between
//! advertisers and ad impressions. The edge log is huge and arrives sharded
//! across many ingestion servers (effectively a random partition — each edge
//! lands on an arbitrary server). We want a near-maximum matching with one
//! round of communication: every server sends a coreset, the planner composes
//! them.
//!
//! Run with `cargo run --release --example ad_auction_matching`.

use distsim::protocols::matching::{report_default_matching_protocol, report_subsampled_protocol};
use graph::gen::bipartite::planted_matching_bipartite;
use matching::maximum::maximum_matching;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // Advertisers and impressions; a planted perfect matching guarantees that
    // a full assignment exists, plus random compatibility noise.
    let advertisers = 10_000;
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let (bg, _) = planted_matching_bipartite(advertisers, 0.0004, &mut rng);
    let g = bg.to_graph();
    let opt = maximum_matching(&g).len();
    println!(
        "ad exchange graph: {} advertisers, {} impressions, {} compatible pairs",
        advertisers,
        advertisers,
        g.m()
    );
    println!("maximum assignment size (centralised): {opt}\n");

    let k = 32; // ingestion servers
    println!(
        "{:<28} {:>10} {:>12} {:>14}",
        "protocol", "matched", "ratio", "words sent"
    );
    for (label, report) in [
        (
            "exact coreset (Thm 1)",
            report_default_matching_protocol(&g, k, opt, 1).expect("k >= 1"),
        ),
        (
            "subsampled alpha=2 (Rmk 5.2)",
            report_subsampled_protocol(&g, k, 2.0, opt, 1).expect("k >= 1"),
        ),
        (
            "subsampled alpha=4 (Rmk 5.2)",
            report_subsampled_protocol(&g, k, 4.0, opt, 1).expect("k >= 1"),
        ),
    ] {
        println!(
            "{:<28} {:>10} {:>12.3} {:>14}",
            label,
            report.matching_size,
            report.approximation_ratio,
            report.communication.total_words()
        );
    }
    println!("\nThe exact coreset keeps the assignment within a small constant of optimal");
    println!("with one message per server; the subsampled variants cut the bytes on the");
    println!("wire by ~alpha^2 at a proportional loss in matched impressions.");
}
