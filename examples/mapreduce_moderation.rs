//! Domain scenario: choosing a moderation set on a social graph with MapReduce.
//!
//! A trust & safety team wants a small set of accounts such that every
//! suspicious interaction (edge) touches at least one selected account — a
//! vertex cover. The interaction log lives in a MapReduce cluster; round
//! transitions dominate the cost, so fewer rounds is the goal (the paper's
//! MapReduce motivation).
//!
//! Run with `cargo run --release --example mapreduce_moderation`.

use coresets::vc_coreset::PeelingVcCoreset;
use distsim::mapreduce::{MapReduceConfig, MapReduceSimulator};
use distsim::protocols::filtering::filtering_vertex_cover;
use graph::gen::powerlaw::chung_lu;
use matching::maximum::maximum_matching;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A heavy-tailed interaction graph (a few very active accounts).
    let n = 30_000;
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let g = chung_lu(n, 2.3, 10.0, &mut rng);
    let lower_bound = maximum_matching(&g).len(); // |max matching| <= |min VC|
    println!(
        "interaction graph: n = {}, m = {}, OPT >= {}",
        g.n(),
        g.m(),
        lower_bound
    );

    // The paper's MapReduce deployment: sqrt(n) machines, ~n*sqrt(n) memory.
    let cfg = MapReduceConfig::paper_defaults(n);
    println!(
        "\ncluster: k = {} machines, {} words of memory each",
        cfg.k, cfg.memory_words
    );

    let outcome = MapReduceSimulator::new(cfg)
        .run_vertex_cover(&g, &PeelingVcCoreset::new(), 5)
        .expect("k >= 1");
    assert!(outcome.answer.covers(&g));
    println!("\n-- coreset algorithm (this paper) --");
    println!("rounds:               {}", outcome.round_count());
    println!("within memory budget: {}", outcome.within_memory_budget);
    println!("moderation set size:  {}", outcome.answer.len());
    println!(
        "size / lower bound:   {:.3}",
        outcome.answer.len() as f64 / lower_bound as f64
    );

    // Baseline: filtering [46] — better approximation, more rounds.
    let (cover, filt) = filtering_vertex_cover(&g, (cfg.memory_words / 2) as usize, 5);
    assert!(cover.covers(&g));
    println!("\n-- filtering baseline (Lattanzi et al.) --");
    println!("rounds:               {}", filt.rounds);
    println!("moderation set size:  {}", cover.len());
    println!(
        "size / lower bound:   {:.3}",
        cover.len() as f64 / lower_bound as f64
    );

    println!(
        "\nThe coreset algorithm finishes in {} round(s); filtering needs {}.",
        outcome.round_count(),
        filt.rounds
    );
    println!("Filtering's set is smaller (2-approximation) — the paper trades approximation");
    println!("for round-optimality, which is usually the binding constraint in MapReduce.");
}
