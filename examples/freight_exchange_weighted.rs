//! Domain scenario: weighted carrier–load matching on a freight exchange.
//!
//! A freight exchange matches trucks (carriers) to loads; every compatible
//! pair has a value (the margin of the assignment). The pairing log is
//! sharded across regional brokers. We want a high-value matching with one
//! round of communication, using the paper's weighted extension: the
//! Crouch–Stubbs weight classes on top of the unweighted matching coreset.
//!
//! Run with `cargo run --release --example freight_exchange_weighted`.

use coresets::weighted::{
    compose_weighted_matching, WeightedCoresetOutput, WeightedMatchingCoreset,
};
use graph::partition::{partition_weighted, PartitionStrategy};
use graph::WeightedGraph;
use matching::weighted::greedy_weighted_matching;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // Carriers 0..n/2, loads n/2..n; margins span three orders of magnitude.
    let n = 12_000usize;
    let pairs = 90_000usize;
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let mut triples = Vec::with_capacity(pairs);
    while triples.len() < pairs {
        let carrier = rng.gen_range(0..n as u32 / 2);
        let load = rng.gen_range(n as u32 / 2..n as u32);
        let margin = 10.0_f64.powf(rng.gen_range(0.0..3.0)); // $1 .. $1000
        triples.push((carrier, load, margin));
    }
    let market = WeightedGraph::from_triples(n, triples).expect("valid pairing triples");
    println!(
        "freight exchange: {} carriers, {} loads, {} compatible pairs, total margin {:.0}",
        n / 2,
        n / 2,
        market.m(),
        market.total_weight()
    );

    // Centralised baseline: greedy weighted matching over the whole market
    // (a 1/2-approximation of the optimum).
    let baseline = greedy_weighted_matching(&market);
    println!(
        "\ncentralised greedy baseline: {} assignments, value {:.0}",
        baseline.len(),
        baseline.total_weight
    );

    // Distributed: each regional broker builds a Crouch–Stubbs coreset.
    println!(
        "\n{:>4}  {:>12}  {:>12}  {:>16}  {:>14}",
        "k", "assignments", "value", "value / baseline", "edges shipped"
    );
    for k in [4usize, 8, 16, 32] {
        let mut part_rng = ChaCha8Rng::seed_from_u64(1000 + k as u64);
        let pieces = partition_weighted(&market, k, PartitionStrategy::Random, &mut part_rng)
            .expect("k >= 1");
        let builder = WeightedMatchingCoreset::default();
        let coresets: Vec<WeightedCoresetOutput> =
            pieces.iter().map(|p| builder.build(p)).collect();
        let shipped: usize = coresets.iter().map(WeightedCoresetOutput::size).sum();
        let composed = compose_weighted_matching(n, &coresets);
        assert!(composed.is_valid_for(&market));
        println!(
            "{:>4}  {:>12}  {:>12.0}  {:>16.3}  {:>14}",
            k,
            composed.len(),
            composed.total_weight,
            composed.total_weight / baseline.total_weight,
            shipped
        );
    }
    println!("\nShipping only the per-class matchings (≈ n log(max margin) edges per broker)");
    println!("retains most of the centrally computable value, as the paper's weighted");
    println!("extension predicts (at most a further factor-2 loss over the unweighted case).");
}
