//! Quickstart: build randomized composable coresets for matching and vertex
//! cover on a random graph, compose them, and compare against the optimum.
//!
//! Run with `cargo run --release --example quickstart`.

use coresets::{DistributedMatching, DistributedVertexCover};
use graph::gen::er::gnp;
use matching::maximum::maximum_matching;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. A random input graph: 20,000 vertices, average degree ~8.
    let n = 20_000;
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let g = gnp(n, 8.0 / n as f64, &mut rng);
    println!("input graph: n = {}, m = {}", g.n(), g.m());

    // 2. The model: the edges are randomly partitioned across k machines, each
    //    machine sends a small coreset, the coordinator solves on the union.
    let k = 16;

    // 3. Maximum matching (Theorem 1): each machine's coreset is any maximum
    //    matching of its piece, at most n/2 edges.
    let result = DistributedMatching::new(k).run(&g, 7).expect("k >= 1");
    let opt = maximum_matching(&g).len();
    println!("\n-- maximum matching --");
    println!("optimum (whole graph):        {opt}");
    println!("coreset composition:          {}", result.matching.len());
    println!(
        "approximation ratio:          {:.3}",
        opt as f64 / result.matching.len() as f64
    );
    println!(
        "communication (edges total):  {} (~{:.2} per vertex per machine)",
        result.total_coreset_size(),
        result.total_coreset_size() as f64 / (n * k) as f64
    );

    // 4. Minimum vertex cover (Theorem 2): each machine peels its high-degree
    //    vertices and forwards the sparse residual subgraph.
    let result = DistributedVertexCover::new(k).run(&g, 7).expect("k >= 1");
    assert!(result.cover.covers(&g));
    println!("\n-- minimum vertex cover --");
    println!("matching lower bound on OPT:  {opt}");
    println!("coreset composition:          {}", result.cover.len());
    println!(
        "ratio vs lower bound:         {:.3}",
        result.cover.len() as f64 / opt as f64
    );
    println!(
        "total coreset size:           {}",
        result.total_coreset_size()
    );
    println!("\n(the paper proves O(1) and O(log n) approximation respectively, w.h.p.)");
}
