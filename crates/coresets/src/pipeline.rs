//! End-to-end runners: random partition → per-machine coresets (on parallel
//! OS threads) → coordinator composition.
//!
//! The partition lives in a single [`graph::PartitionedGraph`] edge arena:
//! one machine-sorted copy of the edge set whose per-machine pieces are
//! zero-copy [`graph::GraphView`]s. A full run therefore performs exactly
//! one edge permutation and **zero** per-machine graph clones (experiment
//! E12 pins this down via `graph::metrics`).
//!
//! These are the entry points most applications and examples use. They model
//! the full simultaneous protocol of the paper on a single host: the `k`
//! "machines" build their coresets concurrently on a scoped pool of real
//! `std::thread` workers (the vendored rayon backend; worker count from
//! `RC_THREADS` / `RAYON_NUM_THREADS` or all available cores) that race a
//! work-stealing chunk queue, so a dense machine of a skewed partition
//! occupies one worker while its siblings drain the rest, and the
//! returned reports include the per-machine coreset sizes so that callers can
//! reason about communication (the `distsim` crate layers precise accounting
//! and the MapReduce model on top of these primitives).
//!
//! **Determinism:** the random partition is drawn and every machine's private
//! `ChaCha8Rng` stream is derived from `(seed, machine)` *before* the
//! parallel fan-out, and per-machine outputs are collected in machine order —
//! so for a fixed seed the results are bit-identical regardless of how many
//! worker threads run the machines or how they are scheduled. The
//! composition side keeps the same discipline: its independent sub-solves
//! (warm-start screening, per-residual-slice statistics, per-weight-class
//! matchings) fan out on the pool and reassemble in input order, while the
//! order-defined greedy scans stay sequential (see [`crate::compose`] and
//! [`crate::weighted`]).
//!
//! **Solver hot path:** every maximum-matching solve in the run — the
//! per-piece coresets and the coordinator's composed solve — goes through
//! [`matching::MatchingEngine`]: the piece is compacted onto its non-isolated
//! vertices, one CSR is shared by the bipartiteness check and the solver, the
//! blossom search state is an epoch-reset workspace reused across the solves
//! of each worker thread, and the composed solve is warm-started from the
//! best per-machine coreset (see [`crate::compose::solve_composed_matching`]).
//! Experiment E13 (`exp_solver_hotpath`) measures this path against the
//! pre-overhaul solver.
//!
//! **Vertex-cover hot path:** symmetrically, every peeling and
//! 2-approximation call — the per-piece `VC-Coreset` peelings and the
//! coordinator's composition — runs on the worker thread's reusable
//! `vertexcover::VcEngine`: threshold rounds peel through a bucket queue in
//! `O(vertices peeled + edges removed)` instead of rescanning the residual
//! buffer, and the composed 2-approximation scans the residual slices
//! without materializing their union. A full VC run performs **zero**
//! per-round edge-buffer reallocations
//! (`graph::metrics::vc_peel_scratch_elems` stays 0; experiment E14,
//! `exp_vc_hotpath`, measures this path against the pre-engine peeling).

use crate::compose::{compose_vertex_cover, solve_composed_matching};
use crate::matching_coreset::{MatchingCoresetBuilder, MaximumMatchingCoreset};
use crate::params::CoresetParams;
use crate::streams::machine_jobs;
use crate::vc_coreset::{PeelingVcCoreset, VcCoresetBuilder, VcCoresetOutput};
use graph::partition::PartitionedGraph;
use graph::{Graph, GraphError, GraphView};
use matching::matching::Matching;
use matching::maximum::MaximumMatchingAlgorithm;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use vertexcover::VertexCover;

/// Result of a distributed matching run.
#[derive(Debug, Clone)]
pub struct MatchingRunResult {
    /// The matching extracted from the composed coresets.
    pub matching: Matching,
    /// Size of each machine's coreset, in edges.
    pub coreset_sizes: Vec<usize>,
    /// Number of edges each machine received from the random partition.
    pub piece_sizes: Vec<usize>,
}

impl MatchingRunResult {
    /// Total number of coreset edges sent to the coordinator.
    pub fn total_coreset_size(&self) -> usize {
        self.coreset_sizes.iter().sum()
    }
}

/// Result of a distributed vertex-cover run.
#[derive(Debug, Clone)]
pub struct VertexCoverRunResult {
    /// The composed vertex cover.
    pub cover: VertexCover,
    /// Size of each machine's coreset (fixed vertices + residual edges).
    pub coreset_sizes: Vec<usize>,
    /// Number of edges each machine received from the random partition.
    pub piece_sizes: Vec<usize>,
}

impl VertexCoverRunResult {
    /// Total coreset size sent to the coordinator.
    pub fn total_coreset_size(&self) -> usize {
        self.coreset_sizes.iter().sum()
    }
}

/// End-to-end distributed maximum matching via randomized composable coresets
/// (Theorem 1 + the coordinator's maximum matching).
#[derive(Clone)]
pub struct DistributedMatching<B: MatchingCoresetBuilder = MaximumMatchingCoreset> {
    k: usize,
    builder: B,
    coordinator_algorithm: MaximumMatchingAlgorithm,
}

impl DistributedMatching<MaximumMatchingCoreset> {
    /// The paper's default configuration: maximum-matching coresets on `k`
    /// machines, maximum matching at the coordinator.
    pub fn new(k: usize) -> Self {
        DistributedMatching {
            k,
            builder: MaximumMatchingCoreset::new(),
            coordinator_algorithm: MaximumMatchingAlgorithm::Auto,
        }
    }
}

impl<B: MatchingCoresetBuilder> DistributedMatching<B> {
    /// Uses a custom coreset builder (e.g. the maximal-matching negative
    /// control or the subsampled Remark 5.2 coreset).
    pub fn with_builder(k: usize, builder: B) -> Self {
        DistributedMatching {
            k,
            builder,
            coordinator_algorithm: MaximumMatchingAlgorithm::Auto,
        }
    }

    /// Overrides the algorithm the coordinator runs on the composed graph.
    pub fn coordinator_algorithm(mut self, algorithm: MaximumMatchingAlgorithm) -> Self {
        self.coordinator_algorithm = algorithm;
        self
    }

    /// Runs the protocol on `g` with a random `k`-partition derived from
    /// `seed`. The per-machine coreset construction runs on parallel OS
    /// threads; see the module docs for the determinism guarantee.
    pub fn run(&self, g: &Graph, seed: u64) -> Result<MatchingRunResult, GraphError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // One edge permutation into the arena; pieces are zero-copy views.
        let partition = PartitionedGraph::random(g, self.k, &mut rng)?;
        Ok(self.run_on_partition(g.n(), &partition.views(), seed))
    }

    /// Runs the protocol on an existing partition, given as zero-copy views
    /// (an arena's [`PartitionedGraph::views`], or [`graph::views_of`] over
    /// owned pieces — useful when the caller wants a non-random partition for
    /// comparison experiments). `seed` derives each machine's private RNG
    /// stream.
    pub fn run_on_partition(
        &self,
        n: usize,
        pieces: &[GraphView<'_>],
        seed: u64,
    ) -> MatchingRunResult {
        let params = CoresetParams::new(n, pieces.len().max(1));
        // All randomness is fixed here, before the fan-out: machine i's
        // stream is a pure function of (seed, i).
        let coresets: Vec<Graph> = machine_jobs(pieces, seed)
            .into_par_iter()
            .map(|(i, piece, mut rng)| self.builder.build(*piece, &params, i, &mut rng))
            .collect();
        let coreset_sizes = coresets.iter().map(Graph::m).collect();
        let piece_sizes = pieces.iter().map(GraphView::m).collect();
        let matching = solve_composed_matching(&coresets, self.coordinator_algorithm);
        MatchingRunResult {
            matching,
            coreset_sizes,
            piece_sizes,
        }
    }
}

/// End-to-end distributed minimum vertex cover via randomized composable
/// coresets (Theorem 2 + the coordinator's 2-approximation).
#[derive(Clone)]
pub struct DistributedVertexCover<B: VcCoresetBuilder = PeelingVcCoreset> {
    k: usize,
    builder: B,
}

impl DistributedVertexCover<PeelingVcCoreset> {
    /// The paper's default configuration: peeling coresets on `k` machines.
    pub fn new(k: usize) -> Self {
        DistributedVertexCover {
            k,
            builder: PeelingVcCoreset::new(),
        }
    }
}

impl<B: VcCoresetBuilder> DistributedVertexCover<B> {
    /// Uses a custom coreset builder (e.g. the local-cover negative control).
    pub fn with_builder(k: usize, builder: B) -> Self {
        DistributedVertexCover { k, builder }
    }

    /// Runs the protocol on `g` with a random `k`-partition derived from
    /// `seed`. The per-machine coreset construction runs on parallel OS
    /// threads; see the module docs for the determinism guarantee.
    pub fn run(&self, g: &Graph, seed: u64) -> Result<VertexCoverRunResult, GraphError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // One edge permutation into the arena; pieces are zero-copy views.
        let partition = PartitionedGraph::random(g, self.k, &mut rng)?;
        Ok(self.run_on_partition(g.n(), &partition.views(), seed))
    }

    /// Runs the protocol on an existing partition, given as zero-copy views.
    /// `seed` derives each machine's private RNG stream.
    pub fn run_on_partition(
        &self,
        n: usize,
        pieces: &[GraphView<'_>],
        seed: u64,
    ) -> VertexCoverRunResult {
        let params = CoresetParams::new(n, pieces.len().max(1));
        let outputs: Vec<VcCoresetOutput> = machine_jobs(pieces, seed)
            .into_par_iter()
            .map(|(i, piece, mut rng)| self.builder.build(*piece, &params, i, &mut rng))
            .collect();
        let coreset_sizes = outputs.iter().map(VcCoresetOutput::size).collect();
        let piece_sizes = pieces.iter().map(GraphView::m).collect();
        let cover = compose_vertex_cover(&outputs);
        VertexCoverRunResult {
            cover,
            coreset_sizes,
            piece_sizes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching_coreset::AvoidingMaximalMatchingCoreset;
    use crate::vc_coreset::LocalCoverCoreset;
    use graph::gen::er::gnp;
    use graph::gen::hard::maximal_matching_trap;
    use graph::gen::structured::star_forest;
    use matching::maximum::maximum_matching;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn matching_pipeline_end_to_end() {
        let mut r = rng(1);
        let g = gnp(800, 0.01, &mut r);
        let result = DistributedMatching::new(8).run(&g, 123).unwrap();
        assert!(result.matching.is_valid_for(&g));
        assert_eq!(result.coreset_sizes.len(), 8);
        assert_eq!(result.piece_sizes.iter().sum::<usize>(), g.m());
        let opt = maximum_matching(&g).len();
        assert!(9 * result.matching.len() >= opt);
        // Each coreset is a matching, so at most n/2 edges.
        assert!(result.coreset_sizes.iter().all(|&s| s <= g.n() / 2));
    }

    #[test]
    fn matching_pipeline_is_deterministic_for_fixed_seed() {
        let mut r = rng(2);
        let g = gnp(300, 0.02, &mut r);
        let a = DistributedMatching::new(4).run(&g, 7).unwrap();
        let b = DistributedMatching::new(4).run(&g, 7).unwrap();
        assert_eq!(a.matching.len(), b.matching.len());
        assert_eq!(a.coreset_sizes, b.coreset_sizes);
    }

    #[test]
    fn vertex_cover_pipeline_end_to_end() {
        let mut r = rng(3);
        let g = gnp(1000, 0.01, &mut r);
        let result = DistributedVertexCover::new(6).run(&g, 99).unwrap();
        assert!(result.cover.covers(&g));
        assert_eq!(result.coreset_sizes.len(), 6);
        assert!(result.total_coreset_size() > 0);
    }

    #[test]
    fn zero_machines_is_an_error() {
        let g = gnp(50, 0.1, &mut rng(4));
        assert!(DistributedMatching::new(0).run(&g, 1).is_err());
        assert!(DistributedVertexCover::new(0).run(&g, 1).is_err());
    }

    #[test]
    fn maximum_beats_adversarial_maximal_on_the_trap_instance() {
        // The Section 1.2 separation: on the trap instance, maximum-matching
        // coresets compose to a near-optimal matching while adversarially
        // chosen maximal-matching coresets are stuck near |C| + (leaked
        // planted edges) ~ n/k.
        let k = 8;
        let n = 400;
        let inst = maximal_matching_trap(n, 1.0 / k as f64).unwrap();
        let avoid = AvoidingMaximalMatchingCoreset::new(inst.planted_matching.iter().copied());
        let good = DistributedMatching::new(k).run(&inst.graph, 5).unwrap();
        let bad = DistributedMatching::with_builder(k, avoid)
            .run(&inst.graph, 5)
            .unwrap();
        assert!(good.matching.is_valid_for(&inst.graph));
        assert!(bad.matching.is_valid_for(&inst.graph));
        assert!(
            good.matching.len() >= 2 * bad.matching.len(),
            "maximum coreset ({}) should beat the adversarial maximal coreset ({}) clearly",
            good.matching.len(),
            bad.matching.len()
        );
        // The good coreset recovers most of the optimum (which is >= n).
        assert!(good.matching.len() * 10 >= 9 * n);
    }

    #[test]
    fn peeling_beats_local_cover_on_star_forests() {
        // The Section 1.2 star separation for vertex cover.
        let g = star_forest(6, 200);
        let k = 10;
        let good = DistributedVertexCover::new(k).run(&g, 11).unwrap();
        let bad = DistributedVertexCover::with_builder(k, LocalCoverCoreset::adversarial())
            .run(&g, 11)
            .unwrap();
        assert!(good.cover.covers(&g));
        assert!(bad.cover.covers(&g));
        assert!(
            bad.cover.len() >= 3 * good.cover.len(),
            "local covers ({}) should be much larger than the composed peeling cover ({})",
            bad.cover.len(),
            good.cover.len()
        );
    }
}
