//! The `GreedyMatch` combining process (paper, Section 3.1).
//!
//! `GreedyMatch` is how the paper *analyses* Theorem 1: process the machines
//! in order `i = 1..k`, and extend a growing matching `M^(i-1)` with every
//! edge of a maximum matching of `G^(i)` that does not conflict. Lemma 3.2
//! shows each of the first `k/3` steps adds `Ω(MM(G)/k)` edges as long as the
//! matching is still small, so the final matching is `Ω(MM(G))`.
//!
//! In the library the coordinator normally just runs a maximum-matching
//! algorithm on the union of the coresets (which can only do better), but the
//! process is exposed here because:
//!
//! * it is itself a valid (and cheaper) composition rule, and
//! * experiment E10 traces its per-step growth to visualise Lemma 3.2.

use graph::GraphRef;
use matching::matching::Matching;

/// Per-step trace of the `GreedyMatch` process.
#[derive(Debug, Clone, Default)]
pub struct GreedyMatchTrace {
    /// `sizes[i]` = |M^(i+1)|, the matching size after processing machine `i`.
    pub sizes: Vec<usize>,
    /// Edges added by each step (`added[i] = sizes[i] - sizes[i-1]`).
    pub added: Vec<usize>,
}

impl GreedyMatchTrace {
    /// Final matching size (0 if no machines were processed).
    pub fn final_size(&self) -> usize {
        self.sizes.last().copied().unwrap_or(0)
    }
}

/// Runs `GreedyMatch` over the per-machine coreset subgraphs (each of which is
/// a matching, e.g. the output of
/// [`crate::matching_coreset::MaximumMatchingCoreset`]), in the given order.
///
/// Returns the final matching and the per-step trace. The process works for
/// any list of edge-disjoint subgraphs; edges of `coresets[i]` that conflict
/// with the matching built so far are skipped, exactly as in the paper.
///
/// Generic over [`GraphRef`], so callers holding zero-copy
/// [`graph::GraphView`]s (arena pieces, borrowed coreset slices) can compose
/// them directly — nothing is materialized into owned per-coreset `Graph`s
/// (the `graph::metrics::piece_edges_materialized` counter stays untouched).
pub fn greedy_match<G: GraphRef>(n: usize, coresets: &[G]) -> (Matching, GreedyMatchTrace) {
    let mut matched = vec![false; n];
    let mut matching = Matching::new();
    let mut trace = GreedyMatchTrace::default();
    for coreset in coresets {
        let before = matching.len();
        for &e in coreset.edges() {
            matching.try_add(e, &mut matched);
        }
        let after = matching.len();
        trace.sizes.push(after);
        trace.added.push(after - before);
    }
    (matching, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching_coreset::{MatchingCoresetBuilder, MaximumMatchingCoreset};
    use crate::params::CoresetParams;
    use graph::gen::bipartite::planted_matching_bipartite;
    use graph::gen::er::gnp;
    use graph::partition::EdgePartition;
    use graph::{Graph, GraphRef};
    use matching::maximum::maximum_matching;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn trace_is_monotone_and_consistent() {
        let mut r = rng(1);
        let g = gnp(300, 0.02, &mut r);
        let k = 5;
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let coresets: Vec<Graph> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                MaximumMatchingCoreset::new().build(
                    p.as_view(),
                    &params,
                    i,
                    &mut crate::streams::machine_rng(0, i),
                )
            })
            .collect();
        let (m, trace) = greedy_match(g.n(), &coresets);
        assert!(m.is_valid_for(&g));
        assert_eq!(trace.sizes.len(), k);
        for w in trace.sizes.windows(2) {
            assert!(w[1] >= w[0], "matching size never decreases");
        }
        let total_added: usize = trace.added.iter().sum();
        assert_eq!(total_added, trace.final_size());
        assert_eq!(m.len(), trace.final_size());
    }

    #[test]
    fn greedy_match_achieves_constant_fraction_on_random_graphs() {
        // Lemma 3.1: the output is a constant-factor approximation w.h.p.
        // (the paper proves >= MM/9; random graphs do far better).
        let mut r = rng(2);
        let g = gnp(800, 0.01, &mut r);
        let opt = maximum_matching(&g).len();
        for k in [2usize, 4, 8] {
            let part = EdgePartition::random(&g, k, &mut r).unwrap();
            let params = CoresetParams::new(g.n(), k);
            let coresets: Vec<Graph> = part
                .pieces()
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    MaximumMatchingCoreset::new().build(
                        p.as_view(),
                        &params,
                        i,
                        &mut crate::streams::machine_rng(0, i),
                    )
                })
                .collect();
            let (m, _) = greedy_match(g.n(), &coresets);
            assert!(
                9 * m.len() >= opt,
                "k={k}: greedy-match size {} below the Theorem 1 bound (opt = {opt})",
                m.len()
            );
        }
    }

    #[test]
    fn greedy_match_on_planted_instance_tracks_lemma_growth() {
        // On a planted perfect matching plus noise, each early step should add
        // a healthy number of edges (Lemma 3.2's Ω(MM/k) growth).
        let mut r = rng(3);
        let n_side = 600;
        let (bg, _) = planted_matching_bipartite(n_side, 0.002, &mut r);
        let g = bg.to_graph();
        let k = 6;
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let coresets: Vec<Graph> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                MaximumMatchingCoreset::new().build(
                    p.as_view(),
                    &params,
                    i,
                    &mut crate::streams::machine_rng(0, i),
                )
            })
            .collect();
        let (m, trace) = greedy_match(g.n(), &coresets);
        let opt = n_side; // the planted matching is perfect
        assert!(9 * m.len() >= opt);
        // First k/3 steps each add at least a small constant fraction of opt/k.
        for step in 0..(k / 3) {
            assert!(
                trace.added[step] * 20 >= opt / k,
                "step {step} added only {} edges (opt/k = {})",
                trace.added[step],
                opt / k
            );
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let (m, trace) = greedy_match::<Graph>(10, &[]);
        assert!(m.is_empty());
        assert_eq!(trace.final_size(), 0);

        let empty_pieces = vec![Graph::empty(10), Graph::empty(10)];
        let (m, trace) = greedy_match(10, &empty_pieces);
        assert!(m.is_empty());
        assert_eq!(trace.sizes, vec![0, 0]);
    }

    #[test]
    fn views_compose_identically_to_owned_graphs_without_materializing() {
        let mut r = rng(4);
        let g = gnp(250, 0.03, &mut r);
        let k = 4;
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let coresets: Vec<Graph> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                MaximumMatchingCoreset::new().build(
                    p.as_view(),
                    &params,
                    i,
                    &mut crate::streams::machine_rng(0, i),
                )
            })
            .collect();
        let before = graph::metrics::piece_edges_materialized();
        let views = graph::views_of(&coresets);
        let (from_views, trace_views) = greedy_match(g.n(), &views);
        assert_eq!(
            graph::metrics::piece_edges_materialized(),
            before,
            "composing views must not materialize owned per-coreset graphs"
        );
        let (from_owned, trace_owned) = greedy_match(g.n(), &coresets);
        assert_eq!(from_views, from_owned);
        assert_eq!(trace_views.sizes, trace_owned.sizes);
    }
}
