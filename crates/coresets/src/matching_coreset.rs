//! Matching coresets: the paper's positive result and its controls.
//!
//! * [`MaximumMatchingCoreset`] — **Theorem 1**: any maximum matching of the
//!   piece `G^(i)` is an O(1)-approximation randomized composable coreset of
//!   size O(n). The coreset *is* the matching, viewed as a subgraph.
//! * [`MaximalMatchingCoreset`] — the negative control from Section 1.2: an
//!   arbitrary (adversarially ordered) maximal matching, which composes to
//!   only an `Ω(k)`-approximation on the trap instances.
//! * [`SubsampledMatchingCoreset`] — **Remark 5.2**: subsample the maximum
//!   matching keeping each edge with probability `1/α`; the composition is an
//!   α-approximation with total communication `Õ(nk/α²)`.

use crate::params::CoresetParams;
use graph::{Csr, Edge, Graph, GraphView};
use matching::greedy::{maximal_matching, maximal_matching_by_key};
use matching::maximum::{maximum_matching_with, MaximumMatchingAlgorithm};
use rand_chacha::ChaCha8Rng;

/// A builder that turns one machine's piece `G^(i)` into its matching coreset
/// (a subgraph of the piece, to be unioned at the coordinator).
pub trait MatchingCoresetBuilder: Send + Sync {
    /// Builds the coreset subgraph of `piece`.
    ///
    /// `piece` is a **zero-copy view** into the run's partition arena
    /// ([`graph::PartitionedGraph`]) — builders never receive (or clone) an
    /// owned per-machine graph. `params` carries the global `n` and `k`;
    /// `machine` is this machine's index. `rng` is this machine's **private**
    /// random stream, derived by the protocol runner from `(seed, machine)`
    /// via [`crate::streams::machine_rng`] *before* the parallel fan-out, so
    /// a builder's output depends only on its inputs — never on thread count
    /// or scheduling. Deterministic builders simply ignore it.
    fn build(
        &self,
        piece: GraphView<'_>,
        params: &CoresetParams,
        machine: usize,
        rng: &mut ChaCha8Rng,
    ) -> Graph;

    /// Short human-readable name used in experiment tables.
    fn name(&self) -> &'static str;
}

/// Theorem 1 coreset: an arbitrary maximum matching of the piece.
///
/// The solve runs on the calling worker thread's reusable
/// [`matching::MatchingEngine`] (vertex compaction, one shared CSR for the
/// bipartiteness check + solver, epoch-reset blossom workspace), so building
/// many coresets on one thread allocates the solver state once — the E13 hot
/// path.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaximumMatchingCoreset {
    /// Which maximum-matching algorithm to run on the piece (Theorem 1 holds
    /// for *any* of them; experiments verify the quality is unchanged).
    pub algorithm: MaximumMatchingAlgorithm,
}

impl MaximumMatchingCoreset {
    /// Coreset using automatic algorithm selection (Hopcroft–Karp when
    /// bipartite, Blossom otherwise).
    pub fn new() -> Self {
        Self {
            algorithm: MaximumMatchingAlgorithm::Auto,
        }
    }

    /// Coreset forcing a specific maximum-matching algorithm.
    pub fn with_algorithm(algorithm: MaximumMatchingAlgorithm) -> Self {
        Self { algorithm }
    }
}

impl MatchingCoresetBuilder for MaximumMatchingCoreset {
    fn build(
        &self,
        piece: GraphView<'_>,
        _params: &CoresetParams,
        _machine: usize,
        _rng: &mut ChaCha8Rng,
    ) -> Graph {
        let m = maximum_matching_with(&piece, self.algorithm);
        // A matching is trivially simple; wrap it without a validation pass.
        Graph::from_edges_unchecked(piece.n(), m.into_edges())
    }

    fn name(&self) -> &'static str {
        "maximum-matching"
    }
}

/// Negative control: an arbitrary maximal matching of the piece.
///
/// `adversarial_low_ids_first = true` reproduces the paper's Ω(k) separation
/// on the trap instance by scanning edges in an order that prefers edges
/// incident on low-numbered "trap" vertices; with `false` the input edge order
/// is used (still only 2-approximate locally, and still poor in composition).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaximalMatchingCoreset {
    /// Whether to sort edges so that high-vertex-id endpoints (the trap block
    /// in [`graph::gen::hard::maximal_matching_trap`]) are matched first.
    pub adversarial_prefer_high_ids: bool,
}

impl MaximalMatchingCoreset {
    /// Maximal matching in input order.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maximal matching with the adversarial order that prefers edges whose
    /// larger endpoint is as high as possible (the trap edges).
    pub fn adversarial() -> Self {
        MaximalMatchingCoreset {
            adversarial_prefer_high_ids: true,
        }
    }
}

impl MatchingCoresetBuilder for MaximalMatchingCoreset {
    fn build(
        &self,
        piece: GraphView<'_>,
        _params: &CoresetParams,
        _machine: usize,
        _rng: &mut ChaCha8Rng,
    ) -> Graph {
        let m = if self.adversarial_prefer_high_ids {
            // Sort key is descending in the larger endpoint: trap vertices sit
            // at the top of the id range in the trap instance.
            maximal_matching_by_key(&piece, |e: &Edge| std::cmp::Reverse(e.v))
        } else {
            maximal_matching(&piece)
        };
        Graph::from_edges_unchecked(piece.n(), m.into_edges())
    }

    fn name(&self) -> &'static str {
        if self.adversarial_prefer_high_ids {
            "maximal-matching-adversarial"
        } else {
            "maximal-matching"
        }
    }
}

/// Worst-case negative control: a maximal matching chosen *adversarially
/// against a known target matching* (for instance the planted perfect matching
/// of the trap instance).
///
/// The paper's Section 1.2 claim is that an **arbitrary** maximal matching is
/// only an `Ω(k)`-approximate coreset, i.e. there *exists* a choice of maximal
/// matchings whose composition is that bad. This builder realises the bad
/// choice: for every avoided edge present in the piece it first matches one of
/// that edge's endpoints to some other neighbour (blocking the avoided edge),
/// and then completes to a maximal matching preferring non-avoided edges. The
/// output is always a legitimate maximal matching of the piece.
#[derive(Debug, Clone, Default)]
pub struct AvoidingMaximalMatchingCoreset {
    /// The edges the adversary tries to keep out of the matching.
    pub avoid: std::collections::BTreeSet<Edge>,
}

impl AvoidingMaximalMatchingCoreset {
    /// Creates an adversarial builder avoiding the given edges.
    pub fn new<I: IntoIterator<Item = Edge>>(avoid: I) -> Self {
        AvoidingMaximalMatchingCoreset {
            avoid: avoid.into_iter().collect(),
        }
    }
}

impl MatchingCoresetBuilder for AvoidingMaximalMatchingCoreset {
    fn build(
        &self,
        piece: GraphView<'_>,
        _params: &CoresetParams,
        _machine: usize,
        _rng: &mut ChaCha8Rng,
    ) -> Graph {
        let adj = Csr::from_ref(&piece);
        let mut matched = vec![false; piece.n()];
        let mut chosen: Vec<Edge> = Vec::new();

        // Phase 1: actively block every avoided edge that is present locally
        // by matching one of its endpoints along a non-avoided edge.
        for e in piece.edges() {
            if !self.avoid.contains(e) {
                continue;
            }
            if matched[e.u as usize] || matched[e.v as usize] {
                continue; // already blocked
            }
            'endpoints: for &endpoint in &[e.u, e.v] {
                for &nbr in adj.neighbors(endpoint) {
                    let candidate = Edge::new(endpoint, nbr);
                    if self.avoid.contains(&candidate) {
                        continue;
                    }
                    if !matched[nbr as usize] && !matched[endpoint as usize] {
                        matched[endpoint as usize] = true;
                        matched[nbr as usize] = true;
                        chosen.push(candidate);
                        break 'endpoints;
                    }
                }
            }
        }

        // Phase 2: complete to a maximal matching, non-avoided edges first.
        for e in piece.edges() {
            if self.avoid.contains(e) {
                continue;
            }
            if !matched[e.u as usize] && !matched[e.v as usize] {
                matched[e.u as usize] = true;
                matched[e.v as usize] = true;
                chosen.push(*e);
            }
        }
        for e in piece.edges() {
            if !matched[e.u as usize] && !matched[e.v as usize] {
                matched[e.u as usize] = true;
                matched[e.v as usize] = true;
                chosen.push(*e);
            }
        }

        Graph::from_edges_unchecked(piece.n(), chosen)
    }

    fn name(&self) -> &'static str {
        "maximal-matching-avoiding"
    }
}

/// Remark 5.2 coreset: a maximum matching of the piece, subsampled edge-wise
/// with probability `1/alpha`.
///
/// Composing the subsampled coresets yields an `O(alpha)`-approximation while
/// the per-machine communication drops to `O(n / alpha)` edges in expectation
/// (total `Õ(nk/alpha²)` when each machine's matching has size `O(n/alpha)`,
/// which is the regime of the tight lower bound).
#[derive(Debug, Clone, Copy)]
pub struct SubsampledMatchingCoreset {
    /// The target approximation factor `alpha >= 1`.
    pub alpha: f64,
    /// Algorithm for the underlying maximum matching.
    pub algorithm: MaximumMatchingAlgorithm,
}

impl SubsampledMatchingCoreset {
    /// Creates the Remark 5.2 coreset for approximation target `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha >= 1.0, "alpha must be at least 1, got {alpha}");
        SubsampledMatchingCoreset {
            alpha,
            algorithm: MaximumMatchingAlgorithm::Auto,
        }
    }
}

impl MatchingCoresetBuilder for SubsampledMatchingCoreset {
    fn build(
        &self,
        piece: GraphView<'_>,
        _params: &CoresetParams,
        _machine: usize,
        rng: &mut ChaCha8Rng,
    ) -> Graph {
        use rand::Rng;
        let m = maximum_matching_with(&piece, self.algorithm);
        // The subsampling consumes this machine's private stream: independent
        // across machines, reproducible for a fixed seed, and identical no
        // matter how the machines are scheduled onto threads.
        let keep_p = 1.0 / self.alpha;
        let kept: Vec<Edge> = m
            .into_edges()
            .into_iter()
            .filter(|_| rng.gen_bool(keep_p))
            .collect();
        Graph::from_edges_unchecked(piece.n(), kept)
    }

    fn name(&self) -> &'static str {
        "subsampled-maximum-matching"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen::er::gnp;
    use graph::partition::EdgePartition;
    use graph::GraphRef;
    use matching::matching::Matching;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn params(n: usize, k: usize) -> CoresetParams {
        CoresetParams::new(n, k)
    }

    /// Machine 0's private stream for an arbitrary fixed test seed.
    fn mrng(machine: usize) -> ChaCha8Rng {
        crate::streams::machine_rng(0, machine)
    }

    #[test]
    fn maximum_coreset_is_a_maximum_matching_of_the_piece() {
        let mut r = rng(1);
        let g = gnp(120, 0.05, &mut r);
        let part = EdgePartition::random(&g, 4, &mut r).unwrap();
        let piece = &part.pieces()[0];
        let coreset =
            MaximumMatchingCoreset::new().build(piece.as_view(), &params(120, 4), 0, &mut mrng(0));
        // The coreset is a subgraph of the piece and forms a matching.
        let piece_edges: std::collections::HashSet<_> = piece.edges().iter().collect();
        assert!(coreset.edges().iter().all(|e| piece_edges.contains(e)));
        assert!(Matching::try_from_edges(coreset.edges().to_vec()).is_some());
        // Its size equals the maximum matching size of the piece.
        let opt = matching::maximum::maximum_matching(piece).len();
        assert_eq!(coreset.m(), opt);
    }

    #[test]
    fn coreset_size_is_at_most_n_over_2() {
        let mut r = rng(2);
        let g = gnp(200, 0.1, &mut r);
        let coreset =
            MaximumMatchingCoreset::new().build(g.as_view(), &params(200, 1), 0, &mut mrng(0));
        assert!(coreset.m() <= 100, "a matching has at most n/2 edges");
    }

    #[test]
    fn maximal_coreset_is_maximal_in_the_piece() {
        let mut r = rng(3);
        let g = gnp(100, 0.06, &mut r);
        let coreset =
            MaximalMatchingCoreset::new().build(g.as_view(), &params(100, 1), 0, &mut mrng(0));
        let m = Matching::try_from_edges(coreset.edges().to_vec()).unwrap();
        assert!(m.is_maximal_in(&g));
    }

    #[test]
    fn adversarial_order_prefers_high_ids() {
        // Path 0-1-2 plus edge 1-3: adversarial prefers (1,3) over (0,1)/(1,2).
        let g = Graph::from_pairs(4, vec![(0, 1), (1, 2), (1, 3)]).unwrap();
        let coreset = MaximalMatchingCoreset::adversarial().build(
            g.as_view(),
            &params(4, 1),
            0,
            &mut mrng(0),
        );
        assert!(coreset.has_edge(1, 3));
    }

    #[test]
    fn subsampled_coreset_is_smaller() {
        let mut r = rng(4);
        let g = gnp(600, 0.02, &mut r);
        let full =
            MaximumMatchingCoreset::new().build(g.as_view(), &params(600, 1), 0, &mut mrng(0));
        let sub = SubsampledMatchingCoreset::new(4.0).build(
            g.as_view(),
            &params(600, 1),
            0,
            &mut mrng(0),
        );
        assert!(sub.m() < full.m());
        // Expected to keep about 1/4 of the edges; allow wide slack.
        assert!(sub.m() as f64 > full.m() as f64 * 0.05);
        assert!((sub.m() as f64) < full.m() as f64 * 0.6);
    }

    #[test]
    fn subsampled_alpha_one_keeps_everything() {
        let mut r = rng(5);
        let g = gnp(100, 0.05, &mut r);
        let full =
            MaximumMatchingCoreset::new().build(g.as_view(), &params(100, 1), 0, &mut mrng(0));
        let sub = SubsampledMatchingCoreset::new(1.0).build(
            g.as_view(),
            &params(100, 1),
            0,
            &mut mrng(0),
        );
        assert_eq!(full.m(), sub.m());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn subsampled_rejects_alpha_below_one() {
        let _ = SubsampledMatchingCoreset::new(0.5);
    }

    #[test]
    fn builders_report_names() {
        assert_eq!(MaximumMatchingCoreset::new().name(), "maximum-matching");
        assert_eq!(MaximalMatchingCoreset::new().name(), "maximal-matching");
        assert_eq!(
            MaximalMatchingCoreset::adversarial().name(),
            "maximal-matching-adversarial"
        );
        assert_eq!(
            SubsampledMatchingCoreset::new(2.0).name(),
            "subsampled-maximum-matching"
        );
    }

    #[test]
    fn empty_piece_produces_empty_coreset() {
        let g = Graph::empty(10);
        assert!(MaximumMatchingCoreset::new()
            .build(g.as_view(), &params(10, 2), 0, &mut mrng(0))
            .is_empty());
        assert!(MaximalMatchingCoreset::new()
            .build(g.as_view(), &params(10, 2), 0, &mut mrng(0))
            .is_empty());
        assert!(SubsampledMatchingCoreset::new(2.0)
            .build(g.as_view(), &params(10, 2), 0, &mut mrng(0))
            .is_empty());
    }
}
