//! Size-capped coresets for the lower-bound experiments (Theorems 3 and 4).
//!
//! The paper's lower bounds say that *no* randomized composable coreset of
//! size `o(n/α²)` (matching) or `o(n/α)` (vertex cover) can achieve an
//! `α`-approximation. The lower bounds cannot be "run", but their *shape* can
//! be observed: cap the size of a (good) coreset below the threshold and watch
//! the approximation collapse on the hard distributions. These helpers apply
//! such caps deterministically (keeping a uniformly random subset of the
//! coreset would only add noise; the cap keeps the first `cap` items, which is
//! equivalent for the symmetric hard distributions).
//!
//! The underlying coreset constructions run on the worker thread's reusable
//! engines (`matching::MatchingEngine` for the matching coreset,
//! `vertexcover::VcEngine` for the peeling coreset), so the capped wrappers
//! inherit the allocation-free hot paths of experiments E13/E14; only the
//! cap itself copies (a bounded prefix of) the coreset.

use crate::matching_coreset::{MatchingCoresetBuilder, MaximumMatchingCoreset};
use crate::params::CoresetParams;
use crate::vc_coreset::VcCoresetOutput;
use graph::{Graph, GraphView};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A maximum-matching coreset truncated to at most `cap` edges per machine —
/// the builder the Theorem 3 lower-bound experiments (E5) and their
/// regression tests share. The truncation keeps a uniformly random subset of
/// the matching's edges, drawn from the machine's private stream.
#[derive(Debug, Clone, Copy)]
pub struct CappedMatchingCoreset {
    /// Maximum number of edges each machine may send (at least 1).
    pub cap: usize,
}

impl CappedMatchingCoreset {
    /// Creates a capped builder; a cap of 0 is clamped to 1 so every machine
    /// still sends something.
    pub fn new(cap: usize) -> Self {
        CappedMatchingCoreset { cap: cap.max(1) }
    }
}

impl MatchingCoresetBuilder for CappedMatchingCoreset {
    fn build(
        &self,
        piece: GraphView<'_>,
        params: &CoresetParams,
        machine: usize,
        rng: &mut ChaCha8Rng,
    ) -> Graph {
        let full = MaximumMatchingCoreset::new().build(piece, params, machine, rng);
        cap_matching_coreset(&full, self.cap, rng)
    }

    fn name(&self) -> &'static str {
        "capped-maximum-matching"
    }
}

/// Caps a matching coreset (a subgraph) at `cap` edges, keeping a uniformly
/// random subset of its edges.
pub fn cap_matching_coreset<R: Rng + ?Sized>(coreset: &Graph, cap: usize, rng: &mut R) -> Graph {
    if coreset.m() <= cap {
        return coreset.clone();
    }
    let mut edges = coreset.edges().to_vec();
    edges.shuffle(rng);
    edges.truncate(cap);
    // A subset of a simple graph's edges is simple; keep the shuffled order.
    Graph::from_edges_unchecked(coreset.n(), edges)
}

/// Caps a vertex-cover coreset at a total size of `cap` (fixed vertices count
/// first, then residual edges), keeping uniformly random subsets.
pub fn cap_vc_coreset<R: Rng + ?Sized>(
    output: &VcCoresetOutput,
    cap: usize,
    rng: &mut R,
) -> VcCoresetOutput {
    if output.size() <= cap {
        return output.clone();
    }
    let mut fixed = output.fixed_vertices.clone();
    fixed.shuffle(rng);
    fixed.truncate(cap);
    let remaining = cap - fixed.len();
    let mut edges = output.residual.edges().to_vec();
    edges.shuffle(rng);
    edges.truncate(remaining);
    VcCoresetOutput {
        fixed_vertices: fixed,
        residual: Graph::from_edges_unchecked(output.residual.n(), edges),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen::er::gnp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn matching_cap_enforced() {
        let mut r = rng(1);
        let g = gnp(200, 0.05, &mut r);
        let capped = cap_matching_coreset(&g, 10, &mut r);
        assert_eq!(capped.m(), 10);
        let orig: std::collections::HashSet<_> = g.edges().iter().collect();
        assert!(capped.edges().iter().all(|e| orig.contains(e)));

        // Cap above the size is a no-op.
        let uncapped = cap_matching_coreset(&g, g.m() + 5, &mut r);
        assert_eq!(uncapped.m(), g.m());
    }

    #[test]
    fn vc_cap_counts_vertices_and_edges() {
        let mut r = rng(2);
        let residual = gnp(100, 0.1, &mut r);
        let out = VcCoresetOutput {
            fixed_vertices: (0..50).collect(),
            residual,
        };
        let capped = cap_vc_coreset(&out, 60, &mut r);
        assert_eq!(capped.size(), 60);
        assert_eq!(
            capped.fixed_vertices.len(),
            50,
            "fixed vertices are kept first"
        );
        assert_eq!(capped.residual.m(), 10);

        let tight = cap_vc_coreset(&out, 20, &mut r);
        assert_eq!(tight.size(), 20);
        assert_eq!(tight.fixed_vertices.len(), 20);
        assert_eq!(tight.residual.m(), 0);
    }

    #[test]
    fn zero_cap_produces_empty_coreset() {
        let mut r = rng(3);
        let g = gnp(50, 0.2, &mut r);
        assert_eq!(cap_matching_coreset(&g, 0, &mut r).m(), 0);
        let out = VcCoresetOutput {
            fixed_vertices: vec![1, 2, 3],
            residual: g,
        };
        assert_eq!(cap_vc_coreset(&out, 0, &mut r).size(), 0);
    }
}
