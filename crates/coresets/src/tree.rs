//! Hierarchical (tree) composition of coresets — bounded-memory merging over
//! `log k` levels.
//!
//! The flat coordinator composes all `k` coresets in one union. Mirrokni &
//! Zadimoghaddam (1506.06715) observe that composable coresets compose
//! *associatively*: a coreset of a union of coresets is itself a coreset of
//! the underlying edges. That licenses the production shape this module
//! implements — merge coresets pairwise (fan-in configurable) over
//! `⌈log_f k⌉` levels, **re-coreseting** each merged union through the
//! existing builder traits, so no single merge node ever materializes more
//! than `fan_in` coresets' worth of edges.
//!
//! # Determinism
//!
//! The tree's shape is a pure function of `(leaves, fan_in)` ([`TreePlan`]):
//! merge round `level ≥ 1` groups the previous level's items into consecutive
//! runs of `fan_in` (the last group may be smaller; singleton groups pass
//! through unmerged). Each merge node draws its randomness from the private
//! stream [`crate::streams::node_rng`]`(seed, level, node)` — fixed by the
//! node's position, never by thread schedule — and both evaluation orders
//! below compute the *same* plan:
//!
//! * [`reduce_levels`] — level-synchronous, each level's merges fan out on
//!   the work-stealing pool (the in-memory coordinator's tree mode);
//! * [`TreeFolder`] — streaming, merges a group the moment its last child
//!   arrives (the out-of-core runner's shape: one leaf is built per arena
//!   segment load, and at most `fan_in − 1` pending items per level stay
//!   live).
//!
//! Identical `(level, node, group)` calls ⇒ bit-identical outputs across the
//! two shapes, across thread counts, and under scheduler fuzzing — pinned by
//! `tests/determinism.rs` and the E16 in-binary asserts.

use crate::compose::{compose_vertex_cover, solve_composed_matching};
use crate::matching_coreset::MatchingCoresetBuilder;
use crate::params::CoresetParams;
use crate::streams::node_rng;
use crate::vc_coreset::{VcCoresetBuilder, VcCoresetOutput};
use graph::{Graph, GraphView};
use matching::matching::Matching;
use matching::maximum::MaximumMatchingAlgorithm;
use rayon::prelude::*;
use vertexcover::VertexCover;

/// The canonical shape of a composition tree over `leaves` items with the
/// given fan-in: per-level widths plus consecutive grouping. Both the
/// level-synchronous and the streaming evaluator compute their merge labels
/// `(level, node)` from this plan, which is what makes them interchangeable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreePlan {
    fan_in: usize,
    /// `widths[0] = leaves`; `widths[l]` = items after merge round `l`;
    /// the final width is `≤ fan_in` (the roots handed to the flat solve).
    widths: Vec<usize>,
}

impl TreePlan {
    /// Plans a tree over `leaves` items merged `fan_in` at a time.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in < 2` (a 1-ary merge would never terminate).
    pub fn new(leaves: usize, fan_in: usize) -> Self {
        assert!(fan_in >= 2, "tree composition requires fan-in >= 2");
        let mut widths = vec![leaves];
        while *widths.last().expect("widths is never empty") > fan_in {
            let next = widths
                .last()
                .expect("widths is never empty")
                .div_ceil(fan_in);
            widths.push(next);
        }
        TreePlan { fan_in, widths }
    }

    /// The configured fan-in.
    #[inline]
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Number of leaf items (level-0 width).
    #[inline]
    pub fn leaves(&self) -> usize {
        self.widths[0]
    }

    /// Number of merge rounds (`0` when `leaves ≤ fan_in`).
    #[inline]
    pub fn levels(&self) -> usize {
        self.widths.len() - 1
    }

    /// Number of items alive after merge round `level` (level 0 = leaves).
    #[inline]
    pub fn width(&self, level: usize) -> usize {
        self.widths[level]
    }

    /// Number of children merged into node `node` of round `level ≥ 1`:
    /// `fan_in` except for the last node of a round, which takes what's left.
    pub fn group_size(&self, level: usize, node: usize) -> usize {
        debug_assert!(level >= 1 && level <= self.levels());
        debug_assert!(node < self.widths[level]);
        let children = self.widths[level - 1];
        (children - node * self.fan_in).min(self.fan_in)
    }

    /// Simulates a [`TreeFolder`] that has consumed `pushed` leaves and
    /// returns `(pending lengths per level, emitted nodes per level)` — the
    /// exact counters the folder would hold. This is the shape contract a
    /// checkpoint snapshot must satisfy to be resumable, letting callers
    /// validate an untrusted snapshot before handing it to
    /// [`TreeFolder::resume`].
    pub fn state_after(&self, pushed: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(
            pushed <= self.leaves(),
            "pushed {pushed} exceeds {} leaves",
            self.leaves()
        );
        let levels = self.levels();
        let mut pending = vec![0usize; levels + 1];
        let mut emitted = vec![0usize; levels + 1];
        for _ in 0..pushed {
            pending[0] += 1;
            for level in 1..=levels {
                loop {
                    let node = emitted[level];
                    if node >= self.width(level) {
                        break;
                    }
                    let size = self.group_size(level, node);
                    if pending[level - 1] < size {
                        break;
                    }
                    pending[level - 1] -= size;
                    emitted[level] = node + 1;
                    pending[level] += 1;
                }
            }
        }
        (pending, emitted)
    }
}

/// Reduces `items` through the composition tree level-synchronously: each
/// round's merge groups run concurrently on the work-stealing pool, results
/// collected in node order. Returns the `≤ fan_in` roots.
///
/// `merge(level, node, group)` must be a pure function of its arguments
/// (derive randomness from [`node_rng`]) — that, plus the node-ordered
/// collection, keeps the reduction bit-identical across thread counts and
/// identical to the streaming [`TreeFolder`].
pub fn reduce_levels<T, F>(items: Vec<T>, fan_in: usize, merge: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize, Vec<T>) -> T + Sync,
{
    let plan = TreePlan::new(items.len(), fan_in);
    let mut cur = items;
    for level in 1..=plan.levels() {
        let mut groups: Vec<(usize, Vec<T>)> = Vec::with_capacity(plan.width(level));
        let mut it = cur.into_iter();
        for node in 0..plan.width(level) {
            let group: Vec<T> = it.by_ref().take(plan.group_size(level, node)).collect();
            groups.push((node, group));
        }
        cur = groups
            .into_par_iter()
            .map(|(node, mut group)| {
                if group.len() == 1 {
                    group.pop().expect("singleton group")
                } else {
                    merge(level, node, group)
                }
            })
            .collect();
    }
    cur
}

/// Streaming evaluator of a [`TreePlan`]: push leaves one at a time (in leaf
/// order), and every merge fires the moment its last child arrives — so at
/// most `fan_in − 1` pending items per level are ever alive. This is the
/// shape the out-of-core runner uses: build one leaf coreset per arena
/// segment, push it, drop the segment.
///
/// Produces exactly the same `merge(level, node, group)` calls as
/// [`reduce_levels`] (pinned by this module's tests), just in streaming
/// order on the calling thread.
#[derive(Debug)]
pub struct TreeFolder<T, F: Fn(usize, usize, Vec<T>) -> T> {
    plan: TreePlan,
    /// `pending[l]` = items of level `l` whose parent group is incomplete.
    pending: Vec<Vec<T>>,
    /// `emitted[l]` = merge nodes already produced by round `l` (index 0 unused).
    emitted: Vec<usize>,
    pushed: usize,
    merge: F,
}

impl<T, F: Fn(usize, usize, Vec<T>) -> T> TreeFolder<T, F> {
    /// Creates a folder for `leaves` items with the given fan-in.
    pub fn new(leaves: usize, fan_in: usize, merge: F) -> Self {
        let plan = TreePlan::new(leaves, fan_in);
        let levels = plan.levels();
        TreeFolder {
            pending: (0..=levels).map(|_| Vec::new()).collect(),
            emitted: (0..=levels).map(|_| 0).collect(),
            pushed: 0,
            plan,
            merge,
        }
    }

    /// The plan this folder evaluates.
    #[inline]
    pub fn plan(&self) -> &TreePlan {
        &self.plan
    }

    /// Number of leaves pushed so far.
    #[inline]
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// The folder's live state: `pending()[l]` holds level-`l` items whose
    /// parent group is incomplete (level 0 = unmerged leaves). Together with
    /// [`TreeFolder::pushed`] this is a complete snapshot — checkpointing
    /// serializes these items and [`TreeFolder::resume`] rebuilds the folder.
    #[inline]
    pub fn pending(&self) -> &[Vec<T>] {
        &self.pending
    }

    /// Rebuilds a folder that has already consumed `pushed` leaves from a
    /// snapshot of its pending items (as captured from
    /// [`TreeFolder::pending`]). The emitted-node counters are recomputed
    /// from the plan, so `(pushed, pending)` fully determines the state and
    /// resuming then pushing the remaining leaves is bit-identical to an
    /// uninterrupted run.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's shape disagrees with
    /// [`TreePlan::state_after`]`(pushed)` — callers restoring untrusted
    /// snapshots must validate the lengths first.
    pub fn resume(
        leaves: usize,
        fan_in: usize,
        merge: F,
        pushed: usize,
        pending: Vec<Vec<T>>,
    ) -> Self {
        let plan = TreePlan::new(leaves, fan_in);
        let (lens, emitted) = plan.state_after(pushed);
        assert_eq!(
            pending.len(),
            lens.len(),
            "snapshot has {} levels, plan expects {}",
            pending.len(),
            lens.len()
        );
        for (level, (have, want)) in pending.iter().zip(&lens).enumerate() {
            assert_eq!(
                have.len(),
                *want,
                "snapshot level {level} holds {} items, plan expects {want}",
                have.len()
            );
        }
        TreeFolder {
            plan,
            pending,
            emitted,
            pushed,
            merge,
        }
    }

    /// Pushes the next leaf (leaves must arrive in leaf order) and fires
    /// every merge it completes, cascading upward.
    ///
    /// # Panics
    ///
    /// Panics if more than `leaves` items are pushed.
    pub fn push(&mut self, item: T) {
        assert!(
            self.pushed < self.plan.leaves(),
            "pushed more than {} leaves",
            self.plan.leaves()
        );
        self.pushed += 1;
        self.pending[0].push(item);
        for level in 1..=self.plan.levels() {
            loop {
                let node = self.emitted[level];
                if node >= self.plan.width(level) {
                    break;
                }
                let size = self.plan.group_size(level, node);
                if self.pending[level - 1].len() < size {
                    break;
                }
                let group: Vec<T> = self.pending[level - 1].drain(..size).collect();
                self.emitted[level] = node + 1;
                let merged = if size == 1 {
                    group.into_iter().next().expect("singleton group")
                } else {
                    (self.merge)(level, node, group)
                };
                self.pending[level].push(merged);
            }
        }
    }

    /// Returns the `≤ fan_in` roots.
    ///
    /// # Panics
    ///
    /// Panics unless exactly `leaves` items were pushed.
    pub fn finish(mut self) -> Vec<T> {
        assert_eq!(
            self.pushed,
            self.plan.leaves(),
            "finish called before every leaf was pushed"
        );
        self.pending.pop().expect("pending is never empty")
    }
}

/// Re-coresets a group of matching coresets into one: concatenates the
/// group's (edge-disjoint) edge slices into a union buffer and runs the
/// builder on it with the node's private `(seed, level, node)` stream.
pub fn merge_matching_coresets<B: MatchingCoresetBuilder + ?Sized>(
    n: usize,
    params: &CoresetParams,
    builder: &B,
    seed: u64,
    level: usize,
    node: usize,
    group: &[Graph],
) -> Graph {
    let total: usize = group.iter().map(Graph::m).sum();
    // The union buffer is the merge's working set: `fan_in` coresets' worth
    // of edges, handed to the builder as one contiguous view.
    let mut union = Vec::with_capacity(total); // xtask: allow(hot-path-alloc)
    for g in group {
        union.extend_from_slice(g.edges());
    }
    let mut rng = node_rng(seed, level, node);
    builder.build(GraphView::new(n, &union), params, node, &mut rng)
}

/// Re-coresets a group of vertex-cover coresets into one: the residual
/// slices are concatenated and re-coreset through the builder with the
/// node's private stream; the group's fixed vertices are carried through
/// (in group order) ahead of the vertices the re-coreset newly fixes.
pub fn merge_vc_coresets<B: VcCoresetBuilder + ?Sized>(
    n: usize,
    params: &CoresetParams,
    builder: &B,
    seed: u64,
    level: usize,
    node: usize,
    group: Vec<VcCoresetOutput>,
) -> VcCoresetOutput {
    let total: usize = group.iter().map(|o| o.residual.m()).sum();
    let fixed_total: usize = group.iter().map(|o| o.fixed_vertices.len()).sum();
    let mut union = Vec::with_capacity(total); // xtask: allow(hot-path-alloc)
    for o in &group {
        union.extend_from_slice(o.residual.edges());
    }
    let mut rng = node_rng(seed, level, node);
    let sub = builder.build(GraphView::new(n, &union), params, node, &mut rng);
    let mut fixed = Vec::with_capacity(fixed_total + sub.fixed_vertices.len()); // xtask: allow(hot-path-alloc)
    for o in group {
        fixed.extend(o.fixed_vertices);
    }
    fixed.extend(sub.fixed_vertices);
    VcCoresetOutput {
        fixed_vertices: fixed,
        residual: sub.residual,
    }
}

/// Tree-composes matching coresets and solves the roots: merge/re-coreset
/// over `⌈log_f k⌉` levels ([`reduce_levels`], merges on the work-stealing
/// pool), then one flat [`solve_composed_matching`] over the `≤ fan_in`
/// roots. With `k ≤ fan_in` this degenerates to the flat composition.
pub fn tree_solve_matching<B: MatchingCoresetBuilder + ?Sized>(
    n: usize,
    coresets: Vec<Graph>,
    builder: &B,
    params: &CoresetParams,
    seed: u64,
    fan_in: usize,
    algorithm: MaximumMatchingAlgorithm,
) -> Matching {
    let roots = reduce_levels(coresets, fan_in, &|level, node, group: Vec<Graph>| {
        merge_matching_coresets(n, params, builder, seed, level, node, &group)
    });
    solve_composed_matching(&roots, algorithm)
}

/// Tree-composes vertex-cover coresets: merge/re-coreset over `⌈log_f k⌉`
/// levels, then one flat [`compose_vertex_cover`] over the `≤ fan_in` roots.
pub fn tree_compose_vertex_cover<B: VcCoresetBuilder + ?Sized>(
    n: usize,
    outputs: Vec<VcCoresetOutput>,
    builder: &B,
    params: &CoresetParams,
    seed: u64,
    fan_in: usize,
) -> VertexCover {
    let roots = reduce_levels(outputs, fan_in, &|level, node, group| {
        merge_vc_coresets(n, params, builder, seed, level, node, group)
    });
    compose_vertex_cover(&roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching_coreset::MaximumMatchingCoreset;
    use crate::streams::machine_rng;
    use crate::vc_coreset::PeelingVcCoreset;
    use graph::gen::er::gnp;
    use graph::PartitionedGraph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn plan_shapes_are_canonical() {
        let plan = TreePlan::new(5, 2);
        assert_eq!(plan.levels(), 2); // 5 -> 3 -> 2
        assert_eq!(plan.width(1), 3);
        assert_eq!(plan.group_size(1, 0), 2);
        assert_eq!(plan.group_size(1, 1), 2);
        assert_eq!(plan.group_size(1, 2), 1);
        assert_eq!(plan.width(2), 2);

        let flat = TreePlan::new(3, 4);
        assert_eq!(flat.levels(), 0, "k <= fan_in needs no merging");

        let empty = TreePlan::new(0, 2);
        assert_eq!(empty.levels(), 0);
        assert_eq!(empty.leaves(), 0);

        let wide = TreePlan::new(64, 2);
        assert_eq!(wide.levels(), 5); // 64,32,16,8,4,2
        assert_eq!(wide.width(5), 2);
    }

    #[test]
    #[should_panic(expected = "fan-in >= 2")]
    fn unary_fan_in_rejected() {
        let _ = TreePlan::new(4, 1);
    }

    /// The two evaluators must issue identical `(level, node, group)` calls.
    #[test]
    fn folder_and_level_reduce_agree_for_all_small_shapes() {
        // A synthetic "merge" that encodes its full call into the result, so
        // any divergence in labels or grouping shows up in the output.
        let merge = |level: usize, node: usize, group: Vec<String>| {
            format!("m{level}.{node}({})", group.join(","))
        };
        for leaves in 0..20usize {
            for fan_in in 2..5usize {
                let items: Vec<String> = (0..leaves).map(|i| format!("L{i}")).collect();
                let by_levels = reduce_levels(items.clone(), fan_in, &merge);
                let mut folder = TreeFolder::new(leaves, fan_in, merge);
                for item in items {
                    folder.push(item);
                }
                let by_folder = folder.finish();
                assert_eq!(by_levels, by_folder, "leaves={leaves}, fan_in={fan_in}");
                assert!(by_folder.len() <= fan_in.max(leaves.min(fan_in)));
            }
        }
    }

    /// Snapshotting after any prefix of pushes and resuming must reproduce
    /// the uninterrupted folder's output exactly — the contract the
    /// out-of-core checkpoint/resume path is built on.
    #[test]
    fn resume_from_any_push_point_matches_uninterrupted_run() {
        let merge = |level: usize, node: usize, group: Vec<String>| {
            format!("m{level}.{node}({})", group.join(","))
        };
        for leaves in 1..14usize {
            for fan_in in 2..4usize {
                let items: Vec<String> = (0..leaves).map(|i| format!("L{i}")).collect();
                let mut reference = TreeFolder::new(leaves, fan_in, merge);
                for item in items.clone() {
                    reference.push(item);
                }
                let expected = reference.finish();

                for kill_after in 0..=leaves {
                    // Run to the kill point, snapshot, throw the folder away.
                    let mut first = TreeFolder::new(leaves, fan_in, merge);
                    for item in items.iter().take(kill_after) {
                        first.push(item.clone());
                    }
                    assert_eq!(first.pushed(), kill_after);
                    let snapshot: Vec<Vec<String>> = first.pending().to_vec();
                    let (lens, _) = first.plan().state_after(kill_after);
                    for (level, p) in snapshot.iter().enumerate() {
                        assert_eq!(p.len(), lens[level]);
                    }
                    drop(first);

                    // Resume and push the remainder.
                    let mut second =
                        TreeFolder::resume(leaves, fan_in, merge, kill_after, snapshot);
                    for item in items.iter().skip(kill_after) {
                        second.push(item.clone());
                    }
                    assert_eq!(
                        second.finish(),
                        expected,
                        "leaves={leaves} fan_in={fan_in} kill_after={kill_after}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "holds")]
    fn resume_rejects_malformed_snapshot() {
        let merge = |_: usize, _: usize, group: Vec<String>| group.join(",");
        // 3 leaves pushed of 5: level 0 should hold 1 pending item, not 2.
        let bad = vec![vec!["a".to_string(), "b".to_string()], vec![], vec![]];
        let _ = TreeFolder::resume(5, 2, merge, 3, bad);
    }

    fn protocol_coresets(
        seed: u64,
        n: usize,
        p: f64,
        k: usize,
    ) -> (Graph, Vec<Graph>, CoresetParams) {
        let g = gnp(n, p, &mut rng(seed));
        let part = PartitionedGraph::random(&g, k, &mut rng(seed + 1)).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let coresets: Vec<Graph> = part
            .views()
            .iter()
            .enumerate()
            .map(|(i, piece)| {
                MaximumMatchingCoreset::new().build(*piece, &params, i, &mut machine_rng(seed, i))
            })
            .collect();
        (g, coresets, params)
    }

    #[test]
    fn tree_matching_is_valid_and_at_least_best_single_coreset() {
        for seed in 0..4 {
            let (g, coresets, params) = protocol_coresets(seed, 400, 0.02, 9);
            let best = coresets.iter().map(Graph::m).max().unwrap();
            let m = tree_solve_matching(
                g.n(),
                coresets,
                &MaximumMatchingCoreset::new(),
                &params,
                seed,
                2,
                MaximumMatchingAlgorithm::Auto,
            );
            assert!(m.is_valid_for(&g));
            assert!(
                m.len() >= best,
                "tree answer {} below best single coreset {best}",
                m.len()
            );
        }
    }

    #[test]
    fn tree_with_k_at_most_fan_in_equals_flat_composition() {
        let (_, coresets, params) = protocol_coresets(11, 300, 0.03, 3);
        let flat = solve_composed_matching(&coresets, MaximumMatchingAlgorithm::Auto);
        let tree = tree_solve_matching(
            300,
            coresets,
            &MaximumMatchingCoreset::new(),
            &params,
            11,
            4,
            MaximumMatchingAlgorithm::Auto,
        );
        assert_eq!(flat.edges(), tree.edges());
    }

    #[test]
    fn tree_vertex_cover_is_feasible() {
        for seed in 0..3 {
            let g = gnp(700, 0.012, &mut rng(seed + 50));
            let k = 8;
            let part = PartitionedGraph::random(&g, k, &mut rng(seed + 60)).unwrap();
            let params = CoresetParams::new(g.n(), k);
            let outputs: Vec<VcCoresetOutput> = part
                .views()
                .iter()
                .enumerate()
                .map(|(i, piece)| {
                    PeelingVcCoreset::new().build(*piece, &params, i, &mut machine_rng(seed, i))
                })
                .collect();
            let cover = tree_compose_vertex_cover(
                g.n(),
                outputs,
                &PeelingVcCoreset::new(),
                &params,
                seed,
                2,
            );
            assert!(cover.covers(&g), "seed {seed}");
        }
    }
}
