//! Weighted matching coreset via the Crouch–Stubbs reduction.
//!
//! The paper (Section 1.1) observes that the unweighted matching coreset
//! extends to weighted graphs by the Crouch–Stubbs technique: split the edges
//! into `O(log n)` geometric weight classes, build the *unweighted* matching
//! coreset for every class, and combine at the coordinator. The approximation
//! loses an extra factor 2 and the coreset size gains an `O(log n)` factor.
//!
//! This module implements both sides:
//!
//! * [`WeightedMatchingCoreset::build`] — one machine's coreset: for every
//!   weight class of the piece, a maximum matching of that class subgraph
//!   (with weights re-attached).
//! * [`compose_weighted_matching`] — the coordinator: union of the per-class
//!   coresets, combined greedily from the heaviest class down.
//!
//! Both sides fan their **independent per-class maximum-matching solves**
//! out on the work-stealing pool (each class subgraph is disjoint work and
//! the solver engine is per-thread); results come back in class order, and
//! the greedy heaviest-first combine stays sequential, so the composed
//! matching is bit-identical to a single-threaded run.

use graph::{Edge, WeightedGraph};
use matching::matching::Matching;
use matching::maximum::maximum_matching;
use matching::weighted::WeightedMatching;
use rayon::prelude::*;
use std::collections::BTreeMap;

/// One machine's weighted matching coreset: for each geometric weight class,
/// the edges of a maximum matching of that class's (unweighted) subgraph,
/// with their weights.
#[derive(Debug, Clone)]
pub struct WeightedCoresetOutput {
    /// Per-class matchings: `(class lower bound, matched weighted edges)`.
    pub classes: Vec<(f64, Vec<(Edge, f64)>)>,
}

impl WeightedCoresetOutput {
    /// Total number of edges across all classes (the coreset size).
    pub fn size(&self) -> usize {
        self.classes.iter().map(|(_, edges)| edges.len()).sum()
    }
}

/// Builder for the Crouch–Stubbs weighted matching coreset.
#[derive(Debug, Clone, Copy)]
pub struct WeightedMatchingCoreset {
    /// Geometric ratio between consecutive weight classes (typically 2).
    pub base: f64,
}

impl Default for WeightedMatchingCoreset {
    fn default() -> Self {
        WeightedMatchingCoreset { base: 2.0 }
    }
}

impl WeightedMatchingCoreset {
    /// Coreset with weight classes `[base^i, base^{i+1})`.
    ///
    /// # Panics
    ///
    /// Panics if `base <= 1`.
    pub fn new(base: f64) -> Self {
        assert!(base > 1.0, "weight-class base must exceed 1");
        WeightedMatchingCoreset { base }
    }

    /// Builds the coreset of one machine's weighted piece.
    ///
    /// The per-class maximum matchings are independent solves over disjoint
    /// class subgraphs, so they run in parallel on the work-stealing pool
    /// (per-thread solver engines); the output keeps class order, so the
    /// coreset is identical at every thread count.
    pub fn build(&self, piece: &WeightedGraph) -> WeightedCoresetOutput {
        let classes = piece
            .weight_classes(self.base)
            .into_par_iter()
            .map(|(bound, class_graph)| {
                let matching = maximum_matching(&class_graph);
                let edges: Vec<(Edge, f64)> = matching
                    .into_edges()
                    .into_iter()
                    .map(|e| {
                        let w = piece
                            .weight_of(e.u, e.v)
                            .expect("class subgraph edges come from the piece");
                        (e, w)
                    })
                    .collect();
                (bound, edges)
            })
            .collect();
        WeightedCoresetOutput { classes }
    }
}

/// Coordinator-side composition for the weighted coreset: group all received
/// edges by weight class, compute a maximum matching per class over the union,
/// then combine the class matchings greedily from the heaviest class down.
pub fn compose_weighted_matching(n: usize, outputs: &[WeightedCoresetOutput]) -> WeightedMatching {
    // Bucket the union of coreset edges by class lower bound (bit pattern of
    // the f64 is a stable key because every machine derives bounds from the
    // same `base`). A BTreeMap keyed on the bit pattern keeps the bucket walk
    // (and therefore the composed matching) independent of hash seeds.
    let mut buckets: BTreeMap<u64, (f64, Vec<(Edge, f64)>)> = BTreeMap::new();
    for out in outputs {
        for (bound, edges) in &out.classes {
            let entry = buckets
                .entry(bound.to_bits())
                .or_insert_with(|| (*bound, Vec::new()));
            entry.1.extend(edges.iter().copied());
        }
    }
    let mut classes: Vec<(f64, Vec<(Edge, f64)>)> = buckets.into_values().collect();
    // Heaviest class first.
    classes.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite class bounds"));

    // The per-class union solves are independent — fan them out; the greedy
    // combine below consumes them in the same heaviest-first order.
    let solved = solve_class_matchings(n, classes);

    let mut matched = vec![false; n];
    let mut result = WeightedMatching::default();
    for (weight_of, class_matching) in solved {
        for e in class_matching.edges() {
            let (u, v) = (e.u as usize, e.v as usize);
            if !matched[u] && !matched[v] {
                matched[u] = true;
                matched[v] = true;
                result.total_weight += weight_of[e];
                result.edges.push(*e);
            }
        }
    }
    result
}

/// Solves each weight class's union subgraph to a maximum matching on the
/// work-stealing pool. Classes are independent (the greedy cross-class
/// conflict resolution happens afterwards, sequentially, in the caller), the
/// solver engine is per-thread, and the pool reassembles results in class
/// order — so the output is identical to a sequential walk of `classes`.
/// Returns each class's dedup'd weight map alongside its matching.
fn solve_class_matchings(
    n: usize,
    classes: Vec<(f64, Vec<(Edge, f64)>)>,
) -> Vec<(BTreeMap<Edge, f64>, Matching)> {
    classes
        .into_par_iter()
        .map(|(_, edges)| {
            // Dedup edges keeping the max weight per edge. Sorted map:
            // `weight_of.keys()` feeds the class graph's edge list, so its
            // iteration order must be deterministic.
            let mut weight_of: BTreeMap<Edge, f64> = BTreeMap::new();
            for (e, w) in &edges {
                let slot = weight_of.entry(*e).or_insert(*w);
                *slot = slot.max(*w);
            }
            let class_edges: Vec<Edge> = weight_of.keys().copied().collect();
            let class_graph = graph::Graph::from_edges(n, class_edges)
                .expect("coreset edges are valid for the global vertex set");
            let class_matching = maximum_matching(&class_graph);
            (weight_of, class_matching)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::partition::{partition_weighted, PartitionStrategy};
    use matching::weighted::greedy_weighted_matching;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn random_weighted(n: usize, m: usize, seed: u64) -> WeightedGraph {
        let mut r = rng(seed);
        let mut triples = Vec::new();
        while triples.len() < m {
            let u = r.gen_range(0..n as u32);
            let v = r.gen_range(0..n as u32);
            if u == v {
                continue;
            }
            triples.push((u, v, r.gen_range(1.0..1000.0)));
        }
        WeightedGraph::from_triples(n, triples).unwrap()
    }

    #[test]
    fn coreset_size_is_bounded_by_classes_times_matching() {
        let g = random_weighted(200, 1500, 1);
        let out = WeightedMatchingCoreset::default().build(&g);
        // At most n/2 edges per class and O(log max_weight) classes.
        let class_count = out.classes.len();
        assert!(
            class_count <= 12,
            "1000:1 weight range with base 2 gives ~10 classes"
        );
        assert!(out.size() <= class_count * g.n() / 2);
    }

    #[test]
    fn end_to_end_weighted_coreset_is_competitive_with_greedy_on_full_graph() {
        for seed in 0..3 {
            let n = 300;
            let g = random_weighted(n, 2500, seed + 10);
            let mut r = rng(seed + 100);
            let pieces = partition_weighted(&g, 4, PartitionStrategy::Random, &mut r).unwrap();
            let builder = WeightedMatchingCoreset::default();
            let outputs: Vec<WeightedCoresetOutput> =
                pieces.iter().map(|p| builder.build(p)).collect();
            let composed = compose_weighted_matching(n, &outputs);
            assert!(composed.is_valid_for(&g));

            // Baseline: greedy weighted matching on the *whole* graph (a
            // 1/2-approximation of the optimum). The coreset composition
            // should be within a constant factor of it.
            let baseline = greedy_weighted_matching(&g);
            assert!(
                composed.total_weight * 6.0 >= baseline.total_weight,
                "seed {seed}: composed {} vs baseline {}",
                composed.total_weight,
                baseline.total_weight
            );
        }
    }

    #[test]
    fn composition_of_single_machine_equals_local_crouch_stubbs_quality() {
        let n = 150;
        let g = random_weighted(n, 900, 42);
        let out = WeightedMatchingCoreset::default().build(&g);
        let composed = compose_weighted_matching(n, &[out]);
        assert!(composed.is_valid_for(&g));
        assert!(composed.total_weight > 0.0);
    }

    #[test]
    fn empty_inputs() {
        let g = WeightedGraph::empty(10);
        let out = WeightedMatchingCoreset::default().build(&g);
        assert_eq!(out.size(), 0);
        let composed = compose_weighted_matching(10, &[out]);
        assert!(composed.is_empty());
        assert!(compose_weighted_matching(10, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn bad_base_rejected() {
        let _ = WeightedMatchingCoreset::new(0.5);
    }
}
