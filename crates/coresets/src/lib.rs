//! # Randomized composable coresets for matching and vertex cover
//!
//! This crate is the reproduction of the core contribution of
//! *Randomized Composable Coresets for Matching and Vertex Cover*
//! (Assadi & Khanna, SPAA 2017):
//!
//! > When the edges of a graph are **randomly partitioned** across `k`
//! > machines, (i) any **maximum matching** of a machine's subgraph is an
//! > O(1)-approximation randomized composable coreset of size O(n) for
//! > maximum matching (Theorem 1), and (ii) an iterative **peeling** process
//! > yields an O(log n)-approximation randomized composable coreset of size
//! > O(n log n) for minimum vertex cover (Theorem 2).
//!
//! ## Crate layout
//!
//! * [`params`] — shared coreset parameters (`n`, `k`, approximation target).
//! * [`matching_coreset`] — the maximum-matching coreset (Theorem 1), the
//!   arbitrary-maximal-matching negative control (Section 1.2), and the
//!   subsampled α-approximation variant (Remark 5.2).
//! * [`vc_coreset`] — the peeling coreset `VC-Coreset` (Theorem 2), the
//!   local-minimum-vertex-cover negative control, and the vertex-grouping
//!   α-approximation variant (Remark 5.8).
//! * [`greedy_match`](mod@greedy_match) — the `GreedyMatch` combining process used by the
//!   analysis of Theorem 1 (Lemma 3.1/3.2), exposed so experiment E10 can
//!   trace its per-step growth.
//! * [`compose`] — coordinator-side composition: union the coresets and solve.
//! * [`cache`] — the fingerprint-keyed per-machine coreset cache the churn
//!   service uses to rebuild only dirty machines' coresets.
//! * [`capped`] — size-capped coreset wrappers for the lower-bound
//!   experiments (Theorems 3 and 4).
//! * [`weighted`] — the Crouch–Stubbs weighted-matching extension.
//! * [`streams`] — per-machine `ChaCha8Rng` streams derived from
//!   `(seed, machine)` — extended to `(seed, level, node)` for tree nodes —
//!   the basis of cross-thread-count determinism.
//! * [`tree`] — hierarchical composition (Mirrokni–Zadimoghaddam): merge
//!   coresets `fan_in` at a time over `log k` levels, re-coreseting each
//!   union, so no merge node materializes more than `fan_in` coresets.
//! * [`pipeline`] — end-to-end convenience runners (random partition → build
//!   coresets on parallel OS threads → compose), the API most examples use.
//!
//! ## Quick start
//!
//! ```
//! use coresets::pipeline::{DistributedMatching, DistributedVertexCover};
//! use graph::gen::er::gnp;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let g = gnp(500, 0.02, &mut rng);
//!
//! // O(1)-approximate maximum matching from 8 machines' coresets.
//! let result = DistributedMatching::new(8).run(&g, 7).unwrap();
//! assert!(result.matching.is_valid_for(&g));
//!
//! // O(log n)-approximate vertex cover from the same model.
//! let result = DistributedVertexCover::new(8).run(&g, 7).unwrap();
//! assert!(result.cover.covers(&g));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod capped;
pub mod compose;
pub mod greedy_match;
pub mod matching_coreset;
pub mod params;
pub mod pipeline;
pub mod streams;
pub mod tree;
pub mod vc_coreset;
pub mod weighted;

pub use cache::{CoresetCache, CoresetCacheKey};
pub use capped::{cap_matching_coreset, cap_vc_coreset, CappedMatchingCoreset};
pub use compose::{
    compose_matching, compose_vertex_cover, compose_vertex_cover_refs, solve_composed_matching,
    solve_composed_matching_refs,
};
pub use greedy_match::{greedy_match, GreedyMatchTrace};
pub use matching_coreset::{
    AvoidingMaximalMatchingCoreset, MatchingCoresetBuilder, MaximalMatchingCoreset,
    MaximumMatchingCoreset, SubsampledMatchingCoreset,
};
pub use params::CoresetParams;
pub use pipeline::{
    DistributedMatching, DistributedVertexCover, MatchingRunResult, VertexCoverRunResult,
};
pub use streams::{machine_jobs, machine_rng, node_rng};
pub use tree::{
    merge_matching_coresets, merge_vc_coresets, reduce_levels, tree_compose_vertex_cover,
    tree_solve_matching, TreeFolder, TreePlan,
};
pub use vc_coreset::{
    GroupedVcCoreset, LocalCoverCoreset, PeelingVcCoreset, VcCoresetBuilder, VcCoresetOutput,
};
