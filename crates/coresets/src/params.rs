//! Shared parameters of a coreset construction.

use serde::{Deserialize, Serialize};

/// Parameters every machine needs to build its coreset.
///
/// The matching coreset (Theorem 1) only needs the piece itself, but the
/// vertex-cover coreset's peeling thresholds depend on the *global* number of
/// vertices `n` and the number of machines `k`
/// (`threshold_j = n / (k * 2^(j+1))`), so both are carried explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoresetParams {
    /// Number of vertices of the *global* graph.
    pub n: usize,
    /// Number of machines in the random partition.
    pub k: usize,
}

impl CoresetParams {
    /// Creates parameters for a graph with `n` vertices split across `k`
    /// machines.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 1, "at least one machine is required");
        CoresetParams { n, k }
    }

    /// The paper's peeling cut-off `Δ`: the smallest integer such that
    /// `n / (k * 2^Δ) <= 4 log2 n` (Section 3.2, step 1 of `VC-Coreset`).
    pub fn peeling_rounds(&self) -> u32 {
        let n = self.n.max(2) as f64;
        let k = self.k as f64;
        let target = 4.0 * n.log2();
        let mut delta = 0u32;
        while n / (k * 2f64.powi(delta as i32)) > target && delta < 64 {
            delta += 1;
        }
        delta
    }

    /// The peeling threshold of round `j` (1-based as in the paper):
    /// `n / (k * 2^(j+1))`.
    pub fn peeling_threshold(&self, j: u32) -> usize {
        let denom = self.k as f64 * 2f64.powi(j as i32 + 1);
        (self.n as f64 / denom).floor() as usize
    }

    /// The full threshold schedule for rounds `1 ..= Δ - 1`, matching the
    /// loop `for j = 1 to Δ - 1` of `VC-Coreset`.
    pub fn peeling_schedule(&self) -> Vec<usize> {
        let delta = self.peeling_rounds();
        (1..delta).map(|j| self.peeling_threshold(j)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peeling_rounds_shrink_threshold_below_4_log_n() {
        let p = CoresetParams::new(100_000, 10);
        let delta = p.peeling_rounds();
        let n = 100_000f64;
        assert!(n / (10.0 * 2f64.powi(delta as i32)) <= 4.0 * n.log2());
        if delta > 0 {
            assert!(n / (10.0 * 2f64.powi(delta as i32 - 1)) > 4.0 * n.log2());
        }
    }

    #[test]
    fn thresholds_halve() {
        let p = CoresetParams::new(4096, 4);
        assert_eq!(p.peeling_threshold(1), 256); // 4096 / (4 * 4)
        assert_eq!(p.peeling_threshold(2), 128);
        assert_eq!(p.peeling_threshold(3), 64);
        let schedule = p.peeling_schedule();
        for w in schedule.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn small_graphs_have_no_peeling_rounds() {
        // When n/k is already below 4 log n, Δ = 0 and the schedule is empty.
        let p = CoresetParams::new(100, 10);
        assert!(p.peeling_schedule().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let _ = CoresetParams::new(10, 0);
    }
}
