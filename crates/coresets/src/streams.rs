//! Per-machine deterministic RNG streams.
//!
//! Every simulated machine gets its **own** `ChaCha8Rng`, derived from the
//! run seed and the machine index *before* the parallel fan-out. Because a
//! machine's stream depends only on `(seed, machine)` — never on which OS
//! thread runs it or in what order machines finish — protocol outputs are
//! bit-identical across thread counts and schedules. This is the invariant
//! the workspace's determinism test suite (`tests/determinism.rs`) pins down.

use rand_chacha::ChaCha8Rng;

/// SplitMix64 — the standard 64-bit finalizer used to decorrelate nearby
/// seeds before they become ChaCha key material.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives machine `machine`'s private RNG stream for a run with seed `seed`.
///
/// The `(seed, machine)` pair is expanded through SplitMix64 into a full
/// 32-byte ChaCha8 key, so streams are decorrelated even for adjacent seeds
/// and machine indices, and distinct from the partitioning RNG (which is
/// seeded from `seed` directly via `seed_from_u64`).
///
/// Equivalent to [`node_rng`]`(seed, 0, machine)`: the machines are level 0
/// of the composition tree, so the leaf streams of a hierarchical run are
/// bit-identical to the machine streams of a flat run.
pub fn machine_rng(seed: u64, machine: usize) -> ChaCha8Rng {
    node_rng(seed, 0, machine)
}

/// Derives the private RNG stream of tree node `(level, node)` for a run
/// with seed `seed` — the hierarchical extension of [`machine_rng`].
///
/// Level 0 is the machines (leaves); level `l ≥ 1` is the `l`-th merge round
/// of the composition tree, with `node` the merge-group index within the
/// round. The stream depends only on `(seed, level, node)` — never on thread
/// count or schedule — so tree-composed outputs stay bit-identical across
/// thread counts and under scheduler fuzzing. The level multiplier is a
/// distinct odd constant so `(level, node)` pairs cannot alias each other's
/// mixed states, and level 0 reproduces the historical `machine_rng` streams
/// exactly.
pub fn node_rng(seed: u64, level: usize, node: usize) -> ChaCha8Rng {
    use rand::SeedableRng;
    let mut state = seed
        ^ (node as u64).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (level as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    let mut key = [0u8; 32];
    for chunk in key.chunks_exact_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    ChaCha8Rng::from_seed(key)
}

/// Pairs every piece with its machine index and private RNG stream.
///
/// Protocol runners call this **before** handing the pieces to the parallel
/// iterator, so all randomness is fixed ahead of the fan-out; the parallel
/// stage then only consumes pre-derived, machine-local state.
pub fn machine_jobs<G>(pieces: &[G], seed: u64) -> Vec<(usize, &G, ChaCha8Rng)> {
    pieces
        .iter()
        .enumerate()
        .map(|(i, piece)| (i, piece, machine_rng(seed, i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    fn first_words(rng: &mut ChaCha8Rng, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn streams_are_deterministic() {
        let a = first_words(&mut machine_rng(42, 3), 8);
        let b = first_words(&mut machine_rng(42, 3), 8);
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ_across_machines_and_seeds() {
        let base = first_words(&mut machine_rng(42, 0), 4);
        assert_ne!(base, first_words(&mut machine_rng(42, 1), 4));
        assert_ne!(base, first_words(&mut machine_rng(43, 0), 4));
    }

    #[test]
    fn adjacent_pairs_do_not_collide() {
        // (seed, machine) pairs that xor-mix to nearby values must still give
        // distinct streams thanks to the SplitMix64 expansion.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8u64 {
            for machine in 0..8usize {
                let words = first_words(&mut machine_rng(seed, machine), 2);
                assert!(
                    seen.insert(words),
                    "collision at seed {seed}, machine {machine}"
                );
            }
        }
    }

    #[test]
    fn level_zero_node_streams_are_the_machine_streams() {
        for seed in [0, 42, u64::MAX] {
            for machine in [0usize, 1, 7, 1000] {
                assert_eq!(
                    first_words(&mut machine_rng(seed, machine), 4),
                    first_words(&mut node_rng(seed, 0, machine), 4)
                );
            }
        }
    }

    #[test]
    fn node_streams_differ_across_levels_and_nodes() {
        let mut seen = std::collections::HashSet::new();
        for level in 0..4usize {
            for node in 0..8usize {
                let words = first_words(&mut node_rng(9, level, node), 2);
                assert!(
                    seen.insert(words),
                    "collision at level {level}, node {node}"
                );
            }
        }
    }

    #[test]
    fn jobs_enumerate_in_order() {
        let pieces = vec!["a", "b", "c"];
        let jobs = machine_jobs(&pieces, 7);
        assert_eq!(jobs.len(), 3);
        for (expect, (i, piece, _)) in jobs.into_iter().enumerate() {
            assert_eq!(i, expect);
            assert_eq!(*piece, pieces[expect]);
        }
    }
}
