//! Per-machine deterministic RNG streams.
//!
//! Every simulated machine gets its **own** `ChaCha8Rng`, derived from the
//! run seed and the machine index *before* the parallel fan-out. Because a
//! machine's stream depends only on `(seed, machine)` — never on which OS
//! thread runs it or in what order machines finish — protocol outputs are
//! bit-identical across thread counts and schedules. This is the invariant
//! the workspace's determinism test suite (`tests/determinism.rs`) pins down.

use rand_chacha::ChaCha8Rng;

/// SplitMix64 — the standard 64-bit finalizer used to decorrelate nearby
/// seeds before they become ChaCha key material.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives machine `machine`'s private RNG stream for a run with seed `seed`.
///
/// The `(seed, machine)` pair is expanded through SplitMix64 into a full
/// 32-byte ChaCha8 key, so streams are decorrelated even for adjacent seeds
/// and machine indices, and distinct from the partitioning RNG (which is
/// seeded from `seed` directly via `seed_from_u64`).
pub fn machine_rng(seed: u64, machine: usize) -> ChaCha8Rng {
    use rand::SeedableRng;
    let mut state = seed ^ (machine as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    let mut key = [0u8; 32];
    for chunk in key.chunks_exact_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    ChaCha8Rng::from_seed(key)
}

/// Pairs every piece with its machine index and private RNG stream.
///
/// Protocol runners call this **before** handing the pieces to the parallel
/// iterator, so all randomness is fixed ahead of the fan-out; the parallel
/// stage then only consumes pre-derived, machine-local state.
pub fn machine_jobs<G>(pieces: &[G], seed: u64) -> Vec<(usize, &G, ChaCha8Rng)> {
    pieces
        .iter()
        .enumerate()
        .map(|(i, piece)| (i, piece, machine_rng(seed, i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    fn first_words(rng: &mut ChaCha8Rng, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn streams_are_deterministic() {
        let a = first_words(&mut machine_rng(42, 3), 8);
        let b = first_words(&mut machine_rng(42, 3), 8);
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ_across_machines_and_seeds() {
        let base = first_words(&mut machine_rng(42, 0), 4);
        assert_ne!(base, first_words(&mut machine_rng(42, 1), 4));
        assert_ne!(base, first_words(&mut machine_rng(43, 0), 4));
    }

    #[test]
    fn adjacent_pairs_do_not_collide() {
        // (seed, machine) pairs that xor-mix to nearby values must still give
        // distinct streams thanks to the SplitMix64 expansion.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8u64 {
            for machine in 0..8usize {
                let words = first_words(&mut machine_rng(seed, machine), 2);
                assert!(
                    seen.insert(words),
                    "collision at seed {seed}, machine {machine}"
                );
            }
        }
    }

    #[test]
    fn jobs_enumerate_in_order() {
        let pieces = vec!["a", "b", "c"];
        let jobs = machine_jobs(&pieces, 7);
        assert_eq!(jobs.len(), 3);
        for (expect, (i, piece, _)) in jobs.into_iter().enumerate() {
            assert_eq!(i, expect);
            assert_eq!(*piece, pieces[expect]);
        }
    }
}
