//! Fingerprint-keyed per-machine coreset cache.
//!
//! The churn service re-coresets **only dirty machines** after a batch of
//! updates; clean machines reuse the coreset they produced last round. The
//! reuse is sound because a coreset build here is a pure function of
//!
//! 1. the protocol seed (per-machine randomness is pre-derived from
//!    `(seed, machine)` via [`crate::streams::machine_rng`]),
//! 2. the machine index, and
//! 3. the piece's **edge content** — captured by the order-and-length
//!    sensitive [`graph::fingerprint_edges`] fingerprint, which the churn
//!    partition keeps in canonical sorted order so equal content implies
//!    equal fingerprint.
//!
//! [`CoresetCacheKey`] bundles exactly those three inputs; a slot is reused
//! only when all three match, so a stale coreset can never leak across a
//! seed change, a machine-count change (the cache is sized per `k`), or an
//! edge-content change on its machine.

use std::fmt;

/// The identity of one cached per-machine coreset build: a cached value is
/// valid for exactly the builds that share all three fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoresetCacheKey {
    /// The protocol seed the build's `machine_rng` stream was derived from.
    pub seed: u64,
    /// The machine index (also the slot index in [`CoresetCache`]).
    pub machine: usize,
    /// [`graph::fingerprint_edges`] of the machine's piece, in the canonical
    /// sorted order the churn partition maintains.
    pub piece_fingerprint: u64,
}

/// A `k`-slot coreset cache keyed by [`CoresetCacheKey`], with hit/miss
/// accounting. One slot per machine: a machine's new build always replaces
/// its previous one (there is never a reason to keep a stale fingerprint's
/// coreset around).
pub struct CoresetCache<T> {
    slots: Vec<Option<(CoresetCacheKey, T)>>,
    hits: u64,
    misses: u64,
}

impl<T> CoresetCache<T> {
    /// An empty cache with one slot per machine.
    pub fn new(k: usize) -> Self {
        let mut slots = Vec::with_capacity(k);
        slots.resize_with(k, || None);
        CoresetCache {
            slots,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of machine slots.
    #[inline]
    pub fn k(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots currently holding a value.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no slot holds a value.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Cache hits counted by [`lookup`](Self::lookup).
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses counted by [`lookup`](Self::lookup).
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The cached value for `key`, if `key.machine`'s slot holds exactly
    /// this key. Counts a hit or a miss.
    ///
    /// # Panics
    ///
    /// Panics if `key.machine >= k`.
    pub fn lookup(&mut self, key: &CoresetCacheKey) -> Option<&T> {
        let slot = &self.slots[key.machine];
        match slot {
            Some((k, _)) if k == key => {
                self.hits += 1;
                // Re-borrow immutably; the match above proves it is Some.
                self.slots[key.machine].as_ref().map(|(_, v)| v)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores `value` for `key`, replacing whatever `key.machine`'s slot
    /// held.
    ///
    /// # Panics
    ///
    /// Panics if `key.machine >= k`.
    pub fn insert(&mut self, key: CoresetCacheKey, value: T) {
        self.slots[key.machine] = Some((key, value));
    }

    /// The value in `machine`'s slot regardless of key (for composing over
    /// "every machine currently has a coreset" after the service refreshed
    /// the dirty ones). Does not count hits/misses.
    pub fn slot(&self, machine: usize) -> Option<&T> {
        self.slots[machine].as_ref().map(|(_, v)| v)
    }

    /// Clears every slot and the hit/miss counters.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.hits = 0;
        self.misses = 0;
    }
}

impl<T> fmt::Debug for CoresetCache<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoresetCache")
            .field("k", &self.k())
            .field("filled", &self.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::fingerprint_edges;
    use graph::Edge;

    fn key(seed: u64, machine: usize, fp: u64) -> CoresetCacheKey {
        CoresetCacheKey {
            seed,
            machine,
            piece_fingerprint: fp,
        }
    }

    #[test]
    fn lookup_hits_only_on_the_exact_key() {
        let mut cache: CoresetCache<&'static str> = CoresetCache::new(3);
        assert!(cache.is_empty());
        cache.insert(key(7, 1, 42), "m1@42");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&key(7, 1, 42)), Some(&"m1@42"));
        // Any differing field misses: fingerprint, seed, or machine.
        assert_eq!(cache.lookup(&key(7, 1, 43)), None);
        assert_eq!(cache.lookup(&key(8, 1, 42)), None);
        assert_eq!(cache.lookup(&key(7, 2, 42)), None);
        assert_eq!((cache.hits(), cache.misses()), (1, 3));
    }

    #[test]
    fn insert_replaces_the_machine_slot() {
        let mut cache: CoresetCache<u32> = CoresetCache::new(2);
        cache.insert(key(1, 0, 10), 100);
        cache.insert(key(1, 0, 11), 101);
        assert_eq!(cache.len(), 1, "one slot per machine");
        assert_eq!(cache.lookup(&key(1, 0, 10)), None, "old build evicted");
        assert_eq!(cache.lookup(&key(1, 0, 11)), Some(&101));
        assert_eq!(cache.slot(0), Some(&101));
        assert_eq!(cache.slot(1), None);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    /// The key's fingerprint component really distinguishes edge content:
    /// same multiset in a different order, or a prefix, fingerprint apart.
    #[test]
    fn piece_fingerprints_separate_edge_contents() {
        let a = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)];
        let b = [Edge::new(1, 2), Edge::new(0, 1), Edge::new(2, 3)];
        let fp_a = fingerprint_edges(&a);
        assert_ne!(fp_a, fingerprint_edges(&b), "order-sensitive");
        assert_ne!(fp_a, fingerprint_edges(&a[..2]), "length-sensitive");
        assert_eq!(fp_a, fingerprint_edges(&a), "deterministic");

        let mut cache: CoresetCache<usize> = CoresetCache::new(1);
        cache.insert(key(0, 0, fp_a), 7);
        assert_eq!(cache.lookup(&key(0, 0, fingerprint_edges(&a))), Some(&7));
        assert_eq!(cache.lookup(&key(0, 0, fingerprint_edges(&b))), None);
    }
}
