//! Vertex-cover coresets: the peeling coreset of Theorem 2 and its controls.
//!
//! * [`PeelingVcCoreset`] — **Theorem 2** / algorithm `VC-Coreset`: peel the
//!   highest-residual-degree vertices in `Δ - 1` rounds with thresholds
//!   `n / (k · 2^{j+1})`, output the peeled vertices as a *fixed* part of the
//!   final cover plus the residual (sparse) subgraph as the coreset.
//! * [`LocalCoverCoreset`] — the negative control from Section 1.2: each
//!   machine outputs (only) a vertex cover of its own piece; on star-like
//!   instances the union is `Ω(k)` times larger than the optimum.
//! * [`GroupedVcCoreset`] — **Remark 5.8**: group vertices into groups of
//!   `Θ(α / log n)`, run the Theorem 2 coreset on the contracted graph, and
//!   expand groups back; an `α`-approximation with `Õ(nk/α)` communication.
//!
//! Every peeling and 2-approximation call below runs on the calling worker
//! thread's reusable `vertexcover::VcEngine` (via the `vertexcover` free
//! functions): the bucket-queue peeling core performs zero per-round
//! edge-buffer reallocations — `graph::metrics::vc_peel_scratch_elems` stays
//! 0 across a protocol run, asserted by experiment E14 (`exp_vc_hotpath`) and
//! the determinism suite. Engine outputs are invariant under workspace
//! reuse, so this sharing never affects the cross-thread-count determinism
//! guarantee.

use crate::params::CoresetParams;
use graph::{Graph, GraphView, VertexId};
use rand_chacha::ChaCha8Rng;
use vertexcover::approx::two_approx_cover;
use vertexcover::peeling::peel_with_thresholds;

/// The output of a vertex-cover coreset on one machine: a fixed set of
/// vertices that will be added verbatim to the final cover, plus a subgraph
/// whose union (across machines) the coordinator still has to cover.
///
/// The paper's size measure counts both parts
/// (Section 1, "Randomized Composable Coresets", final paragraph).
#[derive(Debug, Clone)]
pub struct VcCoresetOutput {
    /// Vertices added directly to the final vertex cover.
    pub fixed_vertices: Vec<VertexId>,
    /// Residual subgraph forwarded to the coordinator.
    pub residual: Graph,
}

impl VcCoresetOutput {
    /// The coreset size as defined by the paper: edges of the subgraph plus
    /// fixed vertices.
    pub fn size(&self) -> usize {
        self.fixed_vertices.len() + self.residual.m()
    }
}

/// A builder that turns one machine's piece `G^(i)` into its vertex-cover
/// coreset.
pub trait VcCoresetBuilder: Send + Sync {
    /// Builds the coreset of `piece`.
    ///
    /// `piece` is a zero-copy view into the run's partition arena — builders
    /// never receive an owned per-machine graph. `rng` is this machine's
    /// private stream, derived from `(seed, machine)` by the protocol runner
    /// before the parallel fan-out (see [`crate::streams::machine_rng`]);
    /// deterministic builders ignore it.
    fn build(
        &self,
        piece: GraphView<'_>,
        params: &CoresetParams,
        machine: usize,
        rng: &mut ChaCha8Rng,
    ) -> VcCoresetOutput;

    /// Short human-readable name used in experiment tables.
    fn name(&self) -> &'static str;
}

/// Theorem 2 coreset (`VC-Coreset` in the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct PeelingVcCoreset;

impl PeelingVcCoreset {
    /// Creates the peeling coreset.
    pub fn new() -> Self {
        PeelingVcCoreset
    }
}

impl VcCoresetBuilder for PeelingVcCoreset {
    fn build(
        &self,
        piece: GraphView<'_>,
        params: &CoresetParams,
        _machine: usize,
        _rng: &mut ChaCha8Rng,
    ) -> VcCoresetOutput {
        let schedule = params.peeling_schedule();
        let outcome = peel_with_thresholds(&piece, &schedule);
        VcCoresetOutput {
            fixed_vertices: outcome.peeled_per_round.into_iter().flatten().collect(),
            residual: outcome.residual,
        }
    }

    fn name(&self) -> &'static str {
        "peeling-vc-coreset"
    }
}

/// Negative control: each machine sends only a (2-approximate) vertex cover of
/// its own piece, with no edges. Locally this is a fine cover; composed across
/// machines it degrades to `Ω(k)` on stars because each machine may choose a
/// different leaf instead of the shared centre.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalCoverCoreset {
    /// If `true`, break ties adversarially by preferring high vertex ids
    /// (leaves in the star instances) over low ids (centres).
    pub adversarial_prefer_leaves: bool,
}

impl LocalCoverCoreset {
    /// Local 2-approximate cover, natural tie-breaking.
    pub fn new() -> Self {
        Self::default()
    }

    /// Local cover that adversarially prefers leaves over centres, realising
    /// the paper's star counterexample deterministically.
    pub fn adversarial() -> Self {
        LocalCoverCoreset {
            adversarial_prefer_leaves: true,
        }
    }
}

impl VcCoresetBuilder for LocalCoverCoreset {
    fn build(
        &self,
        piece: GraphView<'_>,
        _params: &CoresetParams,
        _machine: usize,
        _rng: &mut ChaCha8Rng,
    ) -> VcCoresetOutput {
        let fixed_vertices: Vec<VertexId> = if self.adversarial_prefer_leaves {
            // Cover each edge by its *larger* endpoint (the leaf in star
            // instances where centres have small ids), deduplicated.
            let mut cover: Vec<VertexId> = Vec::new();
            let mut covered = vec![false; piece.n()];
            for e in piece.edges() {
                if !covered[e.u as usize] && !covered[e.v as usize] {
                    let pick = e.v.max(e.u);
                    cover.push(pick);
                    covered[pick as usize] = true;
                }
            }
            cover
        } else {
            two_approx_cover(&piece).sorted_vertices()
        };
        VcCoresetOutput {
            fixed_vertices,
            residual: Graph::empty(piece.n()),
        }
    }

    fn name(&self) -> &'static str {
        if self.adversarial_prefer_leaves {
            "local-cover-adversarial"
        } else {
            "local-cover"
        }
    }
}

/// Remark 5.8 coreset: contract groups of `group_size` consecutive vertices
/// into supervertices, run the peeling coreset on the contracted piece, and
/// expand the answer back to original vertices.
///
/// With `group_size = Θ(α / log n)` the contracted graph has `Θ(n log n / α)`
/// vertices, so the coreset (and hence the per-machine communication) shrinks
/// by a factor `Θ(α / log n)` while the final cover grows by at most the same
/// factor — an `α`-approximation overall.
#[derive(Debug, Clone, Copy)]
pub struct GroupedVcCoreset {
    /// Number of original vertices per supervertex (`>= 1`).
    pub group_size: usize,
}

impl GroupedVcCoreset {
    /// Creates a grouped coreset with the given group size.
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`.
    pub fn new(group_size: usize) -> Self {
        assert!(group_size >= 1, "group size must be at least 1");
        GroupedVcCoreset { group_size }
    }

    /// The paper's parameterisation: groups of `Θ(alpha / log n)` vertices.
    pub fn for_alpha(alpha: f64, n: usize) -> Self {
        let log_n = (n.max(2) as f64).log2();
        Self::new(((alpha / log_n).floor() as usize).max(1))
    }

    /// Maps an original vertex to its supervertex.
    #[inline]
    pub fn group_of(&self, v: VertexId) -> VertexId {
        v / self.group_size as VertexId
    }

    /// Number of supervertices for an `n`-vertex graph.
    pub fn contracted_n(&self, n: usize) -> usize {
        n.div_ceil(self.group_size)
    }

    /// Contracts a graph: every vertex is replaced by its group; self-loops
    /// (edges inside a group) are dropped and parallel edges are merged.
    pub fn contract(&self, g: GraphView<'_>) -> Graph {
        let cn = self.contracted_n(g.n());
        let pairs = g
            .edges()
            .iter()
            .map(|e| (self.group_of(e.u), self.group_of(e.v)))
            .filter(|(a, b)| a != b);
        Graph::from_pairs(cn, pairs).expect("contracted ids are in range by construction")
    }

    /// Expands a set of supervertices back to all their original vertices
    /// (clipped to `0..n`).
    pub fn expand(&self, supervertices: &[VertexId], n: usize) -> Vec<VertexId> {
        let gs = self.group_size as VertexId;
        let mut out = Vec::with_capacity(supervertices.len() * self.group_size);
        for &s in supervertices {
            for off in 0..gs {
                let v = s * gs + off;
                if (v as usize) < n {
                    out.push(v);
                }
            }
        }
        out
    }
}

impl GroupedVcCoreset {
    /// Builds one machine's coreset *in contracted space*: the peeling coreset
    /// of the contracted piece. The coordinator composes these contracted
    /// coresets and only expands the final cover back to original vertices —
    /// exactly the Remark 5.8 protocol, whose communication is measured on the
    /// contracted representation.
    pub fn build_contracted(
        &self,
        piece: GraphView<'_>,
        params: &CoresetParams,
        machine: usize,
        rng: &mut ChaCha8Rng,
    ) -> VcCoresetOutput {
        use graph::GraphRef;
        let contracted = self.contract(piece);
        let contracted_params = CoresetParams::new(self.contracted_n(params.n), params.k);
        let mut out =
            PeelingVcCoreset::new().build(contracted.as_view(), &contracted_params, machine, rng);

        // Edges that fall entirely inside a group contract to self-loops; in
        // the multigraph view of Remark 5.8 a self-loop forces its supervertex
        // into every vertex cover, so those supervertices are fixed here.
        let mut has_internal_edge = vec![false; self.contracted_n(piece.n())];
        for e in piece.edges() {
            let (a, b) = (self.group_of(e.u), self.group_of(e.v));
            if a == b {
                has_internal_edge[a as usize] = true;
            }
        }
        let already: std::collections::BTreeSet<VertexId> =
            out.fixed_vertices.iter().copied().collect();
        for (group, flag) in has_internal_edge.iter().enumerate() {
            if *flag && !already.contains(&(group as VertexId)) {
                out.fixed_vertices.push(group as VertexId);
            }
        }
        out
    }

    /// Runs the full Remark 5.8 protocol over all pieces: build contracted
    /// coresets, compose them in contracted space (union of residuals +
    /// 2-approximation + fixed supervertices), and expand the cover to the
    /// original vertex ids.
    ///
    /// Returns the final cover (over original vertices) together with the
    /// per-machine contracted coreset sizes — the quantity charged as
    /// communication in experiment E7.
    pub fn run_protocol(
        &self,
        pieces: &[GraphView<'_>],
        params: &CoresetParams,
        seed: u64,
    ) -> (Vec<VertexId>, Vec<usize>) {
        use rayon::prelude::*;
        // Same fan-out discipline as the pipeline runners: per-machine RNG
        // streams fixed before the parallel stage, outputs in machine order.
        let outputs: Vec<VcCoresetOutput> = crate::streams::machine_jobs(pieces, seed)
            .into_par_iter()
            .map(|(i, p, mut rng)| self.build_contracted(*p, params, i, &mut rng))
            .collect();
        let sizes: Vec<usize> = outputs.iter().map(VcCoresetOutput::size).collect();

        // Coordinator composition in contracted space: 2-approximation over
        // the residual slices (no union materialization) plus the fixed
        // supervertices — the same engine-backed path as
        // `crate::compose::compose_vertex_cover`.
        let contracted_cover = crate::compose::compose_vertex_cover(&outputs);
        let expanded = self.expand(&contracted_cover.sorted_vertices(), params.n);
        (expanded, sizes)
    }

    /// The name used in experiment tables.
    pub fn name(&self) -> &'static str {
        "grouped-vc-coreset"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen::er::gnp;
    use graph::gen::structured::{star, star_forest};
    use graph::partition::EdgePartition;
    use graph::GraphRef;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vertexcover::VertexCover;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// Machine `machine`'s private stream for an arbitrary fixed test seed.
    fn mrng(machine: usize) -> ChaCha8Rng {
        crate::streams::machine_rng(0, machine)
    }

    /// Helper: compose coresets the way the coordinator does and check the
    /// result covers the whole graph.
    fn compose_and_check(g: &Graph, outputs: &[VcCoresetOutput]) -> VertexCover {
        let residuals: Vec<&Graph> = outputs.iter().map(|o| &o.residual).collect();
        let union = Graph::union(&residuals);
        let mut cover = two_approx_cover(&union);
        for o in outputs {
            for &v in &o.fixed_vertices {
                cover.insert(v);
            }
        }
        assert!(
            cover.covers(g),
            "composed coreset output must cover the input graph"
        );
        cover
    }

    #[test]
    fn peeling_coreset_composition_covers_random_graphs() {
        let mut r = rng(1);
        let n = 1500;
        let g = gnp(n, 0.01, &mut r);
        let k = 6;
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let params = CoresetParams::new(n, k);
        let outputs: Vec<VcCoresetOutput> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| PeelingVcCoreset::new().build(p.as_view(), &params, i, &mut mrng(i)))
            .collect();
        let cover = compose_and_check(&g, &outputs);
        // O(log n) approximation with a generous constant: the optimum is at
        // most n, so just sanity-check the cover is not the whole vertex set.
        assert!(cover.len() < g.n());
    }

    #[test]
    fn peeling_coreset_residual_is_sparse_on_dense_pieces() {
        // A single machine (k = 1) on a dense-ish graph: the residual graph's
        // maximum degree must be bounded by roughly the last threshold.
        let mut r = rng(2);
        let n = 2000;
        let g = gnp(n, 0.05, &mut r);
        let params = CoresetParams::new(n, 1);
        let out = PeelingVcCoreset::new().build(g.as_view(), &params, 0, &mut mrng(0));
        let last_threshold = *params.peeling_schedule().last().unwrap_or(&usize::MAX);
        assert!(
            out.residual.max_degree() <= last_threshold.max(8 * (n as f64).log2() as usize),
            "residual max degree {} should be below the final peeling threshold {}",
            out.residual.max_degree(),
            last_threshold
        );
        // Peeled vertices exist because the graph has high-degree vertices.
        assert!(!out.fixed_vertices.is_empty());
        assert!(out.size() >= out.fixed_vertices.len());
    }

    #[test]
    fn peeling_on_small_piece_peels_nothing() {
        // When n/k is below the 4 log n cut-off there are no rounds at all and
        // the whole piece is forwarded (still only O(n log n) edges).
        let g = star(20);
        let params = CoresetParams::new(21, 8);
        let out = PeelingVcCoreset::new().build(g.as_view(), &params, 0, &mut mrng(0));
        assert!(out.fixed_vertices.is_empty());
        assert_eq!(out.residual.m(), g.m());
    }

    #[test]
    fn local_cover_coreset_covers_locally_but_blows_up_on_stars() {
        // Star forest with large stars split across k machines.
        let g = star_forest(4, 64);
        let k = 8;
        let mut r = rng(3);
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let adversarial = LocalCoverCoreset::adversarial();
        let outputs: Vec<VcCoresetOutput> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| adversarial.build(p.as_view(), &params, i, &mut mrng(i)))
            .collect();
        // The union of local covers does cover the graph...
        let cover = compose_and_check(&g, &outputs);
        // ...but it is far larger than the optimum (4 centres).
        assert!(
            cover.len() >= 4 * 4,
            "adversarial local covers should be much larger than the 4-vertex optimum, got {}",
            cover.len()
        );
    }

    #[test]
    fn grouped_coreset_basics() {
        let grouped = GroupedVcCoreset::new(4);
        assert_eq!(grouped.group_of(0), 0);
        assert_eq!(grouped.group_of(3), 0);
        assert_eq!(grouped.group_of(4), 1);
        assert_eq!(grouped.contracted_n(10), 3);
        assert_eq!(grouped.expand(&[1], 10), vec![4, 5, 6, 7]);
        assert_eq!(grouped.expand(&[2], 10), vec![8, 9]);

        let g = star(15); // centre 0, leaves 1..=15
        let contracted = grouped.contract(g.as_view());
        assert_eq!(contracted.n(), 4);
        // Edges inside group 0 (centre to leaves 1..3) become self-loops and vanish.
        assert!(contracted.m() <= g.m());
        assert!(contracted.m() >= 3);
    }

    #[test]
    fn grouped_for_alpha_matches_theory() {
        let g = GroupedVcCoreset::for_alpha(64.0, 1 << 16); // log2 n = 16
        assert_eq!(g.group_size, 4);
        let g = GroupedVcCoreset::for_alpha(2.0, 1024); // alpha below log n -> group size 1
        assert_eq!(g.group_size, 1);
    }

    #[test]
    fn grouped_protocol_covers_and_shrinks_communication() {
        let mut r = rng(4);
        let n = 1200;
        let g = gnp(n, 0.01, &mut r);
        let k = 5;
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let params = CoresetParams::new(n, k);

        let grouped = GroupedVcCoreset::new(3);
        let (cover_vertices, grouped_sizes) =
            grouped.run_protocol(&graph::views_of(part.pieces()), &params, 4);
        let cover = VertexCover::from_vertices(cover_vertices);
        assert!(
            cover.covers(&g),
            "expanded grouped cover must cover the original graph"
        );

        // The ungrouped peeling coreset sizes, for comparison.
        let ungrouped_sizes: Vec<usize> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                PeelingVcCoreset::new()
                    .build(p.as_view(), &params, i, &mut mrng(i))
                    .size()
            })
            .collect();
        let grouped_total: usize = grouped_sizes.iter().sum();
        let ungrouped_total: usize = ungrouped_sizes.iter().sum();
        assert!(
            grouped_total <= ungrouped_total,
            "grouping must not increase total coreset size ({grouped_total} vs {ungrouped_total})"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn grouped_rejects_zero_group_size() {
        let _ = GroupedVcCoreset::new(0);
    }

    #[test]
    fn builder_names() {
        assert_eq!(PeelingVcCoreset::new().name(), "peeling-vc-coreset");
        assert_eq!(LocalCoverCoreset::new().name(), "local-cover");
        assert_eq!(
            LocalCoverCoreset::adversarial().name(),
            "local-cover-adversarial"
        );
        assert_eq!(GroupedVcCoreset::new(2).name(), "grouped-vc-coreset");
    }

    #[test]
    fn empty_piece_produces_empty_output() {
        let g = Graph::empty(30);
        let params = CoresetParams::new(30, 3);
        let out = PeelingVcCoreset::new().build(g.as_view(), &params, 0, &mut mrng(0));
        assert_eq!(out.size(), 0);
        let out = LocalCoverCoreset::new().build(g.as_view(), &params, 0, &mut mrng(0));
        assert_eq!(out.size(), 0);
        let out = GroupedVcCoreset::new(2).build_contracted(g.as_view(), &params, 0, &mut mrng(0));
        assert_eq!(out.size(), 0);
    }
}
