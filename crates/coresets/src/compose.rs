//! Coordinator-side composition of coresets.
//!
//! The defining property of a composable coreset is that the final answer is
//! obtained by running an (arbitrary) algorithm for the problem on the
//! **union** of the coresets. This module implements exactly that step:
//!
//! * [`compose_matching`] — union the matching-coreset subgraphs (kept for
//!   callers that want the composed graph itself).
//! * [`solve_composed_matching`] — maximum matching of the union, solved
//!   straight off the coreset edge slices in machine order
//!   ([`matching::maximum::maximum_matching_concat`]) — the union `Graph` is
//!   never materialized, mirroring the vertex-cover side.
//! * [`compose_vertex_cover`] — union the fixed vertex sets, cover the union
//!   of the residual subgraphs with a 2-approximation, and return the
//!   combined cover (paper, Section 3.2). The residual union is **never
//!   materialized**: the 2-approximation scans the residual edge slices in
//!   machine order through the thread's `vertexcover::VcEngine`
//!   ([`vertexcover::two_approx_cover_concat`]), so the coordinator's VC
//!   composition performs zero edge-buffer allocations.
//!
//! The *independent* parts of the coordinator's work run on the work-stealing
//! pool: the warm-start screen over per-machine coresets
//! ([`solve_composed_matching`]) and the per-residual-slice extent/degree
//! statistics feeding the concatenated 2-approximation
//! ([`compose_vertex_cover`]) both fan out per machine and reduce
//! deterministically (results in machine order; `max`/`sum` folds). The
//! greedy maximal-matching scan itself is order-defined and stays
//! sequential — parallelism never changes any composed answer.

use crate::vc_coreset::VcCoresetOutput;
use graph::{Edge, Graph};
use matching::matching::{edges_form_matching, Matching};
use matching::maximum::{maximum_matching_concat, MaximumMatchingAlgorithm};
use rayon::prelude::*;
use vertexcover::approx::two_approx_cover_concat;
use vertexcover::VertexCover;

/// Unions matching-coreset subgraphs into the coordinator's composed graph.
pub fn compose_matching(coresets: &[Graph]) -> Graph {
    let refs: Vec<&Graph> = coresets.iter().collect();
    Graph::union(&refs)
}

/// Extracts a maximum matching of the coresets' union — the coordinator's
/// full computation for the matching problem.
///
/// The union is **never materialized**: the solver compacts and solves the
/// coreset edge slices in machine order directly
/// ([`matching::maximum::maximum_matching_concat`]), mirroring the
/// vertex-cover side's [`two_approx_cover_concat`]. Per-machine coresets are
/// edge-disjoint (each is a subgraph of its machine's partition piece), so
/// the concatenation *is* the first-occurrence-preserving union the old
/// `Graph::union` path built — same edge sequence into the solver, hence
/// bit-identical answers (pinned by the composition proptests).
///
/// The solve is **warm-started** from the largest per-machine coreset that is
/// itself a matching (with the paper's builders, every coreset is one): its
/// edges belong to the union by construction, and seeding the solver with a
/// matching that is already within a constant factor of the union's optimum
/// (Theorem 1's analysis) lets the engine skip most augmenting work. Warm
/// starts never change the returned *size* — the engine always terminates at
/// a maximum matching of the union.
pub fn solve_composed_matching(
    coresets: &[Graph],
    algorithm: MaximumMatchingAlgorithm,
) -> Matching {
    let refs: Vec<&Graph> = coresets.iter().collect();
    solve_composed_matching_refs(&refs, algorithm)
}

/// [`solve_composed_matching`] over borrowed coresets.
///
/// The churn service's coordinator composes a mix of freshly rebuilt
/// coresets and cached ones living in its [`crate::cache::CoresetCache`]
/// slots; this variant lets it hand over `&[&Graph]` without cloning the
/// cached pieces into a contiguous owned vector.
pub fn solve_composed_matching_refs(
    coresets: &[&Graph],
    algorithm: MaximumMatchingAlgorithm,
) -> Matching {
    assert!(
        !coresets.is_empty(),
        "composition of zero coresets is undefined"
    );
    let n = coresets[0].n();
    debug_assert!(
        coresets.iter().all(|c| c.n() == n),
        "all coresets must share the vertex set"
    );
    let warm = best_piece_matching(coresets);
    let slices: Vec<&[Edge]> = coresets.iter().map(|c| c.edges()).collect();
    maximum_matching_concat(n, &slices, warm.as_ref(), algorithm)
}

/// The largest coreset that forms a valid matching, as the warm start for
/// the composed solve. Deterministic: among the coresets that are valid
/// non-empty matchings, the **first one of maximal size wins** (ties keep
/// the earlier machine). Builders whose messages are not matchings (none of
/// the paper's, but the trait does not forbid it) are skipped defensively.
///
/// Two passes: a parallel borrow-only screen (`(size, is-matching)` per
/// piece, machine order preserved by the pool's indexed reassembly), then
/// one sequential argmax and a **single** edge-list clone of the winner —
/// the old single-pass loop cloned every improving candidate, including
/// ones that immediately lost to a later machine.
fn best_piece_matching(coresets: &[&Graph]) -> Option<Matching> {
    let stats: Vec<(usize, bool)> = coresets
        .par_iter()
        .map(|c| (c.m(), edges_form_matching(c.edges())))
        .collect();
    let mut best: Option<usize> = None;
    for (i, &(m, is_matching)) in stats.iter().enumerate() {
        if is_matching && m > best.map_or(0, |b| stats[b].0) {
            best = Some(i);
        }
    }
    best.map(|i| {
        // The one clone this function performs: the winner's edges become the
        // warm-start matching handed to the solver.
        Matching::try_from_edges(coresets[i].edges().to_vec()) // xtask: allow(hot-path-alloc)
            .expect("winner passed the matching screen")
    })
}

/// Composes vertex-cover coresets: the union of all fixed vertices plus a
/// 2-approximate vertex cover of the union of the residual subgraphs.
///
/// The 2-approximation runs directly over the residual edge slices in
/// machine order — duplicate edges across residuals are no-ops for the
/// greedy maximal matching, so the cover equals the one computed on the
/// materialized [`Graph::union`] (pinned by the composition tests) while
/// allocating no union buffer at all. A parallel per-slice statistics pass
/// (`residual_slice_stats`) sizes the scan's workspace to the vertices the
/// residuals actually touch and skips it entirely when the residual union is
/// edgeless; the greedy scan itself is order-defined and stays sequential.
pub fn compose_vertex_cover(outputs: &[VcCoresetOutput]) -> VertexCover {
    let refs: Vec<&VcCoresetOutput> = outputs.iter().collect();
    compose_vertex_cover_refs(&refs)
}

/// [`compose_vertex_cover`] over borrowed coreset outputs — the borrowed
/// counterpart the churn service's coordinator uses to compose cached and
/// freshly rebuilt pieces without cloning (see
/// [`solve_composed_matching_refs`]).
pub fn compose_vertex_cover_refs(outputs: &[&VcCoresetOutput]) -> VertexCover {
    if outputs.is_empty() {
        return VertexCover::new();
    }
    let (n, total_edges) = residual_slice_stats(outputs);
    let mut cover = VertexCover::new();
    if total_edges > 0 {
        let slices: Vec<&[Edge]> = outputs.iter().map(|o| o.residual.edges()).collect();
        cover = two_approx_cover_concat(n, &slices);
    }
    for o in outputs {
        for &v in &o.fixed_vertices {
            cover.insert(v);
        }
    }
    cover
}

/// Parallel per-residual-slice statistics feeding [`two_approx_cover_concat`]:
/// each machine's slice is scanned for its vertex extent (1 + max endpoint)
/// and edge count on the work-stealing pool, then the per-slice results fold
/// deterministically (`max` extent, `sum` of counts).
///
/// The tight extent sizes the 2-approximation's epoch-stamped workspace to
/// the vertices the residuals actually touch instead of each machine's
/// declared `n` — output-invariant, because the greedy scan only ever flags
/// endpoints of scanned edges — and a zero edge total lets the caller skip
/// the scan (and its workspace warm-up) outright.
fn residual_slice_stats(outputs: &[&VcCoresetOutput]) -> (usize, usize) {
    let per_slice: Vec<(usize, usize)> = outputs
        .par_iter()
        .map(|o| {
            let edges = o.residual.edges();
            let extent = edges
                .iter()
                .map(|e| e.u.max(e.v) as usize + 1)
                .max()
                .unwrap_or(0);
            (extent, edges.len())
        })
        .collect();
    per_slice
        .into_iter()
        .fold((0, 0), |(n, m), (extent, count)| (n.max(extent), m + count))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching_coreset::{MatchingCoresetBuilder, MaximumMatchingCoreset};
    use crate::params::CoresetParams;
    use crate::vc_coreset::{PeelingVcCoreset, VcCoresetBuilder};
    use graph::gen::er::gnp;
    use graph::partition::EdgePartition;
    use graph::GraphRef;
    use matching::maximum::maximum_matching;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn composed_matching_graph_has_at_most_k_times_n_over_2_edges() {
        let mut r = rng(1);
        let g = gnp(400, 0.02, &mut r);
        let k = 6;
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let coresets: Vec<Graph> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                MaximumMatchingCoreset::new().build(
                    p.as_view(),
                    &params,
                    i,
                    &mut crate::streams::machine_rng(0, i),
                )
            })
            .collect();
        let composed = compose_matching(&coresets);
        assert!(composed.m() <= k * g.n() / 2, "coreset union is O(nk)");
        // Every composed edge is an original edge.
        let orig: std::collections::HashSet<_> = g.edges().iter().collect();
        assert!(composed.edges().iter().all(|e| orig.contains(e)));
    }

    #[test]
    fn solving_the_composition_gives_a_valid_matching_of_the_original() {
        let mut r = rng(2);
        let g = gnp(500, 0.015, &mut r);
        let k = 4;
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let coresets: Vec<Graph> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                MaximumMatchingCoreset::new().build(
                    p.as_view(),
                    &params,
                    i,
                    &mut crate::streams::machine_rng(0, i),
                )
            })
            .collect();
        let m = solve_composed_matching(&coresets, MaximumMatchingAlgorithm::Auto);
        assert!(m.is_valid_for(&g));
        // Theorem 1: constant-factor approximation (ratio <= 9 proven, much
        // better in practice).
        let opt = maximum_matching(&g).len();
        assert!(
            9 * m.len() >= opt,
            "composed matching {} vs optimum {opt}",
            m.len()
        );
    }

    #[test]
    fn composed_cover_covers_the_original_graph() {
        let mut r = rng(3);
        let g = gnp(900, 0.01, &mut r);
        let k = 5;
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let outputs: Vec<VcCoresetOutput> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                PeelingVcCoreset::new().build(
                    p.as_view(),
                    &params,
                    i,
                    &mut crate::streams::machine_rng(0, i),
                )
            })
            .collect();
        let cover = compose_vertex_cover(&outputs);
        assert!(cover.covers(&g));
    }

    #[test]
    fn composing_nothing_yields_empty_results() {
        assert!(compose_vertex_cover(&[]).is_empty());
        let m = solve_composed_matching(&[Graph::empty(5)], MaximumMatchingAlgorithm::Auto);
        assert!(m.is_empty());
    }

    /// Pins the documented warm-start tie-break: among coresets that are
    /// valid matchings, the **first one of maximal size** wins — a later
    /// equally-sized piece or a larger non-matching piece never displaces it.
    #[test]
    fn warm_start_picks_the_first_coreset_of_maximal_size() {
        let a = Graph::from_pairs(12, vec![(0, 1), (2, 3)]).unwrap();
        // Same maximal size as `b` but earlier: must win the tie.
        let b = Graph::from_pairs(12, vec![(4, 5), (6, 7), (8, 9)]).unwrap();
        let c = Graph::from_pairs(12, vec![(0, 2), (1, 3), (4, 6)]).unwrap();
        // Bigger than all of them but NOT a matching: must be skipped.
        let not_matching = Graph::from_pairs(12, vec![(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let warm =
            best_piece_matching(&[&a, &b, &c, &not_matching]).expect("three valid candidates");
        assert_eq!(warm.edges(), b.edges(), "first maximal-size piece wins");
        // Order flipped: `c` now precedes `b`, so `c` takes the tie.
        let warm =
            best_piece_matching(&[&a, &c, &b, &not_matching]).expect("three valid candidates");
        assert_eq!(warm.edges(), c.edges());
        // Only invalid candidates (or empty ones) → no warm start.
        assert!(best_piece_matching(&[&not_matching]).is_none());
        assert!(best_piece_matching(&[&Graph::empty(4)]).is_none());
        assert!(best_piece_matching(&[]).is_none());
    }

    #[test]
    fn unmaterialized_composition_equals_the_union_path() {
        use vertexcover::approx::two_approx_cover;
        let mut r = rng(4);
        let g = gnp(700, 0.012, &mut r);
        let k = 4;
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let outputs: Vec<VcCoresetOutput> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                PeelingVcCoreset::new().build(
                    p.as_view(),
                    &params,
                    i,
                    &mut crate::streams::machine_rng(1, i),
                )
            })
            .collect();
        let cover = compose_vertex_cover(&outputs);
        // Reference: materialize the union, 2-approximate it, add the fixed
        // vertices — the pre-engine composition.
        let residuals: Vec<&Graph> = outputs.iter().map(|o| &o.residual).collect();
        let union = Graph::union(&residuals);
        let mut reference = two_approx_cover(&union);
        for o in &outputs {
            for &v in &o.fixed_vertices {
                reference.insert(v);
            }
        }
        assert_eq!(cover, reference);
        assert!(cover.covers(&g));
    }
}
