//! Coordinator-side composition of coresets.
//!
//! The defining property of a composable coreset is that the final answer is
//! obtained by running an (arbitrary) algorithm for the problem on the
//! **union** of the coresets. This module implements exactly that step:
//!
//! * [`compose_matching`] — union the matching-coreset subgraphs.
//! * [`solve_composed_matching`] — union + maximum matching of the union.
//! * [`compose_vertex_cover`] — union the fixed vertex sets, cover the union
//!   of the residual subgraphs with a 2-approximation, and return the
//!   combined cover (paper, Section 3.2). The residual union is **never
//!   materialized**: the 2-approximation scans the residual edge slices in
//!   machine order through the thread's `vertexcover::VcEngine`
//!   ([`vertexcover::two_approx_cover_concat`]), so the coordinator's VC
//!   composition performs zero edge-buffer allocations.

use crate::vc_coreset::VcCoresetOutput;
use graph::{Edge, Graph};
use matching::matching::Matching;
use matching::maximum::{maximum_matching_warm, maximum_matching_with, MaximumMatchingAlgorithm};
use vertexcover::approx::two_approx_cover_concat;
use vertexcover::VertexCover;

/// Unions matching-coreset subgraphs into the coordinator's composed graph.
pub fn compose_matching(coresets: &[Graph]) -> Graph {
    let refs: Vec<&Graph> = coresets.iter().collect();
    Graph::union(&refs)
}

/// Unions the coresets and extracts a maximum matching of the union — the
/// coordinator's full computation for the matching problem.
///
/// The solve is **warm-started** from the largest per-machine coreset that is
/// itself a matching (with the paper's builders, every coreset is one): its
/// edges belong to the union by construction, and seeding the solver with a
/// matching that is already within a constant factor of the union's optimum
/// (Theorem 1's analysis) lets the engine skip most augmenting work. Warm
/// starts never change the returned *size* — the engine always terminates at
/// a maximum matching of the union (pinned by the composition proptests).
pub fn solve_composed_matching(
    coresets: &[Graph],
    algorithm: MaximumMatchingAlgorithm,
) -> Matching {
    let composed = compose_matching(coresets);
    match best_piece_matching(coresets) {
        Some(warm) => maximum_matching_warm(&composed, &warm, algorithm),
        None => maximum_matching_with(&composed, algorithm),
    }
}

/// The largest coreset that forms a valid matching, as the warm start for
/// the composed solve. Deterministic: the first coreset of maximal size
/// wins. Builders whose messages are not matchings (none of the paper's,
/// but the trait does not forbid it) are skipped defensively.
fn best_piece_matching(coresets: &[Graph]) -> Option<Matching> {
    let mut best: Option<Matching> = None;
    for c in coresets {
        if c.m() > best.as_ref().map_or(0, Matching::len) {
            if let Some(m) = Matching::try_from_edges(c.edges().to_vec()) {
                best = Some(m);
            }
        }
    }
    best
}

/// Composes vertex-cover coresets: the union of all fixed vertices plus a
/// 2-approximate vertex cover of the union of the residual subgraphs.
///
/// The 2-approximation runs directly over the residual edge slices in
/// machine order — duplicate edges across residuals are no-ops for the
/// greedy maximal matching, so the cover equals the one computed on the
/// materialized [`Graph::union`] (pinned by the composition tests) while
/// allocating no union buffer at all.
pub fn compose_vertex_cover(outputs: &[VcCoresetOutput]) -> VertexCover {
    if outputs.is_empty() {
        return VertexCover::new();
    }
    let n = outputs.iter().map(|o| o.residual.n()).max().unwrap_or(0);
    let slices: Vec<&[Edge]> = outputs.iter().map(|o| o.residual.edges()).collect();
    let mut cover = two_approx_cover_concat(n, &slices);
    for o in outputs {
        for &v in &o.fixed_vertices {
            cover.insert(v);
        }
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching_coreset::{MatchingCoresetBuilder, MaximumMatchingCoreset};
    use crate::params::CoresetParams;
    use crate::vc_coreset::{PeelingVcCoreset, VcCoresetBuilder};
    use graph::gen::er::gnp;
    use graph::partition::EdgePartition;
    use graph::GraphRef;
    use matching::maximum::maximum_matching;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn composed_matching_graph_has_at_most_k_times_n_over_2_edges() {
        let mut r = rng(1);
        let g = gnp(400, 0.02, &mut r);
        let k = 6;
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let coresets: Vec<Graph> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                MaximumMatchingCoreset::new().build(
                    p.as_view(),
                    &params,
                    i,
                    &mut crate::streams::machine_rng(0, i),
                )
            })
            .collect();
        let composed = compose_matching(&coresets);
        assert!(composed.m() <= k * g.n() / 2, "coreset union is O(nk)");
        // Every composed edge is an original edge.
        let orig: std::collections::HashSet<_> = g.edges().iter().collect();
        assert!(composed.edges().iter().all(|e| orig.contains(e)));
    }

    #[test]
    fn solving_the_composition_gives_a_valid_matching_of_the_original() {
        let mut r = rng(2);
        let g = gnp(500, 0.015, &mut r);
        let k = 4;
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let coresets: Vec<Graph> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                MaximumMatchingCoreset::new().build(
                    p.as_view(),
                    &params,
                    i,
                    &mut crate::streams::machine_rng(0, i),
                )
            })
            .collect();
        let m = solve_composed_matching(&coresets, MaximumMatchingAlgorithm::Auto);
        assert!(m.is_valid_for(&g));
        // Theorem 1: constant-factor approximation (ratio <= 9 proven, much
        // better in practice).
        let opt = maximum_matching(&g).len();
        assert!(
            9 * m.len() >= opt,
            "composed matching {} vs optimum {opt}",
            m.len()
        );
    }

    #[test]
    fn composed_cover_covers_the_original_graph() {
        let mut r = rng(3);
        let g = gnp(900, 0.01, &mut r);
        let k = 5;
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let outputs: Vec<VcCoresetOutput> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                PeelingVcCoreset::new().build(
                    p.as_view(),
                    &params,
                    i,
                    &mut crate::streams::machine_rng(0, i),
                )
            })
            .collect();
        let cover = compose_vertex_cover(&outputs);
        assert!(cover.covers(&g));
    }

    #[test]
    fn composing_nothing_yields_empty_results() {
        assert!(compose_vertex_cover(&[]).is_empty());
        let m = solve_composed_matching(&[Graph::empty(5)], MaximumMatchingAlgorithm::Auto);
        assert!(m.is_empty());
    }

    #[test]
    fn unmaterialized_composition_equals_the_union_path() {
        use vertexcover::approx::two_approx_cover;
        let mut r = rng(4);
        let g = gnp(700, 0.012, &mut r);
        let k = 4;
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let params = CoresetParams::new(g.n(), k);
        let outputs: Vec<VcCoresetOutput> = part
            .pieces()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                PeelingVcCoreset::new().build(
                    p.as_view(),
                    &params,
                    i,
                    &mut crate::streams::machine_rng(1, i),
                )
            })
            .collect();
        let cover = compose_vertex_cover(&outputs);
        // Reference: materialize the union, 2-approximate it, add the fixed
        // vertices — the pre-engine composition.
        let residuals: Vec<&Graph> = outputs.iter().map(|o| &o.residual).collect();
        let union = Graph::union(&residuals);
        let mut reference = two_approx_cover(&union);
        for o in &outputs {
            for &v in &o.fixed_vertices {
                reference.insert(v);
            }
        }
        assert_eq!(cover, reference);
        assert!(cover.covers(&g));
    }
}
