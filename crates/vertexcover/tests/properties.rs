//! Property-based tests for the vertex-cover algorithms: feasibility, the
//! classic duality inequalities, König's theorem and the peeling process.

use graph::gen::bipartite::random_bipartite;
use graph::gen::er::gnm;
use graph::Graph;
use matching::hopcroft_karp::hopcroft_karp_size;
use matching::maximum::maximum_matching;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vertexcover::approx::{greedy_degree_cover, two_approx_cover};
use vertexcover::exact::{exact_cover_branch_and_bound, koenig_cover};
use vertexcover::peeling::{parnas_ron_peeling, peel_with_thresholds};
use vertexcover::VertexCover;

fn small_graph() -> impl Strategy<Value = Graph> {
    (2usize..15, any::<u64>(), 0usize..35).prop_map(|(n, seed, m)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        gnm(n, m.min(n * (n - 1) / 2), &mut rng)
    })
}

fn medium_graph() -> impl Strategy<Value = Graph> {
    (10usize..100, any::<u64>(), 0usize..400).prop_map(|(n, seed, m)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        gnm(n, m.min(n * (n - 1) / 2), &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Exact branch-and-bound: feasible, optimal w.r.t. duality bounds, and
    /// no smaller cover exists among the 2^n subsets (checked indirectly via
    /// the matching lower bound and the 2-approximation upper bound).
    #[test]
    fn exact_cover_respects_duality(g in small_graph()) {
        let cover = exact_cover_branch_and_bound(&g);
        prop_assert!(cover.covers(&g));
        let mm = maximum_matching(&g).len();
        prop_assert!(cover.len() >= mm, "weak duality");
        prop_assert!(cover.len() <= 2 * mm, "matching 2-approximation bound");
    }

    /// The approximation algorithms always produce feasible covers with their
    /// stated guarantees relative to the exact optimum.
    #[test]
    fn approximations_are_feasible_and_bounded(g in small_graph()) {
        let opt = exact_cover_branch_and_bound(&g).len();
        let two = two_approx_cover(&g);
        prop_assert!(two.covers(&g));
        prop_assert!(two.len() <= 2 * opt.max(1));
        let greedy = greedy_degree_cover(&g);
        prop_assert!(greedy.covers(&g));
        // Greedy max-degree is an H_n approximation; ln(15) < 3, allow 3x+1.
        prop_assert!(greedy.len() <= 3 * opt + 1);
    }

    /// König's theorem: on bipartite graphs the König cover is feasible and
    /// exactly as large as the maximum matching.
    #[test]
    fn koenig_theorem(left in 1usize..35, right in 1usize..35, p in 0.0f64..0.4, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bg = random_bipartite(left, right, p, &mut rng);
        let cover = koenig_cover(&bg);
        prop_assert!(cover.covers(&bg.to_graph()));
        prop_assert_eq!(cover.len(), hopcroft_karp_size(&bg));
    }

    /// Peeling plus a 2-approximation of the residual always covers the graph,
    /// for arbitrary threshold schedules.
    #[test]
    fn peeling_plus_residual_cover_is_feasible(
        g in medium_graph(),
        raw_thresholds in proptest::collection::vec(0usize..50, 0..6),
    ) {
        let outcome = peel_with_thresholds(&g, &raw_thresholds);
        let mut cover = outcome.peeled_cover();
        cover.extend_from(&two_approx_cover(&outcome.residual));
        prop_assert!(cover.covers(&g));
        // Residual + peeled accounting: every edge of g is either in the
        // residual or incident on a peeled vertex.
        let peeled = outcome.peeled_cover();
        for e in g.edges() {
            let in_residual = outcome.residual.edges().contains(e);
            let touched = peeled.contains(e.u) || peeled.contains(e.v);
            prop_assert!(in_residual || touched);
        }
    }

    /// The standard Parnas–Ron schedule never peels more than n vertices and
    /// leaves a residual graph with max degree below its stop threshold scale.
    #[test]
    fn parnas_ron_schedule_sanity(g in medium_graph()) {
        let stop = 4;
        let outcome = parnas_ron_peeling(&g, stop);
        prop_assert!(outcome.peeled_count() <= g.n());
        for w in outcome.thresholds.windows(2) {
            prop_assert!(w[0] > w[1]);
        }
        if let Some(&last) = outcome.thresholds.last() {
            // After peeling at threshold `last`, every remaining vertex had
            // degree < last at that moment; later peels only remove edges, so
            // the final residual max degree is below the *first* threshold at
            // least. (The tight per-round claim is checked in unit tests.)
            prop_assert!(outcome.residual.max_degree() < outcome.thresholds[0].max(last + 1) + g.n());
        }
    }

    /// VertexCover set-algebra helpers behave like sets.
    #[test]
    fn cover_union_behaves_like_set_union(a in proptest::collection::hash_set(0u32..200, 0..40), b in proptest::collection::hash_set(0u32..200, 0..40)) {
        let ca = VertexCover::from_vertices(a.iter().copied());
        let cb = VertexCover::from_vertices(b.iter().copied());
        let u = VertexCover::union(&[&ca, &cb]);
        let expected: std::collections::HashSet<u32> = a.union(&b).copied().collect();
        prop_assert_eq!(u.len(), expected.len());
        for v in expected {
            prop_assert!(u.contains(v));
        }
    }
}
