//! Properties pinning the vertex-cover engine (stamped degree pre-screen +
//! compacted bucket-queue peeling + epoch-reset scratch) to the simple
//! reference algorithms: the new hot path must be a pure performance change,
//! never a behavioural one.

use graph::gen::er::gnm;
use graph::{BipartiteGraph, Csr, Edge, Graph, VertexId};
use matching::greedy::maximal_matching;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BinaryHeap;
use vertexcover::exact::{exact_cover_branch_and_bound, koenig_cover};
use vertexcover::lp::{lp_vertex_cover, HalfIntegralSolution};
use vertexcover::peeling::{parnas_ron_schedule, peel_with_thresholds_reference};
use vertexcover::{greedy_degree_cover, two_approx_cover, VcEngine, VertexCover};

fn arb_graph(max_n: usize, density: f64) -> impl Strategy<Value = Graph> {
    (2usize..max_n, any::<u64>()).prop_map(move |(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let max_m = n * (n - 1) / 2;
        gnm(n, ((max_m as f64) * density) as usize, &mut rng)
    })
}

/// Arbitrary threshold schedules, including zeros (skipped), repeats and
/// non-monotone orders — the generic `peel_with_thresholds` contract.
fn arb_thresholds(max_t: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..max_t, 0..8)
}

/// Spreads a graph's vertices over a sparse id space (multiplying ids by
/// `stride`), so most vertex ids are isolated — the compaction regime.
fn spread(g: &Graph, stride: u32) -> Graph {
    let edges: Vec<Edge> = g
        .edges()
        .iter()
        .map(|e| Edge::new(e.u * stride, e.v * stride))
        .collect();
    Graph::from_edges_unchecked(g.n() * stride as usize, edges)
}

/// The pre-engine greedy max-degree cover, kept as the differential baseline.
fn greedy_degree_reference(g: &Graph) -> VertexCover {
    let adj = Csr::from_ref(g);
    let n = g.n();
    let mut remaining_degree: Vec<usize> = (0..n as VertexId).map(|v| adj.degree(v)).collect();
    let mut covered = vec![false; n];
    let mut uncovered_edges = g.m();
    let mut heap: BinaryHeap<(usize, VertexId)> = (0..n as VertexId)
        .filter(|&v| remaining_degree[v as usize] > 0)
        .map(|v| (remaining_degree[v as usize], v))
        .collect();
    let mut cover = VertexCover::new();
    while uncovered_edges > 0 {
        let (claimed, v) = heap.pop().expect("edges remain");
        if covered[v as usize] || claimed != remaining_degree[v as usize] {
            continue;
        }
        if remaining_degree[v as usize] == 0 {
            continue;
        }
        cover.insert(v);
        covered[v as usize] = true;
        for &w in adj.neighbors(v) {
            if !covered[w as usize] {
                uncovered_edges -= 1;
                remaining_degree[w as usize] -= 1;
                if remaining_degree[w as usize] > 0 {
                    heap.push((remaining_degree[w as usize], w));
                }
            }
        }
        remaining_degree[v as usize] = 0;
    }
    cover
}

/// The pre-engine LP solve (double cover over the full id space), kept as the
/// differential baseline.
fn lp_reference(g: &Graph) -> HalfIntegralSolution {
    let n = g.n();
    let pairs = g.edges().iter().flat_map(|e| [(e.u, e.v), (e.v, e.u)]);
    let double = BipartiteGraph::from_pairs(n, n, pairs).expect("ids in range");
    let cover = koenig_cover(&double);
    let mut values = vec![0.0f64; n];
    for v in cover.vertices() {
        let original = if (v as usize) < n {
            v as usize
        } else {
            v as usize - n
        };
        values[original] += 0.5;
    }
    HalfIntegralSolution { values }
}

/// The pre-engine exact branch-and-bound (adjacency lists over the full id
/// space), kept as the differential baseline.
fn exact_reference(g: &Graph) -> VertexCover {
    type UndoLog = Vec<(VertexId, Vec<VertexId>)>;

    fn take_vertex(neighbors: &mut [Vec<VertexId>], v: VertexId) -> UndoLog {
        let mine = std::mem::take(&mut neighbors[v as usize]);
        let mut removed = Vec::with_capacity(mine.len() + 1);
        for &w in &mine {
            let old = neighbors[w as usize].clone();
            neighbors[w as usize].retain(|&x| x != v);
            removed.push((w, old));
        }
        removed.push((v, mine));
        removed
    }

    fn undo_take(neighbors: &mut [Vec<VertexId>], v: VertexId, removed: UndoLog) {
        for (w, old) in removed {
            if w == v {
                neighbors[v as usize] = old;
            } else {
                neighbors[w as usize] = old;
            }
        }
    }

    fn branch(
        neighbors: &mut Vec<Vec<VertexId>>,
        current: &mut Vec<VertexId>,
        best: &mut Option<Vec<VertexId>>,
    ) {
        if let Some(b) = best {
            if current.len() >= b.len() {
                return;
            }
        }
        let mut reduced: Vec<(VertexId, UndoLog)> = Vec::new();
        loop {
            let mut applied = false;
            for v in 0..neighbors.len() {
                if neighbors[v].len() == 1 {
                    let w = neighbors[v][0];
                    let removed = take_vertex(neighbors, w);
                    current.push(w);
                    reduced.push((w, removed));
                    applied = true;
                    break;
                }
            }
            if !applied {
                break;
            }
            if let Some(b) = best {
                if current.len() >= b.len() {
                    for (w, removed) in reduced.into_iter().rev() {
                        current.pop();
                        undo_take(neighbors, w, removed);
                    }
                    return;
                }
            }
        }
        let pivot = (0..neighbors.len())
            .max_by_key(|&v| neighbors[v].len())
            .filter(|&v| !neighbors[v].is_empty());
        match pivot {
            None => {
                if best.as_ref().is_none_or(|b| current.len() < b.len()) {
                    *best = Some(current.clone());
                }
            }
            Some(v) => {
                let v = v as VertexId;
                let removed = take_vertex(neighbors, v);
                current.push(v);
                branch(neighbors, current, best);
                current.pop();
                undo_take(neighbors, v, removed);

                let nbrs = neighbors[v as usize].clone();
                let mut undo_stack = Vec::with_capacity(nbrs.len());
                for &w in &nbrs {
                    undo_stack.push((w, take_vertex(neighbors, w)));
                    current.push(w);
                }
                branch(neighbors, current, best);
                for _ in &nbrs {
                    current.pop();
                }
                for (w, removed) in undo_stack.into_iter().rev() {
                    undo_take(neighbors, w, removed);
                }
            }
        }
        for (w, removed) in reduced.into_iter().rev() {
            current.pop();
            undo_take(neighbors, w, removed);
        }
    }

    let mut neighbors: Vec<Vec<VertexId>> = vec![Vec::new(); g.n()];
    for e in g.edges() {
        neighbors[e.u as usize].push(e.v);
        neighbors[e.v as usize].push(e.u);
    }
    for list in &mut neighbors {
        list.sort_unstable();
    }
    let mut best: Option<Vec<VertexId>> = None;
    let mut current: Vec<VertexId> = Vec::new();
    branch(&mut neighbors, &mut current, &mut best);
    VertexCover::from_vertices(best.unwrap_or_default())
}

/// Exhaustive minimum vertex cover size for tiny graphs.
fn brute_force_vc_size(g: &Graph) -> usize {
    let n = g.n();
    assert!(n <= 20);
    (0..(1u32 << n))
        .filter(|mask| {
            g.edges()
                .iter()
                .all(|e| mask & (1 << e.u) != 0 || mask & (1 << e.v) != 0)
        })
        .map(|mask| mask.count_ones() as usize)
        .min()
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine peels exactly the reference's rounds — identical peeled
    /// sets round by round, identical used thresholds, identical residual
    /// (edges and order) — for arbitrary threshold schedules.
    #[test]
    fn peeling_matches_reference_round_by_round(
        g in arb_graph(60, 0.15),
        thresholds in arb_thresholds(40),
    ) {
        let mut engine = VcEngine::new();
        let engine_out = engine.peel_with_thresholds(&g, &thresholds);
        let reference = peel_with_thresholds_reference(&g, &thresholds);
        prop_assert_eq!(engine_out.peeled_per_round, reference.peeled_per_round);
        prop_assert_eq!(engine_out.thresholds, reference.thresholds);
        prop_assert_eq!(engine_out.residual, reference.residual);
        prop_assert_eq!(engine.workspace().full_resets(), 0);
    }

    /// Compaction round trip: peeling a graph whose vertices sit at sparse
    /// ids returns rounds on the ORIGINAL ids, identical to the reference.
    #[test]
    fn peeling_on_sparse_ids_matches_reference(g in arb_graph(40, 0.2)) {
        let sparse = spread(&g, 13);
        let schedule = parnas_ron_schedule(g.n(), 2);
        let mut engine = VcEngine::new();
        let engine_out = engine.peel_with_thresholds(&sparse, &schedule);
        let reference = peel_with_thresholds_reference(&sparse, &schedule);
        prop_assert_eq!(engine_out.peeled_per_round, reference.peeled_per_round);
        prop_assert_eq!(engine_out.residual, reference.residual);
    }

    /// Workspace reuse is invisible: running a sequence of peelings (and
    /// other solves) through ONE engine returns exactly what fresh engines
    /// would, with zero O(n) resets — the property that makes the per-thread
    /// engine behind the free functions deterministic.
    #[test]
    fn workspace_reuse_is_invisible(
        graphs in proptest::collection::vec(arb_graph(50, 0.15), 1..6),
    ) {
        let mut engine = VcEngine::new();
        for g in &graphs {
            let schedule = parnas_ron_schedule(g.n(), 2);
            let reused = engine.peel_with_thresholds(g, &schedule);
            let fresh = VcEngine::new().peel_with_thresholds(g, &schedule);
            prop_assert_eq!(reused.peeled_per_round, fresh.peeled_per_round);
            prop_assert_eq!(reused.residual, fresh.residual);
            // Interleave other solvers to dirty the shared scratch.
            let reused_cover = engine.two_approx_cover(g);
            prop_assert_eq!(reused_cover, VcEngine::new().two_approx_cover(g));
            let reused_greedy = engine.greedy_degree_cover(g);
            prop_assert_eq!(reused_greedy, VcEngine::new().greedy_degree_cover(g));
        }
        prop_assert_eq!(engine.workspace().full_resets(), 0);
    }

    /// The stamped 2-approximation equals both endpoints of the greedy
    /// maximal matching (the pre-engine definition).
    #[test]
    fn two_approx_matches_maximal_matching_endpoints(g in arb_graph(80, 0.1)) {
        let cover = two_approx_cover(&g);
        let mut reference = VertexCover::new();
        for e in maximal_matching(&g).edges() {
            reference.insert(e.u);
            reference.insert(e.v);
        }
        prop_assert_eq!(cover, reference);
    }

    /// The compacted heap-based greedy cover equals the pre-engine
    /// implementation vertex for vertex.
    #[test]
    fn greedy_degree_matches_reference(g in arb_graph(70, 0.12)) {
        prop_assert_eq!(greedy_degree_cover(&g), greedy_degree_reference(&g));
    }

    /// The compacted LP solve returns the exact half-integral values of the
    /// full-id-space reference.
    #[test]
    fn lp_matches_reference(g in arb_graph(30, 0.2)) {
        prop_assert_eq!(lp_vertex_cover(&g), lp_reference(&g));
    }

    /// The compacted branch-and-bound returns an optimal cover — and the
    /// exact same cover the pre-engine implementation would pick (the
    /// monotone relabeling preserves every tie-break of the search).
    #[test]
    fn exact_matches_brute_force_and_reference(g in arb_graph(12, 0.3)) {
        let cover = exact_cover_branch_and_bound(&g);
        prop_assert!(cover.covers(&g));
        prop_assert_eq!(cover.len(), brute_force_vc_size(&g));
        prop_assert_eq!(cover, exact_reference(&g));
    }

}

#[test]
fn vc_workspace_runs_zero_o_n_resets_at_scale() {
    // The counter behind the E14 claim: many solves over reused state, zero
    // full clears, with both the pre-screen and the bucket path exercised.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let sparse = graph::gen::er::gnp(20_000, 2e-4, &mut rng);
    let skewed = graph::gen::structured::star_forest(20, 300);
    let mut engine = VcEngine::new();
    for _ in 0..5 {
        let out = engine.peel_with_thresholds(&sparse, &[500, 250, 125]);
        assert_eq!(out.peeled_count(), 0, "sparse piece takes the pre-screen");
        let out = engine.peel_with_thresholds(&skewed, &[150, 75, 20]);
        assert_eq!(out.peeled_count(), 20, "all star centres are peeled");
    }
    assert!(engine.workspace().solves() >= 10);
    assert_eq!(engine.workspace().full_resets(), 0);
}
