//! Vertex-cover algorithms for the coreset reproduction.
//!
//! The vertex-cover coreset of the paper (Theorem 2) outputs a *fixed* vertex
//! set plus a sparse residual subgraph; the coordinator covers the residual
//! union with any 2-approximation. This crate supplies:
//!
//! * [`VertexCover`] — a validated vertex set with coverage checks.
//! * [`approx`] — the matching-based 2-approximation and the greedy
//!   max-degree `O(log n)`-approximation.
//! * [`peeling`] — the Parnas–Ron iterative peeling process the coreset is
//!   built from.
//! * [`exact`] — exact minimum vertex cover: branch-and-bound for small
//!   general graphs and König's theorem (via Hopcroft–Karp) for bipartite
//!   graphs, used as ground truth in the experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod approx;
pub mod cover;
pub mod exact;
pub mod lp;
pub mod peeling;

pub use approx::{greedy_degree_cover, two_approx_cover};
pub use cover::VertexCover;
pub use exact::{exact_cover_branch_and_bound, koenig_cover};
pub use lp::{lp_vertex_cover, HalfIntegralSolution};
pub use peeling::{parnas_ron_peeling, PeelingOutcome};
