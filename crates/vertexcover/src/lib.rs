//! Vertex-cover algorithms for the coreset reproduction.
//!
//! The vertex-cover coreset of the paper (Theorem 2) outputs a *fixed* vertex
//! set plus a sparse residual subgraph; the coordinator covers the residual
//! union with any 2-approximation. This crate supplies:
//!
//! * [`VertexCover`] — a validated vertex set with coverage checks.
//! * [`approx`] — the matching-based 2-approximation and the greedy
//!   max-degree `O(log n)`-approximation.
//! * [`peeling`] — the Parnas–Ron iterative peeling process the coreset is
//!   built from.
//! * [`exact`] — exact minimum vertex cover: branch-and-bound for small
//!   general graphs and König's theorem (via Hopcroft–Karp) for bipartite
//!   graphs, used as ground truth in the experiments.
//! * [`engine`] / [`workspace`] — the reusable [`VcEngine`] every free
//!   function above runs on: vertex compaction, epoch-stamped scratch and
//!   the bucket-queue peeling core (experiment E14, `exp_vc_hotpath`),
//!   mirroring `matching::MatchingEngine` on the matching side.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod approx;
pub mod cover;
pub mod engine;
pub mod exact;
pub mod lp;
pub mod peeling;
pub mod workspace;

pub use approx::{greedy_degree_cover, two_approx_cover, two_approx_cover_concat};
pub use cover::VertexCover;
pub use engine::VcEngine;
pub use exact::{exact_cover_branch_and_bound, koenig_cover};
pub use lp::{lp_vertex_cover, HalfIntegralSolution};
pub use peeling::{parnas_ron_peeling, PeelingOutcome};
pub use workspace::VcWorkspace;
