//! The [`VertexCover`] type: a set of vertices with coverage validation.

use graph::{GraphRef, VertexId};
use std::collections::BTreeSet;

/// A set of vertices intended to cover every edge of some graph.
///
/// Stored as a `BTreeSet` so iteration is in ascending vertex order — cover
/// contents can reach protocol outputs, and the determinism contract
/// (`tests/determinism.rs`) requires every such path to be order-stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VertexCover {
    vertices: BTreeSet<VertexId>,
}

impl VertexCover {
    /// The empty vertex set.
    pub fn new() -> Self {
        VertexCover {
            vertices: BTreeSet::new(),
        }
    }

    /// Builds a cover from an iterator of vertices (duplicates are merged).
    pub fn from_vertices<I: IntoIterator<Item = VertexId>>(iter: I) -> Self {
        VertexCover {
            vertices: iter.into_iter().collect(),
        }
    }

    /// Number of vertices in the cover.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Returns `true` if the cover is empty.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Returns `true` if `v` is in the cover.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// Adds a vertex, returning `true` if it was not already present.
    pub fn insert(&mut self, v: VertexId) -> bool {
        self.vertices.insert(v)
    }

    /// Adds every vertex of `other` into `self`.
    pub fn extend_from(&mut self, other: &VertexCover) {
        self.vertices.extend(other.vertices.iter().copied());
    }

    /// The vertices of the cover in ascending order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices.iter().copied()
    }

    /// The vertices of the cover, sorted (for deterministic reporting).
    pub fn sorted_vertices(&self) -> Vec<VertexId> {
        self.vertices.iter().copied().collect()
    }

    /// Checks that every edge of `g` has at least one endpoint in the cover.
    /// Accepts any [`GraphRef`] (owned graph or zero-copy view).
    pub fn covers<G: GraphRef + ?Sized>(&self, g: &G) -> bool {
        g.edges()
            .iter()
            .all(|e| self.vertices.contains(&e.u) || self.vertices.contains(&e.v))
    }

    /// Returns the edges of `g` *not* covered (useful in failure diagnostics
    /// and in the lower-bound experiments, which count exactly how often the
    /// hidden edge `e*` escapes).
    pub fn uncovered_edges<'a, G: GraphRef + ?Sized>(
        &'a self,
        g: &'a G,
    ) -> impl Iterator<Item = graph::Edge> + 'a {
        g.edges()
            .iter()
            .copied()
            .filter(move |e| !self.vertices.contains(&e.u) && !self.vertices.contains(&e.v))
    }

    /// Unions several covers into one.
    pub fn union(covers: &[&VertexCover]) -> VertexCover {
        let mut out = VertexCover::new();
        for c in covers {
            out.extend_from(c);
        }
        out
    }
}

impl FromIterator<VertexId> for VertexCover {
    fn from_iter<I: IntoIterator<Item = VertexId>>(iter: I) -> Self {
        VertexCover::from_vertices(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::Graph;

    fn path4() -> Graph {
        Graph::from_pairs(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_operations() {
        let mut c = VertexCover::new();
        assert!(c.is_empty());
        assert!(c.insert(3));
        assert!(!c.insert(3));
        assert_eq!(c.len(), 1);
        assert!(c.contains(3));
        assert!(!c.contains(1));
    }

    #[test]
    fn coverage_check() {
        let g = path4();
        let middle = VertexCover::from_vertices(vec![1, 2]);
        assert!(middle.covers(&g));
        let ends = VertexCover::from_vertices(vec![0, 3]);
        assert!(!ends.covers(&g));
        assert_eq!(ends.uncovered_edges(&g).count(), 1);
        assert!(VertexCover::new().covers(&Graph::empty(5)));
    }

    #[test]
    fn union_and_extend() {
        let a = VertexCover::from_vertices(vec![0, 1]);
        let b = VertexCover::from_vertices(vec![1, 2]);
        let u = VertexCover::union(&[&a, &b]);
        assert_eq!(u.len(), 3);
        assert_eq!(u.sorted_vertices(), vec![0, 1, 2]);
    }

    #[test]
    fn from_iterator_dedups() {
        let c: VertexCover = vec![5, 5, 6].into_iter().collect();
        assert_eq!(c.len(), 2);
    }
}
