//! Reusable, epoch-reset scratch state for the vertex-cover solvers.
//!
//! The pre-engine vertex-cover hot path allocated per call and per round:
//! `peel_with_thresholds` copied the edge set into a working buffer, then
//! every threshold round allocated a fresh `vec![0; n]` degree array and
//! rescanned (and `retain`ed) the whole residual buffer — `O(m · rounds)`
//! plus `O(n · rounds)` on the paper's workloads, where `n` is the *global*
//! vertex count even for sparse pieces. `two_approx_cover`,
//! `greedy_degree_cover`, the LP double cover and the branch-and-bound
//! preamble each allocated their own `vec![false; n]` / `vec![0; n]` scratch
//! per call.
//!
//! [`VcWorkspace`] makes all of that state reusable, following the same
//! epoch-stamp technique as `matching::BlossomWorkspace`:
//!
//! * **Scope stamps.** One shared per-vertex `u32` stamp array serves as the
//!   "peeled" / "matched" / "covered" flags of whichever solver is running:
//!   a vertex is flagged iff its stamp equals the current scope epoch, and
//!   starting a new scope bumps the epoch — invalidating every flag in
//!   `O(1)` with zero memory traffic.
//! * **Stamped degree counts.** Residual degrees are counted into a stamped
//!   array (`degree` valid iff `degree_stamp == epoch`), so counting costs
//!   `O(m)` — independent of the global `n` — and simultaneously collects
//!   the non-isolated vertex list.
//! * **Bucket queue.** For the peeling process the non-isolated vertices are
//!   counting-sorted by residual degree into an indexed bucket structure
//!   (`vert` / `pos` / `bin`, the Matula–Beck layout): the vertices of
//!   degree `>= t` are a suffix of `vert`, read off in `O(peeled)`, and
//!   removing a peeled vertex decrements each live neighbour with an `O(1)`
//!   bucket swap. A threshold round therefore costs
//!   `O(vertices peeled + edges removed)` instead of a full residual rescan.
//!
//! **Epoch-reset invariant:** a stamped entry is meaningful iff its stamp
//! equals the current epoch; bumping the epoch invalidates all entries in
//! `O(1)`. The only `O(total capacity)` write is a full stamp clear when the
//! `u32` epoch wraps after 2³² scopes — counted in
//! [`VcWorkspace::full_resets`] and asserted zero by the unit tests, the
//! engine-equivalence proptests, and experiment E14.

use graph::VertexId;
use std::collections::BinaryHeap;

/// Reusable vertex-cover scratch: scope stamps, stamped degree counts and the
/// bucket-queue peeling structure.
///
/// See the [module docs](self) for the invariants. Obtain one via
/// [`VcWorkspace::new`] or let [`VcEngine`](crate::engine::VcEngine) manage
/// it; the free functions in [`crate::peeling`], [`crate::approx`],
/// [`crate::lp`] and [`crate::exact`] run on a per-thread engine.
#[derive(Debug, Clone)]
pub struct VcWorkspace {
    epoch: u32,
    /// Scope flags (`stamp[v] == epoch` ⇒ flagged in the current scope).
    stamp: Vec<u32>,
    /// Stamped residual degrees (`degree[v]` valid iff
    /// `degree_stamp[v] == epoch`).
    degree: Vec<u32>,
    degree_stamp: Vec<u32>,
    /// Non-isolated vertices of the current solve, in first-touch order.
    pub(crate) active: Vec<VertexId>,
    /// Bucket queue: vertices sorted by residual degree…
    pub(crate) vert: Vec<VertexId>,
    /// …the position of each active vertex in `vert`…
    pos: Vec<u32>,
    /// …and `bin[d]` = index in `vert` of the first vertex of degree `>= d`.
    pub(crate) bin: Vec<u32>,
    /// Per-round peel scratch (the round's peel set, sorted before output).
    pub(crate) round: Vec<VertexId>,
    /// Lazy-deletion heap reused by `greedy_degree_cover`.
    pub(crate) heap: BinaryHeap<(usize, VertexId)>,
    solves: u64,
    full_resets: u64,
}

impl Default for VcWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl VcWorkspace {
    /// Creates an empty workspace; arrays grow to the largest graph solved.
    pub fn new() -> Self {
        VcWorkspace {
            // Stamps start at 0 and the epoch at 1, so freshly grown (zeroed)
            // array tails always read as "stale".
            epoch: 1,
            stamp: Vec::new(),
            degree: Vec::new(),
            degree_stamp: Vec::new(),
            active: Vec::new(),
            vert: Vec::new(),
            pos: Vec::new(),
            bin: Vec::new(),
            round: Vec::new(),
            heap: BinaryHeap::new(),
            solves: 0,
            full_resets: 0,
        }
    }

    /// Number of solver scopes opened through this workspace (lifetime).
    #[inline]
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Number of `O(capacity)` stamp clears ever performed. Stays 0 in
    /// practice: a full reset only happens when the `u32` epoch counter wraps
    /// after 2³² scopes. The unit tests, the engine-equivalence proptests and
    /// experiment E14 assert this counter, pinning the "zero per-round
    /// `O(n)` resets" claim.
    #[inline]
    pub fn full_resets(&self) -> u64 {
        self.full_resets
    }

    /// Opens a new solver scope over vertex ids `0..n`: grows the stamp
    /// arrays if needed and bumps the epoch, lazily invalidating every flag
    /// and stamped degree.
    pub(crate) fn begin_scope(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.degree.resize(n, 0);
            self.degree_stamp.resize(n, 0);
            self.pos.resize(n, 0);
        }
        self.solves += 1;
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                for s in self.stamp.iter_mut().chain(self.degree_stamp.iter_mut()) {
                    *s = 0;
                }
                self.full_resets += 1;
                1
            }
        };
        self.active.clear();
    }

    /// Returns `true` if `v` is flagged in the current scope.
    #[inline]
    pub(crate) fn is_flagged(&self, v: VertexId) -> bool {
        self.stamp[v as usize] == self.epoch
    }

    /// Flags `v` in the current scope (peeled / matched / covered).
    #[inline]
    pub(crate) fn flag(&mut self, v: VertexId) {
        self.stamp[v as usize] = self.epoch;
    }

    /// Counts one more incident edge on `v`, registering `v` as active on
    /// first touch. Returns the new degree so callers can track the maximum
    /// inline (no separate pass over the active list).
    #[inline]
    pub(crate) fn bump_degree(&mut self, v: VertexId) -> u32 {
        if self.degree_stamp[v as usize] == self.epoch {
            self.degree[v as usize] += 1;
        } else {
            self.degree_stamp[v as usize] = self.epoch;
            self.degree[v as usize] = 1;
            self.active.push(v);
        }
        self.degree[v as usize]
    }

    /// The residual degree of an active vertex (0 for untouched ids).
    #[inline]
    pub(crate) fn degree_of(&self, v: VertexId) -> u32 {
        if self.degree_stamp[v as usize] == self.epoch {
            self.degree[v as usize]
        } else {
            0
        }
    }

    /// Sets the degree of `v` directly, registering it as active on first
    /// touch (used when degrees come from a CSR rather than an edge scan).
    #[inline]
    pub(crate) fn set_degree(&mut self, v: VertexId, d: u32) {
        if self.degree_stamp[v as usize] != self.epoch {
            self.degree_stamp[v as usize] = self.epoch;
            self.active.push(v);
        }
        self.degree[v as usize] = d;
    }

    /// Decrements the degree of an active vertex *without* touching the
    /// bucket queue (for the heap-based greedy cover). Returns the new value.
    #[inline]
    pub(crate) fn dec_degree(&mut self, v: VertexId) -> u32 {
        debug_assert!(self.degree_stamp[v as usize] == self.epoch);
        self.degree[v as usize] -= 1;
        self.degree[v as usize]
    }

    /// Builds the bucket queue over the current `active` list: counting-sorts
    /// the vertices by degree into `vert`/`pos` and fills the `bin`
    /// boundaries for degrees `0 ..= max_degree + 1`. `O(active + max_degree)`.
    pub(crate) fn build_buckets(&mut self, max_degree: usize) {
        self.bin.clear();
        self.bin.resize(max_degree + 2, 0);
        for &v in &self.active {
            self.bin[self.degree[v as usize] as usize + 1] += 1;
        }
        for d in 0..=max_degree {
            self.bin[d + 1] += self.bin[d];
        }
        // `bin` now holds the start index of every degree block; place the
        // vertices using `bin` itself as the cursor (each `bin[d]` ends up at
        // the start of block `d + 1`), then shift it back by one block.
        self.vert.clear();
        self.vert.resize(self.active.len(), 0);
        for i in 0..self.active.len() {
            let v = self.active[i];
            let d = self.degree[v as usize] as usize;
            let slot = self.bin[d];
            self.bin[d] += 1;
            self.vert[slot as usize] = v;
            self.pos[v as usize] = slot;
        }
        for d in (1..=max_degree + 1).rev() {
            self.bin[d] = self.bin[d - 1];
        }
        self.bin[0] = 0;
    }

    /// Decrements the residual degree of live vertex `w` by one, keeping the
    /// bucket queue sorted with the standard `O(1)` boundary swap.
    #[inline]
    pub(crate) fn decrement(&mut self, w: VertexId) {
        let d = self.degree[w as usize] as usize;
        debug_assert!(d >= 1, "cannot decrement a zero-degree vertex");
        let p = self.pos[w as usize] as usize;
        let s = self.bin[d] as usize;
        // Swap `w` with the first vertex of its degree block, then shrink
        // the block from the left: `w` now lives in the (d-1)-block.
        let other = self.vert[s];
        self.vert.swap(p, s);
        self.pos[other as usize] = p as u32;
        self.pos[w as usize] = s as u32;
        self.bin[d] += 1;
        self.degree[w as usize] = (d - 1) as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_bump_invalidates_flags_and_degrees() {
        let mut ws = VcWorkspace::new();
        ws.begin_scope(5);
        ws.flag(2);
        ws.bump_degree(3);
        ws.bump_degree(3);
        assert!(ws.is_flagged(2));
        assert_eq!(ws.degree_of(3), 2);
        assert_eq!(ws.active, vec![3]);
        ws.begin_scope(5);
        assert!(!ws.is_flagged(2));
        assert_eq!(ws.degree_of(3), 0);
        assert!(ws.active.is_empty());
        assert_eq!(ws.full_resets(), 0);
        assert_eq!(ws.solves(), 2);
    }

    #[test]
    fn buckets_sort_by_degree_and_decrement_in_place() {
        let mut ws = VcWorkspace::new();
        ws.begin_scope(4);
        // Degrees: v0 = 1, v1 = 3, v2 = 2, v3 = 2.
        for (v, d) in [(0u32, 1), (1, 3), (2, 2), (3, 2)] {
            for _ in 0..d {
                ws.bump_degree(v);
            }
        }
        ws.build_buckets(3);
        // vert is sorted ascending by degree.
        let degs: Vec<u32> = ws.vert.iter().map(|&v| ws.degree_of(v)).collect();
        assert_eq!(degs, vec![1, 2, 2, 3]);
        // Vertices with degree >= 2 are the suffix starting at bin[2].
        assert_eq!(ws.bin[2], 1);
        assert_eq!(ws.bin[3], 3);
        // Decrement v1 (3 -> 2): stays within the live region, sorted.
        ws.decrement(1);
        assert_eq!(ws.degree_of(1), 2);
        let degs: Vec<u32> = ws.vert.iter().map(|&v| ws.degree_of(v)).collect();
        assert_eq!(degs, vec![1, 2, 2, 2]);
        // pos stays consistent with vert.
        for (i, &v) in ws.vert.iter().enumerate() {
            assert_eq!(ws.pos[v as usize] as usize, i);
        }
    }

    #[test]
    fn growing_capacity_keeps_stale_semantics() {
        let mut ws = VcWorkspace::new();
        ws.begin_scope(2);
        ws.flag(1);
        ws.begin_scope(10);
        assert!(!ws.is_flagged(1));
        assert!(!ws.is_flagged(9));
        assert_eq!(ws.degree_of(9), 0);
    }
}
