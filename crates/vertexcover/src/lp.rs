//! The half-integral LP relaxation of vertex cover, solved combinatorially.
//!
//! The linear-programming relaxation of minimum vertex cover always has an
//! optimal solution with values in `{0, 1/2, 1}` (Nemhauser–Trotter), and that
//! solution can be computed exactly with one bipartite matching on the
//! *double cover* of the graph: make two copies `v_L, v_R` of every vertex,
//! connect `u_L — v_R` and `v_L — u_R` for every edge `(u, v)`, take a minimum
//! vertex cover of this bipartite graph via König's theorem, and set
//! `x_v = (|{v_L, v_R} ∩ C|) / 2`.
//!
//! The rounded set `{v : x_v >= 1/2}` is the classic LP-based 2-approximation,
//! and the LP value `Σ x_v` is a lower bound on the optimum that the
//! experiments use as a tighter reference than the matching bound on
//! non-bipartite inputs.

use crate::cover::VertexCover;
use crate::engine::with_thread_engine;
use graph::{GraphRef, VertexId};

/// The half-integral optimum of the vertex-cover LP.
#[derive(Debug, Clone, PartialEq)]
pub struct HalfIntegralSolution {
    /// Per-vertex value, each 0.0, 0.5 or 1.0.
    pub values: Vec<f64>,
}

impl HalfIntegralSolution {
    /// The LP objective value `Σ x_v` — a lower bound on the minimum vertex
    /// cover size.
    pub fn objective(&self) -> f64 {
        self.values.iter().sum()
    }

    /// The standard rounding: every vertex with `x_v >= 1/2`.
    /// This is a feasible vertex cover of size at most `2 * objective()`,
    /// hence a 2-approximation.
    pub fn rounded_cover(&self) -> VertexCover {
        VertexCover::from_vertices(
            self.values
                .iter()
                .enumerate()
                .filter(|(_, &x)| x >= 0.5)
                .map(|(v, _)| v as VertexId),
        )
    }
}

/// Solves the vertex-cover LP relaxation exactly (half-integral optimum) via
/// König's theorem on the bipartite double cover.
///
/// Runs on the calling thread's reusable [`VcEngine`](crate::engine::VcEngine):
/// the double cover is built over the *compacted* vertex set (isolated
/// vertices have `x_v = 0` in every optimal half-integral solution, so they
/// are relabeled away before the matching and filled back in afterwards).
pub fn lp_vertex_cover<G: GraphRef + ?Sized>(g: &G) -> HalfIntegralSolution {
    with_thread_engine(|engine| engine.lp_vertex_cover(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_cover_branch_and_bound;
    use graph::gen::er::gnp;
    use graph::gen::structured::{complete, cycle, path, star};
    use graph::Graph;
    use matching::maximum::maximum_matching;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn lp_values_are_half_integral_and_feasible() {
        for seed in 0..10 {
            let g = gnp(40, 0.1, &mut rng(seed));
            let sol = lp_vertex_cover(&g);
            for &x in &sol.values {
                assert!(
                    x == 0.0 || x == 0.5 || x == 1.0,
                    "value {x} is not half-integral"
                );
            }
            // LP feasibility: x_u + x_v >= 1 for every edge.
            for e in g.edges() {
                assert!(
                    sol.values[e.u as usize] + sol.values[e.v as usize] >= 1.0 - 1e-9,
                    "edge {e:?} violated"
                );
            }
            // Rounded cover is feasible.
            assert!(sol.rounded_cover().covers(&g));
        }
    }

    #[test]
    fn lp_is_sandwiched_between_matching_and_exact_cover() {
        for seed in 0..10 {
            let g = gnp(13, 0.3, &mut rng(100 + seed));
            let sol = lp_vertex_cover(&g);
            let lp = sol.objective();
            let mm = maximum_matching(&g).len() as f64;
            let opt = exact_cover_branch_and_bound(&g).len() as f64;
            assert!(
                lp >= mm - 1e-9,
                "LP ({lp}) must dominate the matching bound ({mm})"
            );
            assert!(
                lp <= opt + 1e-9,
                "LP ({lp}) cannot exceed the integral optimum ({opt})"
            );
            let rounded = sol.rounded_cover();
            assert!(rounded.len() as f64 <= 2.0 * opt + 1e-9);
        }
    }

    #[test]
    fn structured_graphs_have_known_lp_values() {
        // Path on 2 vertices (one edge): LP = 1 (take one endpoint or halves).
        assert!((lp_vertex_cover(&path(2)).objective() - 1.0).abs() < 1e-9);
        // Star: LP = 1 (centre at value 1).
        assert!((lp_vertex_cover(&star(6)).objective() - 1.0).abs() < 1e-9);
        // Odd cycle C5: LP = 2.5 (all halves), integral optimum 3.
        assert!((lp_vertex_cover(&cycle(5)).objective() - 2.5).abs() < 1e-9);
        // Complete graph K4: LP = 2 (all halves), integral optimum 3.
        assert!((lp_vertex_cover(&complete(4)).objective() - 2.0).abs() < 1e-9);
        // Even cycle C6: LP = 3 = integral optimum.
        assert!((lp_vertex_cover(&cycle(6)).objective() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_has_zero_lp() {
        let sol = lp_vertex_cover(&Graph::empty(5));
        assert_eq!(sol.objective(), 0.0);
        assert!(sol.rounded_cover().is_empty());
    }
}
