//! The vertex-cover engine: compaction + bucket-queue peeling + epoch-reset
//! scratch, mirroring [`matching::MatchingEngine`]'s role on the matching
//! side.
//!
//! [`VcEngine`] is the solve path behind every free function in this crate
//! ([`crate::peeling`], [`crate::approx`], [`crate::lp`], [`crate::exact`])
//! and therefore behind the vertex-cover half of every protocol run. One
//! engine owns two reusable pieces of state:
//!
//! * a [`graph::VertexCompactor`] that relabels inputs onto their
//!   non-isolated vertices (monotonically, so orderings survive) before the
//!   structure-building solvers run, and
//! * a [`VcWorkspace`] whose epoch-stamped flags, stamped degree counts and
//!   bucket queue replace every per-call `vec![false; n]` / `vec![0; n]`
//!   allocation of the pre-engine path.
//!
//! The peeling core ([`VcEngine::peel_with_thresholds`]) is where the
//! asymptotics change. The old path rescanned and `retain`ed the full
//! residual edge buffer every threshold round — `O(m · rounds)` plus a fresh
//! `O(n)` degree array per round. The engine runs peeling in two regimes:
//!
//! * **Pre-screen.** Degrees are counted once into the stamped workspace
//!   (`O(m)`, no `O(n)` pass). If the maximum degree is below every
//!   threshold — the common case for sparse pieces of a random `k`-partition,
//!   whose thresholds start at `n/(4k)` — no round can peel anything and the
//!   outcome is produced with **no further work**: empty rounds plus the
//!   input edge list as the residual.
//! * **Bucket-queue rounds.** Otherwise the piece is compacted, one CSR is
//!   built over the live vertices, and the degrees are counting-sorted into
//!   the workspace's bucket queue. The vertices of degree `>= t` are a
//!   suffix of the degree-sorted array (read off in `O(peeled)`), and
//!   removing a peeled vertex decrements each live neighbour with an `O(1)`
//!   bucket swap — so a round costs `O(vertices peeled + edges removed)`,
//!   and rounds that peel nothing cost `O(1)`.
//!
//! Outputs are **identical** to the pre-engine path, round by round
//! (`tests/engine_equivalence.rs` pins this against
//! [`crate::peeling::peel_with_thresholds_reference`], and experiment E14
//! re-asserts it at scale), and independent of workspace history — the epoch
//! stamps make stale state invisible, so the per-thread engine reuse behind
//! the free functions never affects determinism.

use crate::cover::VertexCover;
use crate::exact::branch_and_bound_on_lists;
use crate::lp::HalfIntegralSolution;
use crate::peeling::PeelingOutcome;
use crate::workspace::VcWorkspace;
use graph::{BipartiteGraph, Csr, Edge, Graph, GraphRef, VertexCompactor, VertexId};
use std::cell::RefCell;

/// A reusable vertex-cover solver: compaction scratch + epoch-reset workspace
/// + bucket-queue peeling, allocated once and reused across solves.
///
/// See the [module docs](self) for the solve pipeline. Construct one per
/// long-lived worker, or use the thread-local engine behind the free
/// functions ([`crate::peeling::peel_with_thresholds`],
/// [`crate::approx::two_approx_cover`], …).
#[derive(Debug, Clone, Default)]
pub struct VcEngine {
    compactor: VertexCompactor,
    workspace: VcWorkspace,
}

impl VcEngine {
    /// Creates an engine with empty (lazily grown) buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the workspace (solve / full-reset counters).
    pub fn workspace(&self) -> &VcWorkspace {
        &self.workspace
    }

    /// Runs the iterative peeling process on `g` (see
    /// [`crate::peeling::peel_with_thresholds`] for the semantics). Output is
    /// identical to the reference implementation, round by round, and
    /// independent of the engine's history.
    pub fn peel_with_thresholds<G: GraphRef + ?Sized>(
        &mut self,
        g: &G,
        thresholds: &[usize],
    ) -> PeelingOutcome {
        let n = g.n();
        let edges = g.edges();
        let rounds = thresholds.iter().filter(|&&t| t > 0).count();
        let mut peeled_per_round: Vec<Vec<VertexId>> = Vec::with_capacity(rounds);
        let mut used_thresholds: Vec<usize> = Vec::with_capacity(rounds);

        // Pre-screen: count degrees once (O(m), stamped — no O(n) pass) and
        // find the maximum. If no vertex reaches the smallest threshold,
        // degrees can only decrease from here, so every round peels nothing.
        self.workspace.begin_scope(n);
        let mut max_degree = 0u32;
        for e in edges {
            max_degree = max_degree
                .max(self.workspace.bump_degree(e.u))
                .max(self.workspace.bump_degree(e.v));
        }
        let max_degree = max_degree as usize;
        let min_threshold = thresholds.iter().copied().filter(|&t| t > 0).min();
        let peels_nothing = !matches!(min_threshold, Some(t) if t <= max_degree);
        if peels_nothing {
            for &t in thresholds {
                if t > 0 {
                    // Empty round marker: `Vec::new` performs no heap allocation.
                    peeled_per_round.push(Vec::new()); // xtask: allow(hot-path-alloc)
                    used_thresholds.push(t);
                }
            }
            return PeelingOutcome {
                peeled_per_round,
                thresholds: used_thresholds,
                // The residual graph is part of the output contract.
                residual: Graph::from_edges_unchecked(n, edges.to_vec()), // xtask: allow(hot-path-alloc)
            };
        }

        // Bucket-queue rounds: compact onto the live vertices, build one CSR,
        // counting-sort the degrees into the bucket queue.
        let VcEngine {
            compactor,
            workspace: ws,
        } = self;
        compactor.compact(g);
        let n_local = compactor.n_local();
        let adj = Csr::from_edges(n_local, compactor.local_edges());
        ws.begin_scope(n_local);
        for v in 0..n_local as VertexId {
            ws.set_degree(v, adj.degree(v) as u32);
        }
        ws.build_buckets(max_degree);
        let mut live_end = n_local;

        let mut round = std::mem::take(&mut ws.round);
        for &t in thresholds {
            if t == 0 {
                continue;
            }
            // Vertices of residual degree >= t are exactly the suffix of the
            // degree-sorted live region starting at bin[t]; thresholds above
            // the current maximum clamp to an empty suffix.
            let start = ws
                .bin
                .get(t)
                .map_or(live_end, |&b| (b as usize).min(live_end));
            if start == live_end {
                // Empty round marker: `Vec::new` performs no heap allocation.
                peeled_per_round.push(Vec::new()); // xtask: allow(hot-path-alloc)
                used_thresholds.push(t);
                continue;
            }
            round.clear();
            round.extend_from_slice(&ws.vert[start..live_end]);
            // Simultaneous semantics: the whole round is decided against the
            // round-start degrees, then removed together.
            for &v in &round {
                ws.flag(v);
            }
            for &v in &round {
                for &w in adj.neighbors(v) {
                    if !ws.is_flagged(w) {
                        ws.decrement(w);
                    }
                }
            }
            live_end = start;
            let mut peeled: Vec<VertexId> = round.iter().map(|&v| compactor.orig_of(v)).collect();
            // The relabeling is monotone, so sorting after mapping equals the
            // reference's ascending-id round order.
            peeled.sort_unstable();
            peeled_per_round.push(peeled);
            used_thresholds.push(t);
        }
        ws.round = round;

        // The compacted edge list is index-aligned with the input edge list,
        // so the residual (with original ids, in input order) is one filter
        // pass — the only edge buffer the whole solve writes.
        let residual: Vec<Edge> = compactor
            .local_edges()
            .iter()
            .zip(edges)
            .filter(|(le, _)| !ws.is_flagged(le.u) && !ws.is_flagged(le.v))
            .map(|(_, oe)| *oe)
            .collect();
        PeelingOutcome {
            peeled_per_round,
            thresholds: used_thresholds,
            residual: Graph::from_edges_unchecked(n, residual),
        }
    }

    /// The classic Parnas–Ron schedule (see
    /// [`crate::peeling::parnas_ron_peeling`]).
    pub fn parnas_ron_peeling<G: GraphRef + ?Sized>(
        &mut self,
        g: &G,
        stop_at: usize,
    ) -> PeelingOutcome {
        let schedule = crate::peeling::parnas_ron_schedule(g.n(), stop_at);
        self.peel_with_thresholds(g, &schedule)
    }

    /// 2-approximate vertex cover: both endpoints of the greedy maximal
    /// matching over `g`'s edges in input order (see
    /// [`crate::approx::two_approx_cover`]). One stamped `O(m)` scan, no
    /// per-call allocation beyond the output.
    pub fn two_approx_cover<G: GraphRef + ?Sized>(&mut self, g: &G) -> VertexCover {
        self.two_approx_concat(g.n(), std::iter::once(g.edges()))
    }

    /// 2-approximate vertex cover of the graph formed by concatenating the
    /// given edge slices (in order) over vertex ids `0..n`.
    ///
    /// This is the coordinator's composition primitive: the union of the
    /// residual subgraphs is never materialized — the greedy maximal
    /// matching scans the slices in sequence, and duplicate edges across
    /// slices are harmless no-ops (their endpoints are already matched when
    /// the duplicate arrives), so the output equals
    /// [`Self::two_approx_cover`] on the deduplicated union graph.
    pub fn two_approx_concat<'a>(
        &mut self,
        n: usize,
        slices: impl IntoIterator<Item = &'a [Edge]>,
    ) -> VertexCover {
        let ws = &mut self.workspace;
        ws.begin_scope(n);
        let mut cover = VertexCover::new();
        for slice in slices {
            for e in slice {
                if !ws.is_flagged(e.u) && !ws.is_flagged(e.v) {
                    ws.flag(e.u);
                    ws.flag(e.v);
                    cover.insert(e.u);
                    cover.insert(e.v);
                }
            }
        }
        cover
    }

    /// Greedy maximum-degree vertex cover (see
    /// [`crate::approx::greedy_degree_cover`]): lazy-deletion heap over the
    /// compacted CSR, with the workspace providing the degree array, the
    /// covered flags and the reused heap.
    pub fn greedy_degree_cover<G: GraphRef + ?Sized>(&mut self, g: &G) -> VertexCover {
        if g.is_empty() {
            return VertexCover::new();
        }
        let VcEngine {
            compactor,
            workspace: ws,
        } = self;
        compactor.compact(g);
        let n_local = compactor.n_local();
        let adj = Csr::from_edges(n_local, compactor.local_edges());
        ws.begin_scope(n_local);
        ws.heap.clear();
        for v in 0..n_local as VertexId {
            // Compaction keeps only non-isolated vertices, so every degree is
            // positive and belongs in the heap.
            ws.set_degree(v, adj.degree(v) as u32);
            ws.heap.push((adj.degree(v), v));
        }
        let mut uncovered_edges = compactor.local_edges().len();
        let mut cover = VertexCover::new();
        while uncovered_edges > 0 {
            let (claimed_degree, v) = ws
                .heap
                .pop()
                .expect("uncovered edges remain so the heap is non-empty");
            if ws.is_flagged(v) || claimed_degree != ws.degree_of(v) as usize {
                continue; // stale entry
            }
            if ws.degree_of(v) == 0 {
                continue;
            }
            cover.insert(compactor.orig_of(v));
            ws.flag(v);
            for &w in adj.neighbors(v) {
                if !ws.is_flagged(w) {
                    uncovered_edges -= 1;
                    let d = ws.dec_degree(w);
                    if d > 0 {
                        ws.heap.push((d as usize, w));
                    }
                }
            }
            ws.set_degree(v, 0);
        }
        cover
    }

    /// Half-integral vertex-cover LP optimum (see
    /// [`crate::lp::lp_vertex_cover`]): König on the bipartite double cover
    /// of the *compacted* graph, expanded back to original ids.
    pub fn lp_vertex_cover<G: GraphRef + ?Sized>(&mut self, g: &G) -> HalfIntegralSolution {
        self.compactor.compact(g);
        let n_local = self.compactor.n_local();
        let pairs = self
            .compactor
            .local_edges()
            .iter()
            .flat_map(|e| [(e.u, e.v), (e.v, e.u)]);
        let double = BipartiteGraph::from_pairs(n_local, n_local, pairs)
            .expect("double-cover ids are in range by construction");
        let cover = crate::exact::koenig_cover(&double);

        let mut values = vec![0.0f64; g.n()];
        for v in cover.vertices() {
            let local = if (v as usize) < n_local {
                v as usize
            } else {
                v as usize - n_local
            };
            values[self.compactor.orig_of(local as VertexId) as usize] += 0.5;
        }
        HalfIntegralSolution { values }
    }

    /// Exact minimum vertex cover by branch and bound (see
    /// [`crate::exact::exact_cover_branch_and_bound`]): the kernelization
    /// preamble builds its editable adjacency lists over the compacted
    /// vertices only.
    pub fn exact_cover<G: GraphRef + ?Sized>(&mut self, g: &G) -> VertexCover {
        self.compactor.compact(g);
        let n_local = self.compactor.n_local();
        let mut neighbors: Vec<Vec<VertexId>> = vec![Vec::new(); n_local];
        for e in self.compactor.local_edges() {
            neighbors[e.u as usize].push(e.v);
            neighbors[e.v as usize].push(e.u);
        }
        for list in &mut neighbors {
            list.sort_unstable();
        }
        let best = branch_and_bound_on_lists(&mut neighbors);
        VertexCover::from_vertices(best.into_iter().map(|v| self.compactor.orig_of(v)))
    }
}

thread_local! {
    static THREAD_ENGINE: RefCell<VcEngine> = RefCell::new(VcEngine::new());
}

/// Runs `f` on the calling thread's reusable engine (falling back to a fresh
/// engine in the re-entrant case, which keeps the API panic-free).
pub(crate) fn with_thread_engine<T>(f: impl FnOnce(&mut VcEngine) -> T) -> T {
    THREAD_ENGINE.with(|cell| match cell.try_borrow_mut() {
        Ok(mut engine) => f(&mut engine),
        Err(_) => f(&mut VcEngine::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen::er::gnp;
    use graph::gen::structured::{star, star_forest};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn engine_peeling_matches_reference_across_reuse() {
        let mut engine = VcEngine::new();
        for seed in 0..10 {
            let g = gnp(80, 0.12, &mut rng(seed));
            let reference = crate::peeling::peel_with_thresholds_reference(&g, &[20, 9, 4, 2]);
            let engine_out = engine.peel_with_thresholds(&g, &[20, 9, 4, 2]);
            assert_eq!(engine_out.peeled_per_round, reference.peeled_per_round);
            assert_eq!(engine_out.thresholds, reference.thresholds);
            assert_eq!(engine_out.residual, reference.residual);
        }
        assert_eq!(engine.workspace().full_resets(), 0);
    }

    #[test]
    fn bucket_rounds_fire_on_stars_and_fast_path_on_sparse() {
        let mut engine = VcEngine::new();
        // Star: the centre is peeled through the bucket path.
        let g = star(100);
        let out = engine.peel_with_thresholds(&g, &[50, 10]);
        assert_eq!(out.peeled_per_round[0], vec![0]);
        assert!(out.residual.is_empty());
        // Sparse piece: thresholds above the max degree take the pre-screen
        // path and forward everything.
        let g = gnp(500, 0.004, &mut rng(7));
        let out = engine.peel_with_thresholds(&g, &[100, 50]);
        assert_eq!(out.peeled_per_round, vec![Vec::<u32>::new(); 2]);
        assert_eq!(out.residual.edges(), g.edges());
    }

    #[test]
    fn two_approx_concat_equals_two_approx_on_union() {
        let mut engine = VcEngine::new();
        let a = gnp(60, 0.05, &mut rng(1));
        let b = gnp(60, 0.05, &mut rng(2));
        let union = Graph::union(&[&a, &b]);
        let on_union = engine.two_approx_cover(&union);
        let concat = engine.two_approx_concat(60, [a.edges(), b.edges()]);
        assert_eq!(on_union, concat);
        assert!(concat.covers(&union));
    }

    #[test]
    fn greedy_degree_is_optimal_on_star_forests() {
        let mut engine = VcEngine::new();
        let g = star_forest(4, 30);
        let cover = engine.greedy_degree_cover(&g);
        assert_eq!(cover.len(), 4);
        assert!(cover.covers(&g));
    }

    #[test]
    fn empty_graph_is_a_no_op_everywhere() {
        let mut engine = VcEngine::new();
        let g = Graph::empty(9);
        assert_eq!(engine.peel_with_thresholds(&g, &[3, 1]).peeled_count(), 0);
        assert!(engine.two_approx_cover(&g).is_empty());
        assert!(engine.greedy_degree_cover(&g).is_empty());
        assert_eq!(engine.lp_vertex_cover(&g).objective(), 0.0);
        assert!(engine.exact_cover(&g).is_empty());
    }
}
