//! Exact minimum vertex cover.
//!
//! Two exact routines back the experiments' ground truth:
//!
//! * [`exact_cover_branch_and_bound`] — branch-and-bound with degree-1 /
//!   degree-0 reductions, practical for graphs whose cover has a few dozen
//!   vertices; used to validate approximation ratios on small instances.
//! * [`koenig_cover`] — König's theorem for bipartite graphs: a minimum vertex
//!   cover of the same size as the maximum matching, extracted from the
//!   Hopcroft–Karp output via alternating reachability. This scales to the
//!   large bipartite instances (all of the paper's hard distributions).

use crate::cover::VertexCover;
use crate::engine::with_thread_engine;
use graph::{BipartiteGraph, GraphRef, VertexId};
use matching::hopcroft_karp::hopcroft_karp;
use std::collections::VecDeque;

/// Exact minimum vertex cover by branch and bound.
///
/// Intended for small instances (tests and ratio measurements); the search
/// applies standard reductions — isolated vertices are ignored and a vertex
/// adjacent to a degree-1 vertex is always taken — and branches on a
/// maximum-degree vertex (`take it` vs `take its whole neighbourhood`).
///
/// Runs on the calling thread's reusable [`VcEngine`](crate::engine::VcEngine):
/// the kernelization preamble builds its editable adjacency lists over the
/// *compacted* (non-isolated) vertices only, so the per-call setup scales
/// with the live vertex count rather than the full id space.
pub fn exact_cover_branch_and_bound<G: GraphRef + ?Sized>(g: &G) -> VertexCover {
    with_thread_engine(|engine| engine.exact_cover(g))
}

/// The branch-and-bound search over editable adjacency lists (local ids).
/// Shared by the engine; the lists are restored to their input state before
/// returning.
pub(crate) fn branch_and_bound_on_lists(neighbors: &mut Vec<Vec<VertexId>>) -> Vec<VertexId> {
    let mut best: Option<Vec<VertexId>> = None;
    let mut current: Vec<VertexId> = Vec::new();
    branch(neighbors, &mut current, &mut best);
    best.unwrap_or_default()
}

/// Undo information for one `take_vertex` call: for each touched vertex, its
/// neighbour list before the call.
type UndoLog = Vec<(VertexId, Vec<VertexId>)>;

fn branch(
    neighbors: &mut Vec<Vec<VertexId>>,
    current: &mut Vec<VertexId>,
    best: &mut Option<Vec<VertexId>>,
) {
    // Prune by current best.
    if let Some(b) = best {
        if current.len() >= b.len() {
            return;
        }
    }

    // Reduction: repeatedly take the neighbour of any degree-1 vertex.
    let mut reduced: Vec<(VertexId, UndoLog)> = Vec::new();
    loop {
        let mut applied = false;
        for v in 0..neighbors.len() {
            if neighbors[v].len() == 1 {
                let w = neighbors[v][0];
                let removed = take_vertex(neighbors, w);
                current.push(w);
                reduced.push((w, removed));
                applied = true;
                break;
            }
        }
        if !applied {
            break;
        }
        if let Some(b) = best {
            if current.len() >= b.len() {
                // Undo reductions and bail.
                for (w, removed) in reduced.into_iter().rev() {
                    current.pop();
                    undo_take(neighbors, w, removed);
                }
                return;
            }
        }
    }

    // Find a maximum-degree vertex to branch on.
    let pivot = (0..neighbors.len())
        .max_by_key(|&v| neighbors[v].len())
        .filter(|&v| !neighbors[v].is_empty());

    match pivot {
        None => {
            // No edges remain: current is a cover.
            if best.as_ref().is_none_or(|b| current.len() < b.len()) {
                *best = Some(current.clone());
            }
        }
        Some(v) => {
            let v = v as VertexId;
            // Branch 1: take v.
            let removed = take_vertex(neighbors, v);
            current.push(v);
            branch(neighbors, current, best);
            current.pop();
            undo_take(neighbors, v, removed);

            // Branch 2: exclude v, therefore take all of N(v).
            let nbrs = neighbors[v as usize].clone();
            let mut undo_stack = Vec::with_capacity(nbrs.len());
            for &w in &nbrs {
                undo_stack.push((w, take_vertex(neighbors, w)));
                current.push(w);
            }
            branch(neighbors, current, best);
            for _ in &nbrs {
                current.pop();
            }
            for (w, removed) in undo_stack.into_iter().rev() {
                undo_take(neighbors, w, removed);
            }
        }
    }

    // Undo degree-1 reductions.
    for (w, removed) in reduced.into_iter().rev() {
        current.pop();
        undo_take(neighbors, w, removed);
    }
}

/// Removes `v` from the graph (all incident edges); returns the list of
/// (neighbour, position-restoring payload) needed to undo.
fn take_vertex(neighbors: &mut [Vec<VertexId>], v: VertexId) -> Vec<(VertexId, Vec<VertexId>)> {
    let mine = std::mem::take(&mut neighbors[v as usize]);
    let mut removed = Vec::with_capacity(mine.len() + 1);
    for &w in &mine {
        let old = neighbors[w as usize].clone();
        neighbors[w as usize].retain(|&x| x != v);
        removed.push((w, old));
    }
    removed.push((v, mine));
    removed
}

fn undo_take(
    neighbors: &mut [Vec<VertexId>],
    v: VertexId,
    removed: Vec<(VertexId, Vec<VertexId>)>,
) {
    for (w, old) in removed {
        if w == v {
            neighbors[v as usize] = old;
        } else {
            neighbors[w as usize] = old;
        }
    }
}

/// Minimum vertex cover of a bipartite graph via König's theorem.
///
/// Computes a maximum matching with Hopcroft–Karp, runs the alternating-path
/// reachability from unmatched left vertices, and returns
/// `(L \ Z) ∪ (R ∩ Z)` where `Z` is the reachable set. The result is returned
/// in the vertex ids of [`BipartiteGraph::to_graph`] (right ids offset by
/// `left_n`) so that it can be validated against the flattened graph.
pub fn koenig_cover(g: &BipartiteGraph) -> VertexCover {
    let matching = hopcroft_karp(g);
    let left_n = g.left_n();
    let right_n = g.right_n();
    let mut mate_left = vec![u32::MAX; left_n];
    let mut mate_right = vec![u32::MAX; right_n];
    for &(l, r) in &matching {
        mate_left[l as usize] = r;
        mate_right[r as usize] = l;
    }
    let adj = g.left_csr();

    // Alternating BFS from unmatched left vertices: left->right over
    // non-matching edges, right->left over matching edges.
    let mut left_reached = vec![false; left_n];
    let mut right_reached = vec![false; right_n];
    let mut queue = VecDeque::new();
    for l in 0..left_n {
        if mate_left[l] == u32::MAX {
            left_reached[l] = true;
            queue.push_back(l as u32);
        }
    }
    while let Some(l) = queue.pop_front() {
        for &r in adj.neighbors(l as usize) {
            if mate_left[l as usize] == r {
                continue; // matching edge: not usable in this direction
            }
            if !right_reached[r as usize] {
                right_reached[r as usize] = true;
                let back = mate_right[r as usize];
                if back != u32::MAX && !left_reached[back as usize] {
                    left_reached[back as usize] = true;
                    queue.push_back(back);
                }
            }
        }
    }

    let mut cover = VertexCover::new();
    for (l, reached) in left_reached.iter().enumerate() {
        if !reached {
            cover.insert(l as VertexId);
        }
    }
    for (r, reached) in right_reached.iter().enumerate() {
        if *reached {
            cover.insert((left_n + r) as VertexId);
        }
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen::bipartite::random_bipartite;
    use graph::gen::er::gnp;
    use graph::gen::structured::{complete, cycle, path, star, star_forest};
    use graph::Graph;
    use matching::hopcroft_karp::hopcroft_karp_size;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// Exhaustive minimum vertex cover size for tiny graphs (cross-check).
    fn brute_force_vc_size(g: &Graph) -> usize {
        let n = g.n();
        assert!(n <= 20, "brute force only for tiny graphs");
        (0..(1u32 << n))
            .filter(|mask| {
                g.edges()
                    .iter()
                    .all(|e| mask & (1 << e.u) != 0 || mask & (1 << e.v) != 0)
            })
            .map(|mask| mask.count_ones() as usize)
            .min()
            .unwrap_or(0)
    }

    #[test]
    fn exact_on_structured_graphs() {
        assert_eq!(exact_cover_branch_and_bound(&path(4)).len(), 2);
        assert_eq!(exact_cover_branch_and_bound(&path(5)).len(), 2);
        assert_eq!(exact_cover_branch_and_bound(&cycle(5)).len(), 3);
        assert_eq!(exact_cover_branch_and_bound(&cycle(6)).len(), 3);
        assert_eq!(exact_cover_branch_and_bound(&star(9)).len(), 1);
        assert_eq!(exact_cover_branch_and_bound(&complete(6)).len(), 5);
        assert_eq!(exact_cover_branch_and_bound(&star_forest(3, 4)).len(), 3);
        assert_eq!(exact_cover_branch_and_bound(&Graph::empty(5)).len(), 0);
    }

    #[test]
    fn exact_output_is_a_cover_and_matches_brute_force() {
        for seed in 0..12 {
            let g = gnp(12, 0.3, &mut rng(seed));
            let cover = exact_cover_branch_and_bound(&g);
            assert!(cover.covers(&g), "seed {seed}");
            assert_eq!(cover.len(), brute_force_vc_size(&g), "seed {seed}");
        }
    }

    #[test]
    fn koenig_size_equals_matching_size() {
        for seed in 0..8 {
            let bg = random_bipartite(25, 25, 0.1, &mut rng(seed + 20));
            let cover = koenig_cover(&bg);
            let mm = hopcroft_karp_size(&bg);
            assert_eq!(
                cover.len(),
                mm,
                "König: |min VC| must equal |max matching| (seed {seed})"
            );
            assert!(cover.covers(&bg.to_graph()), "seed {seed}");
        }
    }

    #[test]
    fn koenig_on_structured_bipartite_graphs() {
        // Complete bipartite K_{3,5}: min VC = 3.
        let g = BipartiteGraph::from_pairs(
            3,
            5,
            (0..3u32).flat_map(|l| (0..5u32).map(move |r| (l, r))),
        )
        .unwrap();
        let cover = koenig_cover(&g);
        assert_eq!(cover.len(), 3);
        assert!(cover.covers(&g.to_graph()));

        // Perfect matching of size 4: min VC = 4.
        let g = BipartiteGraph::from_pairs(4, 4, (0..4u32).map(|i| (i, i))).unwrap();
        assert_eq!(koenig_cover(&g).len(), 4);

        // Empty bipartite graph.
        let g = BipartiteGraph::empty(3, 3);
        assert_eq!(koenig_cover(&g).len(), 0);
    }

    #[test]
    fn exact_agrees_with_koenig_on_small_bipartite_graphs() {
        for seed in 0..6 {
            let bg = random_bipartite(7, 7, 0.25, &mut rng(seed + 40));
            let exact = exact_cover_branch_and_bound(&bg.to_graph());
            let koenig = koenig_cover(&bg);
            assert_eq!(exact.len(), koenig.len(), "seed {seed}");
        }
    }
}
