//! Approximation algorithms for minimum vertex cover.
//!
//! * [`two_approx_cover`] — both endpoints of a maximal matching; the classic
//!   2-approximation the coordinator runs on the union of the residual
//!   subgraphs (paper, Section 3.2: "the vertex cover of ∪ G_Δ^(i) can be
//!   computed to within a factor of 2").
//! * [`greedy_degree_cover`] — repeatedly take a maximum-degree vertex; an
//!   `H_Δ = O(log n)`-approximation used as an additional baseline.

use crate::cover::VertexCover;
use graph::{Csr, GraphRef, VertexId};
use matching::greedy::maximal_matching;
use std::collections::BinaryHeap;

/// 2-approximate vertex cover: take both endpoints of every edge of a maximal
/// matching. Accepts any [`GraphRef`].
pub fn two_approx_cover<G: GraphRef + ?Sized>(g: &G) -> VertexCover {
    let m = maximal_matching(g);
    let mut cover = VertexCover::new();
    for e in m.edges() {
        cover.insert(e.u);
        cover.insert(e.v);
    }
    cover
}

/// Greedy maximum-degree vertex cover: repeatedly add the vertex covering the
/// most uncovered edges. `O(m log n)` with a lazy-deletion heap over a CSR
/// adjacency.
pub fn greedy_degree_cover<G: GraphRef + ?Sized>(g: &G) -> VertexCover {
    let adj = Csr::from_ref(g);
    let n = g.n();
    let mut remaining_degree: Vec<usize> = (0..n as VertexId).map(|v| adj.degree(v)).collect();
    let mut covered = vec![false; n];
    let mut uncovered_edges = g.m();

    // Max-heap of (degree, vertex); entries can be stale, so re-check on pop.
    let mut heap: BinaryHeap<(usize, VertexId)> = (0..n as VertexId)
        .filter(|&v| remaining_degree[v as usize] > 0)
        .map(|v| (remaining_degree[v as usize], v))
        .collect();

    let mut cover = VertexCover::new();
    while uncovered_edges > 0 {
        let (claimed_degree, v) = heap
            .pop()
            .expect("uncovered edges remain so the heap is non-empty");
        if covered[v as usize] || claimed_degree != remaining_degree[v as usize] {
            continue; // stale entry
        }
        if remaining_degree[v as usize] == 0 {
            continue;
        }
        // Take v.
        cover.insert(v);
        covered[v as usize] = true;
        for &w in adj.neighbors(v) {
            if !covered[w as usize] {
                uncovered_edges -= 1;
                remaining_degree[w as usize] -= 1;
                if remaining_degree[w as usize] > 0 {
                    heap.push((remaining_degree[w as usize], w));
                }
            }
        }
        remaining_degree[v as usize] = 0;
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_cover_branch_and_bound;
    use graph::gen::er::gnp;
    use graph::gen::structured::{complete, cycle, path, star};
    use graph::Graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn two_approx_covers_and_is_bounded() {
        for seed in 0..10 {
            let g = gnp(40, 0.08, &mut rng(seed));
            let cover = two_approx_cover(&g);
            assert!(cover.covers(&g));
        }
    }

    #[test]
    fn two_approx_ratio_against_exact_on_small_graphs() {
        for seed in 0..10 {
            let g = gnp(12, 0.25, &mut rng(seed + 50));
            let approx = two_approx_cover(&g);
            let opt = exact_cover_branch_and_bound(&g);
            assert!(approx.covers(&g));
            assert!(
                approx.len() <= 2 * opt.len().max(1),
                "approx {} opt {}",
                approx.len(),
                opt.len()
            );
        }
    }

    #[test]
    fn greedy_degree_covers() {
        for seed in 0..10 {
            let g = gnp(40, 0.1, &mut rng(seed + 100));
            let cover = greedy_degree_cover(&g);
            assert!(cover.covers(&g));
        }
    }

    #[test]
    fn greedy_degree_is_optimal_on_stars() {
        let g = star(20);
        let cover = greedy_degree_cover(&g);
        assert_eq!(cover.len(), 1);
        assert!(cover.contains(0));
    }

    #[test]
    fn structured_graphs() {
        // Path on 4 vertices: optimum 2.
        let g = path(4);
        assert!(two_approx_cover(&g).covers(&g));
        assert!(greedy_degree_cover(&g).covers(&g));
        assert!(greedy_degree_cover(&g).len() <= 3);

        // Even cycle: optimum n/2.
        let c = cycle(8);
        assert!(greedy_degree_cover(&c).covers(&c));

        // Complete graph K5: optimum 4.
        let k = complete(5);
        assert_eq!(greedy_degree_cover(&k).len(), 4);
        assert!(two_approx_cover(&k).covers(&k));
    }

    #[test]
    fn empty_graph_needs_no_cover() {
        let g = Graph::empty(7);
        assert!(two_approx_cover(&g).is_empty());
        assert!(greedy_degree_cover(&g).is_empty());
    }
}
