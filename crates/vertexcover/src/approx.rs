//! Approximation algorithms for minimum vertex cover.
//!
//! * [`two_approx_cover`] — both endpoints of a maximal matching; the classic
//!   2-approximation the coordinator runs on the union of the residual
//!   subgraphs (paper, Section 3.2: "the vertex cover of ∪ G_Δ^(i) can be
//!   computed to within a factor of 2").
//! * [`greedy_degree_cover`] — repeatedly take a maximum-degree vertex; an
//!   `H_Δ = O(log n)`-approximation used as an additional baseline.
//!
//! Both run on the calling thread's reusable
//! [`VcEngine`](crate::engine::VcEngine): the 2-approximation is one stamped
//! `O(m)` edge scan (no `vec![false; n]` per call), and the greedy cover
//! compacts the graph onto its live vertices and reuses the engine's degree
//! array, covered flags and heap. Outputs are identical to the pre-engine
//! implementations and invariant under workspace reuse.

use crate::cover::VertexCover;
use crate::engine::with_thread_engine;
use graph::{Edge, GraphRef};

/// 2-approximate vertex cover: take both endpoints of every edge of the
/// greedy maximal matching over `g`'s edges in input order. Accepts any
/// [`GraphRef`].
pub fn two_approx_cover<G: GraphRef + ?Sized>(g: &G) -> VertexCover {
    with_thread_engine(|engine| engine.two_approx_cover(g))
}

/// 2-approximate vertex cover of the graph formed by concatenating the given
/// edge slices (in order) over vertex ids `0..n`, **without materializing the
/// union**: the greedy maximal matching scans the slices in sequence, and
/// duplicate edges across slices are no-ops. Equals [`two_approx_cover`] on
/// the (first-seen deduplicated) union graph — the coordinator composes the
/// residual subgraphs of a vertex-cover protocol run through this entry
/// point.
pub fn two_approx_cover_concat(n: usize, slices: &[&[Edge]]) -> VertexCover {
    with_thread_engine(|engine| engine.two_approx_concat(n, slices.iter().copied()))
}

/// Greedy maximum-degree vertex cover: repeatedly add the vertex covering the
/// most uncovered edges. `O(m log n)` with a lazy-deletion heap over the
/// compacted CSR adjacency.
pub fn greedy_degree_cover<G: GraphRef + ?Sized>(g: &G) -> VertexCover {
    with_thread_engine(|engine| engine.greedy_degree_cover(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_cover_branch_and_bound;
    use graph::gen::er::gnp;
    use graph::gen::structured::{complete, cycle, path, star};
    use graph::Graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn two_approx_covers_and_is_bounded() {
        for seed in 0..10 {
            let g = gnp(40, 0.08, &mut rng(seed));
            let cover = two_approx_cover(&g);
            assert!(cover.covers(&g));
        }
    }

    #[test]
    fn two_approx_ratio_against_exact_on_small_graphs() {
        for seed in 0..10 {
            let g = gnp(12, 0.25, &mut rng(seed + 50));
            let approx = two_approx_cover(&g);
            let opt = exact_cover_branch_and_bound(&g);
            assert!(approx.covers(&g));
            assert!(
                approx.len() <= 2 * opt.len().max(1),
                "approx {} opt {}",
                approx.len(),
                opt.len()
            );
        }
    }

    #[test]
    fn greedy_degree_covers() {
        for seed in 0..10 {
            let g = gnp(40, 0.1, &mut rng(seed + 100));
            let cover = greedy_degree_cover(&g);
            assert!(cover.covers(&g));
        }
    }

    #[test]
    fn greedy_degree_is_optimal_on_stars() {
        let g = star(20);
        let cover = greedy_degree_cover(&g);
        assert_eq!(cover.len(), 1);
        assert!(cover.contains(0));
    }

    #[test]
    fn structured_graphs() {
        // Path on 4 vertices: optimum 2.
        let g = path(4);
        assert!(two_approx_cover(&g).covers(&g));
        assert!(greedy_degree_cover(&g).covers(&g));
        assert!(greedy_degree_cover(&g).len() <= 3);

        // Even cycle: optimum n/2.
        let c = cycle(8);
        assert!(greedy_degree_cover(&c).covers(&c));

        // Complete graph K5: optimum 4.
        let k = complete(5);
        assert_eq!(greedy_degree_cover(&k).len(), 4);
        assert!(two_approx_cover(&k).covers(&k));
    }

    #[test]
    fn empty_graph_needs_no_cover() {
        let g = Graph::empty(7);
        assert!(two_approx_cover(&g).is_empty());
        assert!(greedy_degree_cover(&g).is_empty());
    }

    #[test]
    fn concat_two_approx_equals_union_two_approx() {
        let mut r = rng(9);
        let a = gnp(50, 0.08, &mut r);
        let b = gnp(50, 0.08, &mut r);
        let union = Graph::union(&[&a, &b]);
        let concat = two_approx_cover_concat(50, &[a.edges(), b.edges()]);
        assert_eq!(concat, two_approx_cover(&union));
        assert!(concat.covers(&union));
        // Duplicate slices are no-ops.
        let dup = two_approx_cover_concat(50, &[a.edges(), a.edges()]);
        assert_eq!(dup, two_approx_cover(&a));
    }
}
