//! The Parnas–Ron iterative peeling process.
//!
//! `VC-Coreset` (paper, Section 3.2) peels vertices of highest residual degree
//! in `O(log n)` rounds: in round `j` every vertex whose degree in the current
//! residual graph is at least a threshold `t_j` is removed and added to the
//! fixed part of the cover, and the thresholds halve each round. The process
//! stops when the threshold reaches `O(log n)` scale, at which point the
//! residual graph has `O(n log n)` edges and is returned as the coreset
//! subgraph.
//!
//! This module implements the *generic* peeling process parameterised by the
//! threshold schedule; the coreset crate instantiates it with the paper's
//! schedule `t_j = n / (k · 2^{j+1})`.
//!
//! The free functions run on the calling thread's reusable
//! [`VcEngine`](crate::engine::VcEngine), whose bucket-queue core peels each
//! round in `O(vertices peeled + edges removed)` with **zero** per-round
//! edge-buffer reallocations. The pre-engine implementation is preserved as
//! [`peel_with_thresholds_reference`] — the differential-testing baseline,
//! whose per-call and per-round scratch allocations are recorded in
//! [`graph::metrics::vc_peel_scratch_elems`] so protocol runs can assert they
//! never take it.

use crate::cover::VertexCover;
use crate::engine::with_thread_engine;
use graph::{Edge, Graph, GraphRef, VertexId};

/// The result of running the peeling process on a graph.
#[derive(Debug, Clone)]
pub struct PeelingOutcome {
    /// Vertices peeled in each round (round `j` corresponds to
    /// `thresholds[j]`).
    pub peeled_per_round: Vec<Vec<VertexId>>,
    /// The thresholds actually used, one per round.
    pub thresholds: Vec<usize>,
    /// The residual graph after the last round.
    pub residual: Graph,
}

impl PeelingOutcome {
    /// All peeled vertices, across rounds, as a cover fragment.
    pub fn peeled_cover(&self) -> VertexCover {
        VertexCover::from_vertices(self.peeled_per_round.iter().flatten().copied())
    }

    /// Total number of peeled vertices.
    pub fn peeled_count(&self) -> usize {
        self.peeled_per_round.iter().map(Vec::len).sum()
    }
}

/// Runs the iterative peeling process on `g` with the given threshold
/// schedule: in round `j`, every vertex whose *current residual degree* is at
/// least `thresholds[j]` is peeled (removed together with its incident edges).
///
/// Returns the peeled vertices per round and the residual graph. Thresholds
/// of zero are skipped (they would peel every vertex and make the outcome
/// trivial).
///
/// Accepts any [`GraphRef`] and runs on the calling thread's reusable
/// [`VcEngine`](crate::engine::VcEngine). The residual preserves the input
/// edge order (exactly what the per-round `remove_vertices` chain would
/// produce).
///
/// **Workspace-reuse invariance:** the output is a pure function of
/// `(g, thresholds)` — the engine's reused scratch is epoch-stamped, so
/// peeling after any sequence of earlier solves returns the same rounds,
/// vertex for vertex, as a fresh engine would
/// (`tests/engine_equivalence.rs` pins this property).
pub fn peel_with_thresholds<G: GraphRef + ?Sized>(g: &G, thresholds: &[usize]) -> PeelingOutcome {
    with_thread_engine(|engine| engine.peel_with_thresholds(g, thresholds))
}

/// The pre-engine peeling implementation, kept verbatim as the differential
/// baseline: one edge-buffer copy up front, then every round allocates a
/// fresh degree array and rescans + `retain`s the whole residual buffer —
/// `O(m · rounds + n · rounds)`.
///
/// Every scratch allocation is recorded in
/// [`graph::metrics::vc_peel_scratch_elems`]; the engine path records
/// nothing, which is how experiment E14 and the determinism suite assert
/// that protocol runs never fall back to this path. Output is identical to
/// [`peel_with_thresholds`], round by round (pinned by the
/// engine-equivalence proptests).
pub fn peel_with_thresholds_reference<G: GraphRef + ?Sized>(
    g: &G,
    thresholds: &[usize],
) -> PeelingOutcome {
    let n = g.n();
    let mut edges: Vec<Edge> = g.edges().to_vec();
    graph::metrics::record_vc_peel_scratch(edges.len());
    let mut peeled_per_round = Vec::with_capacity(thresholds.len());
    let mut used_thresholds = Vec::with_capacity(thresholds.len());
    let mut peeled_now = vec![false; n];
    graph::metrics::record_vc_peel_scratch(n);

    for &t in thresholds {
        if t == 0 {
            continue;
        }
        let mut degrees = vec![0usize; n];
        graph::metrics::record_vc_peel_scratch(n);
        for e in &edges {
            degrees[e.u as usize] += 1;
            degrees[e.v as usize] += 1;
        }
        let peeled: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| degrees[v as usize] >= t)
            .collect();
        for &v in &peeled {
            peeled_now[v as usize] = true;
        }
        edges.retain(|e| !peeled_now[e.u as usize] && !peeled_now[e.v as usize]);
        for &v in &peeled {
            peeled_now[v as usize] = false;
        }
        peeled_per_round.push(peeled);
        used_thresholds.push(t);
    }

    PeelingOutcome {
        peeled_per_round,
        thresholds: used_thresholds,
        residual: Graph::from_edges_unchecked(n, edges),
    }
}

/// The classic Parnas–Ron threshold schedule for an `n`-vertex graph:
/// `n/2, n/4, n/8, ...` down to `stop_at` (exclusive).
pub fn parnas_ron_schedule(n: usize, stop_at: usize) -> Vec<usize> {
    let mut thresholds = Vec::new();
    let mut t = n / 2;
    while t > stop_at.max(1) {
        thresholds.push(t);
        t /= 2;
    }
    thresholds
}

/// The classic Parnas–Ron schedule on a single graph: thresholds
/// `n/2, n/4, n/8, ...` down to `stop_at` (exclusive). Returns the outcome;
/// the union of the peeled vertices plus a 2-approximate cover of the residual
/// graph is an `O(log n)`-approximate vertex cover.
///
/// Runs on the calling thread's reusable engine; like
/// [`peel_with_thresholds`], the output is invariant under workspace reuse.
pub fn parnas_ron_peeling<G: GraphRef + ?Sized>(g: &G, stop_at: usize) -> PeelingOutcome {
    peel_with_thresholds(g, &parnas_ron_schedule(g.n(), stop_at))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::two_approx_cover;
    use crate::exact::exact_cover_branch_and_bound;
    use graph::gen::er::gnp;
    use graph::gen::structured::{star, star_forest};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn peeling_reduces_max_degree() {
        let g = star(100); // centre has degree 100
        let outcome = parnas_ron_peeling(&g, 4);
        // The centre must be peeled in the first round (threshold 50).
        assert!(outcome.peeled_per_round[0].contains(&0));
        assert!(outcome.residual.max_degree() <= 4 * 2);
        assert!(outcome.peeled_cover().contains(0));
    }

    #[test]
    fn residual_plus_peeled_covers_the_graph() {
        for seed in 0..5 {
            let g = gnp(60, 0.15, &mut rng(seed));
            let outcome = parnas_ron_peeling(&g, 2);
            let mut cover = outcome.peeled_cover();
            let residual_cover = two_approx_cover(&outcome.residual);
            cover.extend_from(&residual_cover);
            assert!(
                cover.covers(&g),
                "seed {seed}: peeled + residual 2-approx must cover"
            );
        }
    }

    #[test]
    fn peeled_vertices_are_not_too_many_on_small_graphs() {
        // The peeled set is O(log n) * OPT; on small random graphs check a
        // generous multiple.
        for seed in 0..5 {
            let g = gnp(30, 0.2, &mut rng(seed + 10));
            let outcome = parnas_ron_peeling(&g, 2);
            let opt = exact_cover_branch_and_bound(&g).len().max(1);
            let log_n = (g.n() as f64).ln().ceil() as usize;
            assert!(
                outcome.peeled_count() <= 4 * log_n * opt,
                "seed {seed}: peeled {} vs bound {}",
                outcome.peeled_count(),
                4 * log_n * opt
            );
        }
    }

    #[test]
    fn thresholds_are_decreasing_and_skip_zero() {
        let g = gnp(64, 0.1, &mut rng(3));
        let outcome = parnas_ron_peeling(&g, 2);
        for w in outcome.thresholds.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!(outcome.thresholds.iter().all(|&t| t > 0));

        let custom = peel_with_thresholds(&g, &[10, 0, 5]);
        assert_eq!(custom.thresholds, vec![10, 5]);
    }

    #[test]
    fn star_forest_peels_only_centres_eventually() {
        let g = star_forest(5, 40);
        let outcome = peel_with_thresholds(&g, &[20, 10]);
        let peeled = outcome.peeled_cover();
        // Every centre has degree 40 >= 20, so all five centres are peeled in
        // round one; leaves have degree 1 and never reach a threshold.
        assert_eq!(peeled.len(), 5);
        assert!(outcome.residual.is_empty());
    }

    #[test]
    fn empty_graph_is_a_fixed_point() {
        let g = Graph::empty(10);
        let outcome = parnas_ron_peeling(&g, 2);
        assert_eq!(outcome.peeled_count(), 0);
        assert!(outcome.residual.is_empty());
    }

    #[test]
    fn reference_path_records_scratch_and_matches_engine() {
        // The counter is process-wide and tests run concurrently, so assert
        // only monotone movement here; the engine path's *zero*-scratch
        // claim is asserted in single-threaded contexts (experiment E14 and
        // `tests/determinism.rs`, whose processes never call the reference).
        let g = gnp(200, 0.05, &mut rng(4));
        let schedule = parnas_ron_schedule(g.n(), 4);
        let engine_out = peel_with_thresholds(&g, &schedule);
        let before = graph::metrics::vc_peel_scratch_elems();
        let reference = peel_with_thresholds_reference(&g, &schedule);
        assert!(
            graph::metrics::vc_peel_scratch_elems() > before,
            "the reference path must record its per-round scratch"
        );
        assert_eq!(engine_out.peeled_per_round, reference.peeled_per_round);
        assert_eq!(engine_out.residual, reference.residual);
    }
}
