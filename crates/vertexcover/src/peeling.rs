//! The Parnas–Ron iterative peeling process.
//!
//! `VC-Coreset` (paper, Section 3.2) peels vertices of highest residual degree
//! in `O(log n)` rounds: in round `j` every vertex whose degree in the current
//! residual graph is at least a threshold `t_j` is removed and added to the
//! fixed part of the cover, and the thresholds halve each round. The process
//! stops when the threshold reaches `O(log n)` scale, at which point the
//! residual graph has `O(n log n)` edges and is returned as the coreset
//! subgraph.
//!
//! This module implements the *generic* peeling process parameterised by the
//! threshold schedule; the coreset crate instantiates it with the paper's
//! schedule `t_j = n / (k · 2^{j+1})`.

use crate::cover::VertexCover;
use graph::{Edge, Graph, GraphRef, VertexId};

/// The result of running the peeling process on a graph.
#[derive(Debug, Clone)]
pub struct PeelingOutcome {
    /// Vertices peeled in each round (round `j` corresponds to
    /// `thresholds[j]`).
    pub peeled_per_round: Vec<Vec<VertexId>>,
    /// The thresholds actually used, one per round.
    pub thresholds: Vec<usize>,
    /// The residual graph after the last round.
    pub residual: Graph,
}

impl PeelingOutcome {
    /// All peeled vertices, across rounds, as a cover fragment.
    pub fn peeled_cover(&self) -> VertexCover {
        VertexCover::from_vertices(self.peeled_per_round.iter().flatten().copied())
    }

    /// Total number of peeled vertices.
    pub fn peeled_count(&self) -> usize {
        self.peeled_per_round.iter().map(Vec::len).sum()
    }
}

/// Runs the iterative peeling process on `g` with the given threshold
/// schedule: in round `j`, every vertex whose *current residual degree* is at
/// least `thresholds[j]` is peeled (removed together with its incident edges).
///
/// Returns the peeled vertices per round and the residual graph. Thresholds
/// of zero are skipped (they would peel every vertex and make the outcome
/// trivial).
///
/// Accepts any [`GraphRef`] and never clones the input graph: the residual
/// edge set is filtered in place in one working buffer, preserving the input
/// edge order (exactly what the per-round `remove_vertices` chain produced).
pub fn peel_with_thresholds<G: GraphRef + ?Sized>(g: &G, thresholds: &[usize]) -> PeelingOutcome {
    let n = g.n();
    let mut edges: Vec<Edge> = g.edges().to_vec();
    let mut peeled_per_round = Vec::with_capacity(thresholds.len());
    let mut used_thresholds = Vec::with_capacity(thresholds.len());
    let mut peeled_now = vec![false; n];

    for &t in thresholds {
        if t == 0 {
            continue;
        }
        let mut degrees = vec![0usize; n];
        for e in &edges {
            degrees[e.u as usize] += 1;
            degrees[e.v as usize] += 1;
        }
        let peeled: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| degrees[v as usize] >= t)
            .collect();
        for &v in &peeled {
            peeled_now[v as usize] = true;
        }
        edges.retain(|e| !peeled_now[e.u as usize] && !peeled_now[e.v as usize]);
        for &v in &peeled {
            peeled_now[v as usize] = false;
        }
        peeled_per_round.push(peeled);
        used_thresholds.push(t);
    }

    PeelingOutcome {
        peeled_per_round,
        thresholds: used_thresholds,
        residual: Graph::from_edges_unchecked(n, edges),
    }
}

/// The classic Parnas–Ron schedule on a single graph: thresholds
/// `n/2, n/4, n/8, ...` down to `stop_at` (exclusive). Returns the outcome;
/// the union of the peeled vertices plus a 2-approximate cover of the residual
/// graph is an `O(log n)`-approximate vertex cover.
pub fn parnas_ron_peeling<G: GraphRef + ?Sized>(g: &G, stop_at: usize) -> PeelingOutcome {
    let mut thresholds = Vec::new();
    let mut t = g.n() / 2;
    while t > stop_at.max(1) {
        thresholds.push(t);
        t /= 2;
    }
    peel_with_thresholds(g, &thresholds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::two_approx_cover;
    use crate::exact::exact_cover_branch_and_bound;
    use graph::gen::er::gnp;
    use graph::gen::structured::{star, star_forest};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn peeling_reduces_max_degree() {
        let g = star(100); // centre has degree 100
        let outcome = parnas_ron_peeling(&g, 4);
        // The centre must be peeled in the first round (threshold 50).
        assert!(outcome.peeled_per_round[0].contains(&0));
        assert!(outcome.residual.max_degree() <= 4 * 2);
        assert!(outcome.peeled_cover().contains(0));
    }

    #[test]
    fn residual_plus_peeled_covers_the_graph() {
        for seed in 0..5 {
            let g = gnp(60, 0.15, &mut rng(seed));
            let outcome = parnas_ron_peeling(&g, 2);
            let mut cover = outcome.peeled_cover();
            let residual_cover = two_approx_cover(&outcome.residual);
            cover.extend_from(&residual_cover);
            assert!(
                cover.covers(&g),
                "seed {seed}: peeled + residual 2-approx must cover"
            );
        }
    }

    #[test]
    fn peeled_vertices_are_not_too_many_on_small_graphs() {
        // The peeled set is O(log n) * OPT; on small random graphs check a
        // generous multiple.
        for seed in 0..5 {
            let g = gnp(30, 0.2, &mut rng(seed + 10));
            let outcome = parnas_ron_peeling(&g, 2);
            let opt = exact_cover_branch_and_bound(&g).len().max(1);
            let log_n = (g.n() as f64).ln().ceil() as usize;
            assert!(
                outcome.peeled_count() <= 4 * log_n * opt,
                "seed {seed}: peeled {} vs bound {}",
                outcome.peeled_count(),
                4 * log_n * opt
            );
        }
    }

    #[test]
    fn thresholds_are_decreasing_and_skip_zero() {
        let g = gnp(64, 0.1, &mut rng(3));
        let outcome = parnas_ron_peeling(&g, 2);
        for w in outcome.thresholds.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!(outcome.thresholds.iter().all(|&t| t > 0));

        let custom = peel_with_thresholds(&g, &[10, 0, 5]);
        assert_eq!(custom.thresholds, vec![10, 5]);
    }

    #[test]
    fn star_forest_peels_only_centres_eventually() {
        let g = star_forest(5, 40);
        let outcome = peel_with_thresholds(&g, &[20, 10]);
        let peeled = outcome.peeled_cover();
        // Every centre has degree 40 >= 20, so all five centres are peeled in
        // round one; leaves have degree 1 and never reach a threshold.
        assert_eq!(peeled.len(), 5);
        assert!(outcome.residual.is_empty());
    }

    #[test]
    fn empty_graph_is_a_fixed_point() {
        let g = Graph::empty(10);
        let outcome = parnas_ron_peeling(&g, 2);
        assert_eq!(outcome.peeled_count(), 0);
        assert!(outcome.residual.is_empty());
    }
}
