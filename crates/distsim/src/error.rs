//! Typed protocol-level errors.
//!
//! The fault-tolerant runtime distinguishes *where* a failure happened, not
//! just *that* it happened: an arena segment that fails its checksum is
//! attributed to the machine whose piece it holds, a corrupt checkpoint is
//! reported separately from a corrupt arena, and "every machine died" is its
//! own terminal outcome. Experiment binaries and tests match on these
//! variants instead of parsing strings.

use graph::GraphError;

/// Error of one protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A graph-layer failure outside any per-machine context (partitioning,
    /// arena header validation, parameter checks).
    Graph(GraphError),
    /// Loading a machine's arena segment failed even after the retry budget;
    /// `machine` is both the machine index and the arena segment index (the
    /// arena stores one segment per machine).
    Segment {
        /// The machine (= arena segment) whose data could not be read.
        machine: usize,
        /// The underlying graph-layer failure (I/O or checksum mismatch).
        source: GraphError,
    },
    /// Reading or writing a resume checkpoint failed. Corrupt checkpoints are
    /// *not* reported here — they are silently discarded and the run starts
    /// fresh; this variant is for I/O failures while persisting a new one.
    Checkpoint {
        /// Human-readable description of the failed checkpoint operation.
        context: String,
    },
    /// The run stopped deliberately after persisting a checkpoint
    /// (`FaultRunOptions::kill_after_leaves`); rerunning with the same
    /// checkpoint path resumes where it left off. Only the crash-recovery
    /// tests request this.
    Interrupted {
        /// Number of leaves fully processed (and checkpointed) before the
        /// simulated kill.
        pushed: usize,
    },
    /// Every machine was permanently lost; there is nothing to compose.
    NoSurvivors,
    /// At least one machine was permanently lost and the plan's loss policy
    /// is [`crate::faults::DegradedComposition::Fail`].
    MachinesLost {
        /// The machines that exhausted their retry budget, in index order.
        machines: Vec<usize>,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Graph(e) => write!(f, "graph error: {e}"),
            ProtocolError::Segment { machine, source } => write!(
                f,
                "machine {machine}: arena segment {machine} unavailable: {source}"
            ),
            ProtocolError::Checkpoint { context } => {
                write!(f, "checkpoint error: {context}")
            }
            ProtocolError::Interrupted { pushed } => write!(
                f,
                "run interrupted after checkpointing {pushed} completed leaves"
            ),
            ProtocolError::NoSurvivors => {
                write!(f, "all machines permanently lost; nothing to compose")
            }
            ProtocolError::MachinesLost { machines } => write!(
                f,
                "{} machine(s) permanently lost ({machines:?}) and the loss policy is Fail",
                machines.len()
            ),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Graph(e) | ProtocolError::Segment { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ProtocolError {
    fn from(e: GraphError) -> Self {
        ProtocolError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_machine_and_segment_context() {
        let e = ProtocolError::Segment {
            machine: 3,
            source: GraphError::ArenaChecksumMismatch {
                segment: 3,
                expected: 0xDEAD_BEEF,
                found: 0x0BAD_F00D,
            },
        };
        let s = e.to_string();
        assert!(s.contains("machine 3"), "{s}");
        assert!(s.contains("segment 3"), "{s}");
        assert!(s.contains("checksum"), "{s}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn graph_errors_convert() {
        let e: ProtocolError = GraphError::InvalidParameter {
            reason: "k = 0".into(),
        }
        .into();
        assert!(matches!(e, ProtocolError::Graph(_)));
        assert!(e.to_string().contains("k = 0"));
    }

    #[test]
    fn terminal_outcomes_render() {
        assert!(ProtocolError::NoSurvivors.to_string().contains("nothing"));
        let lost = ProtocolError::MachinesLost {
            machines: vec![1, 4],
        };
        assert!(lost.to_string().contains("[1, 4]"));
        assert!(ProtocolError::Interrupted { pushed: 5 }
            .to_string()
            .contains('5'));
    }
}
