//! The edge-churn serving driver: batched updates, incremental answers, and
//! dirty-piece-only re-coresets.
//!
//! A [`GraphService`] owns three cooperating structures:
//!
//! * a [`graph::ChurnPartition`] — the mutable overlay over the hash-placed
//!   `k`-machine edge arena, absorbing inserts/deletes while keeping every
//!   machine's piece bit-identical to the piece a **from-scratch**
//!   [`graph::partition::PartitionedGraph::by_edge_hash`] partition of the
//!   current graph would produce;
//! * a [`dynamic::DynamicCover`] (wrapping a [`dynamic::DynamicMatcher`]) —
//!   instant per-update approximate answers between protocol re-solves;
//! * two fingerprint-keyed [`coresets::CoresetCache`]s — the per-machine
//!   matching and vertex-cover coresets from the last protocol round.
//!
//! After each batch ([`GraphService::apply_batch`]) the coordinator
//! re-coresets **only the machines whose piece fingerprint changed**: clean
//! machines' cached coresets are reused verbatim, dirty machines rebuild on
//! the work-stealing pool with their pre-derived `machine_rng(seed, i)`
//! streams, and the composed answers are extracted over borrowed cache slots
//! ([`coresets::solve_composed_matching_refs`] /
//! [`coresets::compose_vertex_cover_refs`]).
//!
//! **Answer identity.** The cached-composition answers equal a from-scratch
//! batch run of the same protocol on the current graph, bit for bit: hash
//! placement means churn on one edge never moves another edge's machine, the
//! churn partition keeps pieces in canonical sorted order (so piece content
//! equality *is* fingerprint equality), and coreset builds are pure in
//! `(piece content, params, machine, machine_rng(seed, machine))`. This is
//! asserted per batch by experiment E18 (`exp_dynamic_churn`) and pinned by
//! `tests/determinism.rs`.

use crate::error::ProtocolError;
use coresets::matching_coreset::{MatchingCoresetBuilder, MaximumMatchingCoreset};
use coresets::streams::machine_rng;
use coresets::vc_coreset::{PeelingVcCoreset, VcCoresetBuilder, VcCoresetOutput};
use coresets::{
    compose_vertex_cover_refs, solve_composed_matching_refs, CoresetCache, CoresetCacheKey,
    CoresetParams,
};
use dynamic::DynamicCover;
use graph::{ChurnOp, ChurnPartition, Graph, GraphError};
use matching::matching::Matching;
use matching::maximum::MaximumMatchingAlgorithm;
use rayon::prelude::*;
use vertexcover::VertexCover;

/// Configuration of a [`GraphService`].
#[derive(Debug, Clone, Copy)]
pub struct GraphServiceConfig {
    /// Number of machines `k` the edge set is hash-partitioned across.
    pub k: usize,
    /// Protocol seed: fixes the hash placement and every machine's coreset
    /// RNG stream.
    pub seed: u64,
    /// Repair slack of the incremental matcher (see
    /// [`dynamic::DynamicMatcher::with_eps`]).
    pub eps: f64,
}

impl GraphServiceConfig {
    /// A config with the default repair slack `ε = 0.5`.
    pub fn new(k: usize, seed: u64) -> Self {
        GraphServiceConfig { k, seed, eps: 0.5 }
    }
}

/// What one [`GraphService::apply_batch`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Operations that changed the edge set (duplicates/absences are no-ops).
    pub applied: usize,
    /// Operations in the batch.
    pub batch_len: usize,
    /// Machines whose piece fingerprint changed, i.e. coresets rebuilt.
    pub machines_rebuilt: usize,
    /// Machines served from cache this batch (`k - machines_rebuilt`).
    pub machines_cached: usize,
    /// Whether the overlay compacted its journals back into the arena.
    pub compacted: bool,
    /// Size of the composed (protocol) matching after the batch.
    pub matching_size: usize,
    /// Size of the composed (protocol) vertex cover after the batch.
    pub cover_size: usize,
    /// Size of the incremental matcher's maximal matching (instant answer).
    pub approx_matching_size: usize,
    /// Size of the incremental matched-endpoint cover (instant answer).
    pub approx_cover_size: usize,
}

/// A long-running matching/vertex-cover serving endpoint over a churning
/// edge set. See the [module docs](self).
pub struct GraphService {
    cfg: GraphServiceConfig,
    params: CoresetParams,
    partition: ChurnPartition,
    incremental: DynamicCover,
    matching_cache: CoresetCache<Graph>,
    vc_cache: CoresetCache<VcCoresetOutput>,
    last_matching: Matching,
    last_cover: VertexCover,
}

impl GraphService {
    /// Builds the service over `g`'s current edge set and runs the initial
    /// protocol round (every machine's coreset is built and cached).
    pub fn new(g: &Graph, cfg: GraphServiceConfig) -> Result<Self, ProtocolError> {
        let partition = ChurnPartition::new(g, cfg.k, cfg.seed)?;
        let incremental = DynamicCover::from_graph(g, cfg.eps)?;
        let mut service = GraphService {
            cfg,
            params: CoresetParams::new(g.n(), cfg.k),
            partition,
            incremental,
            matching_cache: CoresetCache::new(cfg.k),
            vc_cache: CoresetCache::new(cfg.k),
            last_matching: Matching::new(),
            last_cover: VertexCover::new(),
        };
        service.refresh()?;
        Ok(service)
    }

    /// Applies a batch of updates, refreshes only the dirty machines'
    /// coresets, and recomposes the protocol answers.
    pub fn apply_batch(&mut self, ops: &[ChurnOp]) -> Result<BatchOutcome, ProtocolError> {
        let mut applied = 0usize;
        for &op in ops {
            let changed = self.partition.apply(op)?;
            let also = self.incremental.apply(op)?;
            debug_assert_eq!(changed, also, "overlay and matcher disagree on {op:?}");
            if changed {
                applied += 1;
            }
        }
        let compacted = self.partition.maybe_compact();
        let mut outcome = self.refresh()?;
        outcome.applied = applied;
        outcome.batch_len = ops.len();
        outcome.compacted = compacted;
        Ok(outcome)
    }

    /// Rebuilds cache-missing machines' coresets in parallel and recomposes
    /// the answers from the cache slots.
    fn refresh(&mut self) -> Result<BatchOutcome, ProtocolError> {
        let k = self.cfg.k;
        let seed = self.cfg.seed;
        let fingerprints: Vec<u64> = (0..k)
            .map(|i| self.partition.piece_fingerprint(i))
            .collect();
        let mut missing: Vec<(usize, CoresetCacheKey)> = Vec::new();
        for (i, &fp) in fingerprints.iter().enumerate() {
            let key = CoresetCacheKey {
                seed,
                machine: i,
                piece_fingerprint: fp,
            };
            // The two caches are filled in lockstep, so one probe decides;
            // the vc cache's counters are kept in sync below.
            if self.matching_cache.lookup(&key).is_none() {
                self.vc_cache.lookup(&key);
                missing.push((i, key));
            } else {
                self.vc_cache.lookup(&key);
            }
        }

        // Dirty machines rebuild exactly as a from-scratch batch round would:
        // same piece content (canonical order), same params, and a fresh
        // machine_rng(seed, i) stream per builder call.
        let partition = &self.partition;
        let params = &self.params;
        let built: Vec<(usize, Graph, VcCoresetOutput)> = missing
            .par_iter()
            .map(|&(i, _)| {
                let piece = partition.piece(i);
                let mc = MaximumMatchingCoreset::new().build(
                    piece,
                    params,
                    i,
                    &mut machine_rng(seed, i),
                );
                let vc = PeelingVcCoreset::new().build(piece, params, i, &mut machine_rng(seed, i));
                (i, mc, vc)
            })
            .collect();
        let rebuilt = built.len();
        for ((_, key), (i, mc, vc)) in missing.into_iter().zip(built) {
            debug_assert_eq!(key.machine, i);
            self.matching_cache.insert(key, mc);
            self.vc_cache.insert(key, vc);
        }

        let matching_refs: Vec<&Graph> = (0..k)
            .map(|i| match self.matching_cache.slot(i) {
                Some(c) => c,
                // Unreachable: every miss was just rebuilt and inserted.
                None => unreachable!("machine {i} has no cached matching coreset"), // xtask: allow(error-hygiene)
            })
            .collect();
        self.last_matching =
            solve_composed_matching_refs(&matching_refs, MaximumMatchingAlgorithm::Auto);
        let vc_refs: Vec<&VcCoresetOutput> = (0..k)
            .map(|i| match self.vc_cache.slot(i) {
                Some(c) => c,
                // Unreachable: every miss was just rebuilt and inserted.
                None => unreachable!("machine {i} has no cached vc coreset"), // xtask: allow(error-hygiene)
            })
            .collect();
        self.last_cover = compose_vertex_cover_refs(&vc_refs);

        Ok(BatchOutcome {
            applied: 0,
            batch_len: 0,
            machines_rebuilt: rebuilt,
            machines_cached: k - rebuilt,
            compacted: false,
            matching_size: self.last_matching.len(),
            cover_size: self.last_cover.len(),
            approx_matching_size: self.incremental.matcher().matching_size(),
            approx_cover_size: self.incremental.cover_size(),
        })
    }

    /// The composed (protocol) matching from the last round.
    #[inline]
    pub fn matching(&self) -> &Matching {
        &self.last_matching
    }

    /// The composed (protocol) vertex cover from the last round.
    #[inline]
    pub fn cover(&self) -> &VertexCover {
        &self.last_cover
    }

    /// The incremental structures answering between rounds.
    #[inline]
    pub fn incremental(&self) -> &DynamicCover {
        &self.incremental
    }

    /// The churn-absorbing partition overlay.
    #[inline]
    pub fn partition(&self) -> &ChurnPartition {
        &self.partition
    }

    /// Cumulative `(hits, misses)` of the matching-coreset cache.
    pub fn matching_cache_stats(&self) -> (u64, u64) {
        (self.matching_cache.hits(), self.matching_cache.misses())
    }

    /// Cumulative `(hits, misses)` of the vertex-cover-coreset cache.
    pub fn vc_cache_stats(&self) -> (u64, u64) {
        (self.vc_cache.hits(), self.vc_cache.misses())
    }

    /// The service's configuration.
    #[inline]
    pub fn config(&self) -> GraphServiceConfig {
        self.cfg
    }

    /// Current number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.partition.m()
    }

    /// The current edge set as an owned canonical [`Graph`] (for auditing
    /// against a from-scratch run; allocates `m` edges).
    pub fn current_graph(&self) -> Graph {
        self.partition.current_graph()
    }
}

impl std::fmt::Debug for GraphService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphService")
            .field("k", &self.cfg.k)
            .field("seed", &self.cfg.seed)
            .field("m", &self.partition.m())
            .field("matching", &self.last_matching.len())
            .field("cover", &self.last_cover.len())
            .finish()
    }
}

/// The frozen naive baseline E18 compares against: re-partition from scratch
/// and rebuild **every** machine's coreset after each batch, composing the
/// same way. Returns `(matching, cover)` of one full round over `g`.
///
/// Kept in `distsim` (not the bench binary) so the determinism suite can pin
/// service answers against it directly.
pub fn naive_full_round(
    g: &Graph,
    k: usize,
    seed: u64,
) -> Result<(Matching, VertexCover), GraphError> {
    let partition = graph::partition::PartitionedGraph::by_edge_hash(g, k, seed)?;
    let params = CoresetParams::new(g.n(), k);
    let views = partition.views();
    let coresets: Vec<Graph> = views
        .par_iter()
        .enumerate()
        .map(|(i, piece)| {
            MaximumMatchingCoreset::new().build(*piece, &params, i, &mut machine_rng(seed, i))
        })
        .collect();
    let outputs: Vec<VcCoresetOutput> = views
        .par_iter()
        .enumerate()
        .map(|(i, piece)| {
            PeelingVcCoreset::new().build(*piece, &params, i, &mut machine_rng(seed, i))
        })
        .collect();
    let refs: Vec<&Graph> = coresets.iter().collect();
    let matching = solve_composed_matching_refs(&refs, MaximumMatchingAlgorithm::Auto);
    let out_refs: Vec<&VcCoresetOutput> = outputs.iter().collect();
    let cover = compose_vertex_cover_refs(&out_refs);
    Ok((matching, cover))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen::er::gnp;
    use graph::Edge;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn churn_ops(n: u32, count: usize, seed: u64) -> Vec<ChurnOp> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ops = Vec::new();
        while ops.len() < count {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let e = Edge::new(u, v);
            ops.push(if rng.gen_bool(0.5) {
                ChurnOp::Insert(e)
            } else {
                ChurnOp::Delete(e)
            });
        }
        ops
    }

    #[test]
    fn service_answers_equal_a_from_scratch_round_after_every_batch() {
        let g = gnp(300, 0.02, &mut ChaCha8Rng::seed_from_u64(5));
        let mut svc = GraphService::new(&g, GraphServiceConfig::new(6, 11)).unwrap();
        for batch in 0..6 {
            let ops = churn_ops(300, 24, 100 + batch);
            let outcome = svc.apply_batch(&ops).unwrap();
            let current = svc.current_graph();
            let (naive_m, naive_c) = naive_full_round(&current, 6, 11).unwrap();
            assert_eq!(svc.matching(), &naive_m, "batch {batch}: matching diverged");
            assert_eq!(svc.cover(), &naive_c, "batch {batch}: cover diverged");
            assert_eq!(outcome.matching_size, naive_m.len());
            assert_eq!(outcome.cover_size, naive_c.len());
            assert!(svc.cover().covers(&current));
            assert!(svc.matching().is_valid_for(&current));
        }
    }

    #[test]
    fn clean_machines_are_served_from_cache() {
        let g = gnp(400, 0.015, &mut ChaCha8Rng::seed_from_u64(6));
        let mut svc = GraphService::new(&g, GraphServiceConfig::new(8, 3)).unwrap();
        // The initial round misses everywhere.
        assert_eq!(svc.matching_cache_stats(), (0, 8));
        // One inserted edge dirties exactly one machine.
        let e = Edge::new(398, 399);
        assert!(!svc.current_graph().edges().contains(&e));
        let outcome = svc.apply_batch(&[ChurnOp::Insert(e)]).unwrap();
        assert_eq!(outcome.applied, 1);
        assert_eq!(outcome.machines_rebuilt, 1);
        assert_eq!(outcome.machines_cached, 7);
        let (hits, misses) = svc.matching_cache_stats();
        assert_eq!((hits, misses), (7, 9));
        assert_eq!(svc.vc_cache_stats(), (7, 9));
        // Deleting it again restores the fingerprint: the machine's rebuilt
        // coreset is keyed by content, but content reverted, so the slot key
        // no longer matches and it rebuilds once more.
        let outcome = svc.apply_batch(&[ChurnOp::Delete(e)]).unwrap();
        assert_eq!(outcome.machines_rebuilt, 1);
    }

    #[test]
    fn incremental_answers_bound_the_truth() {
        let g = gnp(200, 0.03, &mut ChaCha8Rng::seed_from_u64(7));
        let mut svc = GraphService::new(&g, GraphServiceConfig::new(4, 9)).unwrap();
        for batch in 0..4 {
            let ops = churn_ops(200, 30, 500 + batch);
            let outcome = svc.apply_batch(&ops).unwrap();
            let current = svc.current_graph();
            let opt = matching::maximum::maximum_matching(&current).len();
            // Maximal matching: at least half the optimum, never above it.
            assert!(outcome.approx_matching_size <= opt);
            assert!(2 * outcome.approx_matching_size >= opt);
            assert_eq!(outcome.approx_cover_size, 2 * outcome.approx_matching_size);
            assert!(svc.incremental().cover().covers(&current));
        }
    }

    #[test]
    fn batch_errors_surface_as_protocol_errors() {
        let g = gnp(50, 0.05, &mut ChaCha8Rng::seed_from_u64(8));
        let mut svc = GraphService::new(&g, GraphServiceConfig::new(4, 1)).unwrap();
        let bad = ChurnOp::Insert(Edge::new(1, 60));
        match svc.apply_batch(&[bad]) {
            Err(ProtocolError::Graph(GraphError::VertexOutOfRange { vertex, n })) => {
                assert_eq!((vertex, n), (60, 50));
            }
            other => panic!("expected VertexOutOfRange, got {other:?}"),
        }
    }
}
