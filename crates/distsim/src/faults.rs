//! Deterministic fault injection for protocol runs.
//!
//! The runtime simulates unreliable machines without giving up the
//! workspace's bit-reproducibility guarantee: every fault decision is a
//! **pure function** of `(fault_seed, site, attempt)` — no RNG state, no wall
//! clock, no thread identity — so the same [`FaultPlan`] injects the same
//! failures at the same sites for any thread count, any schedule, and any
//! `RC_SCHED_FUZZ` seed. Time is a *simulated tick clock*: retry backoff and
//! straggler delays are accounted as tick counts summed per machine
//! (order-independent), never measured with `Instant::now`.
//!
//! The fault-site taxonomy:
//!
//! | site                  | effect                                            |
//! |-----------------------|---------------------------------------------------|
//! | crash before summarize| machine dies before building its coreset          |
//! | crash after summarize | coreset built, machine dies before sending        |
//! | message lost          | coreset built and sent, never arrives             |
//! | straggler             | coreset arrives after `straggler_ticks` extra ticks|
//! | segment I/O           | arena read fails transiently (graph layer)        |
//! | segment checksum      | arena read decodes but fails its CRC (graph layer)|
//!
//! The first four are decided here; the two segment sites are delegated to
//! [`graph::arena_file::SegmentFaultPlan`], built from the same fault seed by
//! [`FaultPlan::segment_plan`]. Recovery is **retry by replay**: a failed
//! attempt re-derives the machine's private `machine_rng(seed, i)` stream
//! from scratch, so a run in which every machine eventually succeeds is
//! bit-identical to the fault-free run. Machines that exhaust the budget are
//! *permanently lost* and handled by the [`DegradedComposition`] policy.

use graph::arena_file::SegmentFaultPlan;
use serde::{Deserialize, Serialize};

/// Salt decorrelating crash-before-summarize decisions.
const SALT_CRASH_BEFORE: u64 = 0xFA17_57A6_E001_C4A5;
/// Salt decorrelating crash-after-summarize decisions.
const SALT_CRASH_AFTER: u64 = 0xFA17_57A6_E002_C4A5;
/// Salt decorrelating message-loss decisions.
const SALT_MESSAGE_LOST: u64 = 0xFA17_57A6_E003_4057;
/// Salt decorrelating straggler decisions.
const SALT_STRAGGLER: u64 = 0xFA17_57A6_E004_57A6;

/// SplitMix64 finalizer (same construction the RNG-stream derivation and the
/// arena-level fault plan use) — decorrelates adjacent seeds and sites.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic unit-interval draw for one `(seed, machine, attempt, salt)`
/// site — the pure replacement for "roll a die when the fault might happen".
fn site_unit(seed: u64, machine: usize, attempt: u32, salt: u64) -> f64 {
    let mut state = seed
        ^ (machine as u64).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (attempt as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)
        ^ salt;
    let _ = splitmix64(&mut state);
    let x = splitmix64(&mut state);
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A machine-level fault selected for one `(machine, attempt)` site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineFault {
    /// The machine dies before its summarize step: no coreset is built and
    /// the attempt fails.
    CrashBeforeSummarize,
    /// The machine builds its coreset (paying the work), then dies before the
    /// message leaves: the attempt fails.
    CrashAfterSummarize,
    /// The coreset is built and sent but the message never arrives: the
    /// attempt fails.
    MessageLost,
    /// The machine is slow: the attempt *succeeds* but spends
    /// [`FaultPlan::straggler_ticks`] extra simulated ticks.
    Straggler,
}

/// What the coordinator does about machines that exhausted their retry
/// budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedComposition {
    /// Compose over the survivors. Lost machines contribute an empty
    /// placeholder coreset so the composition tree keeps its shape and its
    /// `(level, node)` RNG streams; the answer degrades gracefully (the
    /// paper's randomized-coreset robustness claim, measured by E17).
    #[default]
    ComposeSurvivors,
    /// Refuse to answer: surface
    /// [`crate::error::ProtocolError::MachinesLost`].
    Fail,
}

/// Retry budget and backoff schedule for failed machine attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per machine (first try included). `0` is treated as 1.
    pub max_attempts: u32,
    /// Base backoff: retry `r` (1-based) waits `backoff_ticks << (r - 1)`
    /// simulated ticks (exponential, saturating).
    pub backoff_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_ticks: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` attempts and a 1-tick base backoff.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            backoff_ticks: 1,
        }
    }

    /// Simulated ticks waited before attempt number `attempt` (0-based; the
    /// first attempt waits nothing).
    pub fn backoff_before(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            0
        } else {
            self.backoff_ticks
                .checked_shl(attempt - 1)
                .unwrap_or(u64::MAX)
        }
    }
}

/// A complete, seeded description of which faults a run injects.
///
/// All probabilities are per-`(machine, attempt)` site; `0.0` disables a
/// site. The plan is pure data — cloning it and re-running reproduces the
/// exact same failures.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault universe, independent of the protocol seed: the same
    /// protocol run can be replayed under many fault universes and vice
    /// versa.
    pub fault_seed: u64,
    /// Probability a machine crashes before summarizing.
    pub crash_before_prob: f64,
    /// Probability a machine crashes after summarizing, before sending.
    pub crash_after_prob: f64,
    /// Probability a machine's coreset message is lost in transit.
    pub message_loss_prob: f64,
    /// Probability a machine straggles (succeeds late).
    pub straggler_prob: f64,
    /// Extra simulated ticks one straggle costs.
    pub straggler_ticks: u64,
    /// Probability one arena-segment read attempt fails with a transient
    /// I/O error (out-of-core runs only).
    pub segment_io_prob: f64,
    /// Probability one arena-segment read attempt decodes to corrupted bytes
    /// and fails its CRC (out-of-core runs only).
    pub segment_checksum_prob: f64,
    /// Machines forced to fail **every** attempt regardless of probabilities
    /// — the knob behind the "lose any single machine" experiments.
    pub lose_machines: Vec<usize>,
    /// Policy for machines that stay lost after the retry budget.
    pub on_loss: DegradedComposition,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// A plan that injects nothing (all probabilities zero).
    pub fn new(fault_seed: u64) -> Self {
        FaultPlan {
            fault_seed,
            crash_before_prob: 0.0,
            crash_after_prob: 0.0,
            message_loss_prob: 0.0,
            straggler_prob: 0.0,
            straggler_ticks: 0,
            segment_io_prob: 0.0,
            segment_checksum_prob: 0.0,
            lose_machines: Vec::new(),
            on_loss: DegradedComposition::ComposeSurvivors,
        }
    }

    /// A plan where every machine-crash site fires with probability `p`
    /// (the E17 fault-sweep shape).
    pub fn machine_failure(fault_seed: u64, p: f64) -> Self {
        let mut plan = FaultPlan::new(fault_seed);
        plan.crash_before_prob = p;
        plan.crash_after_prob = p;
        plan.message_loss_prob = p;
        plan
    }

    /// Returns this plan with `machines` forced to be permanently lost.
    pub fn losing(mut self, machines: Vec<usize>) -> Self {
        self.lose_machines = machines;
        self
    }

    /// The arena-level (graph-layer) half of this plan, keyed by the same
    /// fault seed.
    pub fn segment_plan(&self) -> SegmentFaultPlan {
        SegmentFaultPlan {
            seed: self.fault_seed,
            io_prob: self.segment_io_prob,
            checksum_prob: self.segment_checksum_prob,
        }
    }

    /// True if this plan can inject at least one fault.
    pub fn is_armed(&self) -> bool {
        self.crash_before_prob > 0.0
            || self.crash_after_prob > 0.0
            || self.message_loss_prob > 0.0
            || self.straggler_prob > 0.0
            || self.segment_io_prob > 0.0
            || self.segment_checksum_prob > 0.0
            || !self.lose_machines.is_empty()
    }
}

/// Decides, purely, which fault (if any) strikes each `(machine, attempt)`
/// site of a plan.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Wraps a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault striking machine `machine`'s attempt number `attempt`, if
    /// any. Pure: depends only on `(fault_seed, machine, attempt)`. Sites are
    /// checked in pipeline order (crash-before, crash-after, message-lost,
    /// straggler); the first hit wins.
    pub fn decide(&self, machine: usize, attempt: u32) -> Option<MachineFault> {
        if self.plan.lose_machines.contains(&machine) {
            return Some(MachineFault::CrashBeforeSummarize);
        }
        let p = &self.plan;
        let hit = |prob: f64, salt: u64| {
            prob > 0.0 && site_unit(p.fault_seed, machine, attempt, salt) < prob
        };
        if hit(p.crash_before_prob, SALT_CRASH_BEFORE) {
            Some(MachineFault::CrashBeforeSummarize)
        } else if hit(p.crash_after_prob, SALT_CRASH_AFTER) {
            Some(MachineFault::CrashAfterSummarize)
        } else if hit(p.message_loss_prob, SALT_MESSAGE_LOST) {
            Some(MachineFault::MessageLost)
        } else if hit(p.straggler_prob, SALT_STRAGGLER) {
            Some(MachineFault::Straggler)
        } else {
            None
        }
    }
}

/// What happened to one machine across its attempt loop.
#[derive(Debug, Clone)]
pub struct MachineOutcome<T> {
    /// The machine's delivered summary; `None` if it was permanently lost.
    pub summary: Option<T>,
    /// Faults injected into this machine (all sites, all attempts).
    pub injected: u64,
    /// Re-execution attempts performed (attempts beyond the first).
    pub retried: u64,
    /// Simulated ticks this machine spent on backoff and straggling.
    pub ticks: u64,
}

impl<T> MachineOutcome<T> {
    /// True if the machine failed at least once but ultimately delivered.
    pub fn recovered(&self) -> bool {
        self.summary.is_some() && self.injected > 0
    }
}

/// Runs one machine's summarize step under a fault injector and retry
/// policy.
///
/// `build` is called once per surviving attempt and must re-derive all of
/// its randomness from scratch (retry by replay): protocol runners pass a
/// closure that reconstructs `machine_rng(seed, machine)` internally, which
/// makes a recovered machine's summary bit-identical to its fault-free one.
pub fn run_machine_with_faults<T>(
    injector: &FaultInjector,
    retry: &RetryPolicy,
    machine: usize,
    mut build: impl FnMut() -> T,
) -> MachineOutcome<T> {
    let mut out = MachineOutcome {
        summary: None,
        injected: 0,
        retried: 0,
        ticks: 0,
    };
    for attempt in 0..retry.max_attempts.max(1) {
        if attempt > 0 {
            out.retried += 1;
            out.ticks = out.ticks.saturating_add(retry.backoff_before(attempt));
        }
        match injector.decide(machine, attempt) {
            Some(MachineFault::CrashBeforeSummarize) => {
                out.injected += 1;
            }
            Some(MachineFault::CrashAfterSummarize) | Some(MachineFault::MessageLost) => {
                // The work happens, the result is discarded: wasted attempts
                // still cost what the fault model says they cost.
                out.injected += 1;
                let _ = build();
            }
            Some(MachineFault::Straggler) => {
                out.injected += 1;
                out.ticks = out.ticks.saturating_add(injector.plan().straggler_ticks);
                out.summary = Some(build());
                return out;
            }
            None => {
                out.summary = Some(build());
                return out;
            }
        }
    }
    out
}

/// Aggregated fault accounting of one protocol run, threaded into the
/// experiment reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Seed of the injected fault universe.
    pub fault_seed: u64,
    /// Total faults injected (machine sites plus arena-segment sites).
    pub injected: u64,
    /// Re-execution attempts performed (machine replays plus segment
    /// re-reads).
    pub retried: u64,
    /// Machines that failed at least once but ultimately delivered.
    pub recovered: u64,
    /// Machines permanently lost, in index order.
    pub lost_machines: Vec<usize>,
    /// Simulated ticks spent on backoff and straggler delays (summed across
    /// machines; order-independent).
    pub ticks: u64,
    /// True if composition fell back to the survivors.
    pub degraded: bool,
    /// Achieved answer size divided by the fault-free answer size. Exactly
    /// `1.0` for non-degraded runs (recovery is bit-identical); `None` when
    /// the fault-free baseline is uncomputable (genuinely corrupt input).
    pub achieved_vs_fault_free: Option<f64>,
}

impl FaultReport {
    /// An all-zero report for a fault universe.
    pub fn new(fault_seed: u64) -> Self {
        FaultReport {
            fault_seed,
            injected: 0,
            retried: 0,
            recovered: 0,
            lost_machines: Vec::new(),
            ticks: 0,
            degraded: false,
            achieved_vs_fault_free: Some(1.0),
        }
    }

    /// Folds one machine's outcome into the run totals.
    pub fn absorb<T>(&mut self, machine: usize, outcome: &MachineOutcome<T>) {
        self.injected += outcome.injected;
        self.retried += outcome.retried;
        self.ticks = self.ticks.saturating_add(outcome.ticks);
        if outcome.recovered() {
            self.recovered += 1;
        }
        if outcome.summary.is_none() {
            self.lost_machines.push(machine);
            self.degraded = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_reproducible() {
        let inj = FaultInjector::new(FaultPlan::machine_failure(9, 0.5));
        for machine in 0..32 {
            for attempt in 0..4 {
                assert_eq!(
                    inj.decide(machine, attempt),
                    inj.decide(machine, attempt),
                    "machine {machine} attempt {attempt}"
                );
            }
        }
    }

    #[test]
    fn decisions_depend_on_seed_machine_and_attempt() {
        let a = FaultInjector::new(FaultPlan::machine_failure(1, 0.5));
        let b = FaultInjector::new(FaultPlan::machine_failure(2, 0.5));
        let differs_by_seed = (0..64).any(|m| a.decide(m, 0) != b.decide(m, 0));
        assert!(differs_by_seed, "fault universes must differ across seeds");
        let differs_by_attempt = (0..64).any(|m| a.decide(m, 0) != a.decide(m, 1));
        assert!(differs_by_attempt, "retries must face fresh fault rolls");
    }

    #[test]
    fn probabilities_are_roughly_respected() {
        let inj = FaultInjector::new(FaultPlan::machine_failure(7, 0.25));
        let hits = (0..4000).filter(|&m| inj.decide(m, 0).is_some()).count() as f64;
        // Three sites at p = 0.25 each, first hit wins:
        // P(any) = 1 - 0.75^3 ≈ 0.578.
        let expect = 4000.0 * (1.0 - 0.75f64.powi(3));
        assert!(
            (hits - expect).abs() < 0.1 * 4000.0,
            "hits {hits}, expected ≈ {expect}"
        );
    }

    #[test]
    fn forced_losses_override_probabilities() {
        let inj = FaultInjector::new(FaultPlan::new(3).losing(vec![2, 5]));
        for attempt in 0..10 {
            assert_eq!(
                inj.decide(2, attempt),
                Some(MachineFault::CrashBeforeSummarize)
            );
            assert_eq!(
                inj.decide(5, attempt),
                Some(MachineFault::CrashBeforeSummarize)
            );
            assert_eq!(inj.decide(3, attempt), None);
        }
    }

    #[test]
    fn zero_probability_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultPlan::new(42));
        assert!(!inj.plan().is_armed());
        assert!((0..256).all(|m| inj.decide(m, 0).is_none()));
    }

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let r = RetryPolicy {
            max_attempts: 5,
            backoff_ticks: 3,
        };
        assert_eq!(r.backoff_before(0), 0);
        assert_eq!(r.backoff_before(1), 3);
        assert_eq!(r.backoff_before(2), 6);
        assert_eq!(r.backoff_before(3), 12);
        let huge = RetryPolicy {
            max_attempts: 80,
            backoff_ticks: u64::MAX / 2,
        };
        assert_eq!(huge.backoff_before(70), u64::MAX);
    }

    #[test]
    fn retry_recovers_a_transiently_failing_machine() {
        // Find a seed whose machine 0 fails attempt 0 but passes attempt 1.
        let seed = (0..1000u64)
            .find(|&s| {
                let inj = FaultInjector::new(FaultPlan::machine_failure(s, 0.4));
                inj.decide(0, 0).is_some()
                    && inj.decide(0, 0) != Some(MachineFault::Straggler)
                    && inj.decide(0, 1).is_none()
            })
            .expect("some seed fails first then recovers");
        let inj = FaultInjector::new(FaultPlan::machine_failure(seed, 0.4));
        let retry = RetryPolicy {
            max_attempts: 2,
            backoff_ticks: 5,
        };
        let mut builds = 0;
        let out = run_machine_with_faults(&inj, &retry, 0, || {
            builds += 1;
            "summary"
        });
        assert_eq!(out.summary, Some("summary"));
        assert!(out.recovered());
        assert_eq!(out.retried, 1);
        assert_eq!(out.ticks, 5, "one retry pays the base backoff");
        assert!(builds >= 1);
    }

    #[test]
    fn exhausted_budget_loses_the_machine() {
        let inj = FaultInjector::new(FaultPlan::new(0).losing(vec![0]));
        let retry = RetryPolicy {
            max_attempts: 4,
            backoff_ticks: 2,
        };
        let out = run_machine_with_faults(&inj, &retry, 0, || "never");
        assert!(out.summary.is_none());
        assert_eq!(out.injected, 4);
        assert_eq!(out.retried, 3);
        assert_eq!(out.ticks, 2 + 4 + 8, "three exponential backoffs");
    }

    #[test]
    fn straggler_succeeds_late() {
        let seed = (0..2000u64)
            .find(|&s| {
                let mut plan = FaultPlan::new(s);
                plan.straggler_prob = 0.5;
                FaultInjector::new(plan).decide(0, 0) == Some(MachineFault::Straggler)
            })
            .expect("some seed straggles machine 0");
        let mut plan = FaultPlan::new(seed);
        plan.straggler_prob = 0.5;
        plan.straggler_ticks = 17;
        let out = run_machine_with_faults(
            &FaultInjector::new(plan),
            &RetryPolicy::default(),
            0,
            || "late",
        );
        assert_eq!(out.summary, Some("late"));
        assert_eq!(out.ticks, 17);
        assert_eq!(out.retried, 0);
        assert!(out.recovered(), "a straggle counts as an injected fault");
    }

    #[test]
    fn report_absorbs_outcomes_in_machine_order() {
        let mut report = FaultReport::new(11);
        report.absorb(
            0,
            &MachineOutcome {
                summary: Some(()),
                injected: 2,
                retried: 2,
                ticks: 30,
            },
        );
        report.absorb::<()>(
            1,
            &MachineOutcome {
                summary: None,
                injected: 3,
                retried: 2,
                ticks: 30,
            },
        );
        assert_eq!(report.injected, 5);
        assert_eq!(report.retried, 4);
        assert_eq!(report.recovered, 1);
        assert_eq!(report.lost_machines, vec![1]);
        assert_eq!(report.ticks, 60);
        assert!(report.degraded);
    }

    #[test]
    fn fault_report_round_trips_through_json() {
        let mut report = FaultReport::new(5);
        report.lost_machines = vec![2];
        report.degraded = true;
        report.achieved_vs_fault_free = None;
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("\"achieved_vs_fault_free\":null"), "{json}");
        let back: FaultReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, report);
    }

    #[test]
    fn segment_plan_shares_the_fault_seed() {
        let mut plan = FaultPlan::new(77);
        plan.segment_io_prob = 0.25;
        plan.segment_checksum_prob = 0.125;
        let seg = plan.segment_plan();
        assert_eq!(seg.seed, 77);
        assert_eq!(seg.io_prob, 0.25);
        assert_eq!(seg.checksum_prob, 0.125);
        assert!(plan.is_armed());
    }
}
