//! Checkpoint/resume for out-of-core protocol runs.
//!
//! After every completed leaf, [`crate::coordinator::ArenaProtocol`] can
//! persist the streaming composition's full pending state — which leaves are
//! done, the live coresets of every tree level, the communication recorded so
//! far, and the fault counters — so a killed run resumes exactly where it
//! stopped and produces the **bit-identical** final answer (pinned by the
//! kill-at-every-node test in `tests/faults.rs`).
//!
//! Format (`RCCKPT01`, all integers little-endian):
//!
//! | field                         | bytes                                  |
//! |-------------------------------|----------------------------------------|
//! | magic `RCCKPT01`              | 8                                      |
//! | problem tag (0 = matching, 1 = vertex cover) | 1                       |
//! | n, k, m, seed, fan_in, fault_seed | 6 × 8                              |
//! | pushed, injected, retried, recovered, ticks | 5 × 8                    |
//! | lost machines                 | 8 (count) + 8 each                     |
//! | per-message words             | 8 (count) + 8 each                     |
//! | per-message bits              | 8 (count) + 8 each                     |
//! | pending levels                | 8 (count), then per level: 8 (count) + items |
//! | CRC-32 of everything above    | 4                                      |
//!
//! Writes are atomic (`<path>.tmp` then rename), so a crash mid-write leaves
//! the previous checkpoint intact. Loads are *lenient by design*: a missing,
//! truncated, checksum-corrupt, or parameter-mismatched file yields `None`
//! and the run simply starts fresh — a bad checkpoint must never be able to
//! wedge a protocol.

use crate::comm::CommunicationCost;
use crate::error::ProtocolError;
use coresets::vc_coreset::VcCoresetOutput;
use graph::arena_file::crc32;
use graph::{Edge, Graph};

/// File magic of the checkpoint format.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"RCCKPT01";

/// Identity of the run a checkpoint belongs to. A checkpoint is only resumed
/// when every field matches — a checkpoint from a different graph, seed,
/// fan-in or fault universe is silently discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointKey {
    /// Problem tag ([`CheckpointItem::PROBLEM`]).
    pub problem: u8,
    /// Vertices of the arena graph.
    pub n: u64,
    /// Machines (arena segments).
    pub k: u64,
    /// Edges of the arena graph.
    pub m: u64,
    /// Protocol seed.
    pub seed: u64,
    /// Composition fan-in.
    pub fan_in: u64,
    /// Fault-universe seed.
    pub fault_seed: u64,
}

/// Snapshot of an in-flight arena run: everything needed to resume the
/// streaming composition after the last fully processed leaf.
#[derive(Debug, Clone)]
pub struct ArenaCheckpoint<T> {
    /// Leaves fully processed (loaded, summarized, pushed, checkpointed).
    pub pushed: usize,
    /// Live (pending) coresets of every composition-tree level.
    pub pending: Vec<Vec<T>>,
    /// Communication recorded for the processed leaves.
    pub communication: CommunicationCost,
    /// Faults injected so far.
    pub injected: u64,
    /// Re-executions performed so far.
    pub retried: u64,
    /// Machines that failed at least once but delivered.
    pub recovered: u64,
    /// Simulated ticks spent so far.
    pub ticks: u64,
    /// Machines permanently lost so far, in index order.
    pub lost_machines: Vec<usize>,
}

/// Sequential little-endian reader over a checkpoint body; every take
/// returns `None` past the end, which the loader treats as corruption.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    fn take_u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn take_u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let chunk: [u8; 8] = self.bytes.get(self.pos..end)?.try_into().ok()?;
        self.pos = end;
        Some(u64::from_le_bytes(chunk))
    }

    fn take_u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let chunk: [u8; 4] = self.bytes.get(self.pos..end)?.try_into().ok()?;
        self.pos = end;
        Some(u32::from_le_bytes(chunk))
    }

    /// A length prefix, bounded by the bytes actually remaining so corrupt
    /// counts cannot trigger huge allocations.
    fn take_count(&mut self, min_item_bytes: usize) -> Option<usize> {
        let count = usize::try_from(self.take_u64()?).ok()?;
        let remaining = self.bytes.len() - self.pos;
        if count.checked_mul(min_item_bytes.max(1))? > remaining {
            return None;
        }
        Some(count)
    }

    fn take_u64_vec(&mut self) -> Option<Vec<u64>> {
        let count = self.take_count(8)?;
        (0..count).map(|_| self.take_u64()).collect()
    }

    fn fully_consumed(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64_slice(out: &mut Vec<u8>, xs: &[u64]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_u64(out, x);
    }
}

fn encode_graph(g: &Graph, out: &mut Vec<u8>) {
    put_u64(out, g.n() as u64);
    put_u64(out, g.m() as u64);
    for e in g.edges() {
        out.extend_from_slice(&e.u.to_le_bytes());
        out.extend_from_slice(&e.v.to_le_bytes());
    }
}

fn decode_graph(r: &mut ByteReader<'_>) -> Option<Graph> {
    let n = usize::try_from(r.take_u64()?).ok()?;
    let m = {
        let m = usize::try_from(r.take_u64()?).ok()?;
        let remaining = r.bytes.len() - r.pos;
        if m.checked_mul(8)? > remaining {
            return None;
        }
        m
    };
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = r.take_u32()?;
        let v = r.take_u32()?;
        if u >= v || v as usize >= n {
            return None;
        }
        edges.push(Edge { u, v });
    }
    // Bounds and canonical order were just validated; edge order must be
    // preserved exactly for bit-identical resumption, so skip the
    // deduplicating constructor.
    Some(Graph::from_edges_unchecked(n, edges))
}

/// A coreset type that can live inside a checkpoint.
pub trait CheckpointItem: Sized {
    /// Problem tag stored in the header (0 = matching, 1 = vertex cover), so
    /// a matching checkpoint can never resume a vertex-cover run.
    const PROBLEM: u8;

    /// Appends this item's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one item; `None` marks the checkpoint corrupt.
    fn decode(r: &mut ByteReader<'_>) -> Option<Self>;
}

impl CheckpointItem for Graph {
    const PROBLEM: u8 = 0;

    fn encode(&self, out: &mut Vec<u8>) {
        encode_graph(self, out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        decode_graph(r)
    }
}

impl CheckpointItem for VcCoresetOutput {
    const PROBLEM: u8 = 1;

    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.fixed_vertices.len() as u64);
        for &v in &self.fixed_vertices {
            out.extend_from_slice(&v.to_le_bytes());
        }
        encode_graph(&self.residual, out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let count = r.take_count(4)?;
        let fixed_vertices = (0..count)
            .map(|_| r.take_u32())
            .collect::<Option<Vec<_>>>()?;
        let residual = decode_graph(r)?;
        Some(VcCoresetOutput {
            fixed_vertices,
            residual,
        })
    }
}

fn encode_checkpoint<T: CheckpointItem>(key: &CheckpointKey, ck: &ArenaCheckpoint<T>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.push(key.problem);
    for x in [key.n, key.k, key.m, key.seed, key.fan_in, key.fault_seed] {
        put_u64(&mut out, x);
    }
    for x in [
        ck.pushed as u64,
        ck.injected,
        ck.retried,
        ck.recovered,
        ck.ticks,
    ] {
        put_u64(&mut out, x);
    }
    let lost: Vec<u64> = ck.lost_machines.iter().map(|&m| m as u64).collect();
    put_u64_slice(&mut out, &lost);
    put_u64_slice(&mut out, &ck.communication.per_machine_words);
    put_u64_slice(&mut out, &ck.communication.per_machine_bits);
    put_u64(&mut out, ck.pending.len() as u64);
    for level in &ck.pending {
        put_u64(&mut out, level.len() as u64);
        for item in level {
            item.encode(&mut out);
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_checkpoint<T: CheckpointItem>(
    key: &CheckpointKey,
    bytes: &[u8],
) -> Option<ArenaCheckpoint<T>> {
    if bytes.len() < CHECKPOINT_MAGIC.len() + 4 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().ok()?);
    if crc32(body) != stored {
        return None;
    }
    let mut r = ByteReader::new(body);
    let mut magic = [0u8; 8];
    for b in &mut magic {
        *b = r.take_u8()?;
    }
    if magic != CHECKPOINT_MAGIC {
        return None;
    }
    let found = CheckpointKey {
        problem: r.take_u8()?,
        n: r.take_u64()?,
        k: r.take_u64()?,
        m: r.take_u64()?,
        seed: r.take_u64()?,
        fan_in: r.take_u64()?,
        fault_seed: r.take_u64()?,
    };
    if found != *key {
        return None;
    }
    let pushed = usize::try_from(r.take_u64()?).ok()?;
    let injected = r.take_u64()?;
    let retried = r.take_u64()?;
    let recovered = r.take_u64()?;
    let ticks = r.take_u64()?;
    let lost_machines = r
        .take_u64_vec()?
        .into_iter()
        .map(|m| usize::try_from(m).ok())
        .collect::<Option<Vec<_>>>()?;
    let communication = CommunicationCost {
        per_machine_words: r.take_u64_vec()?,
        per_machine_bits: r.take_u64_vec()?,
    };
    let levels = r.take_count(8)?;
    let mut pending = Vec::with_capacity(levels);
    for _ in 0..levels {
        let items = r.take_count(1)?;
        let level = (0..items)
            .map(|_| T::decode(&mut r))
            .collect::<Option<Vec<_>>>()?;
        pending.push(level);
    }
    if !r.fully_consumed() {
        return None;
    }
    Some(ArenaCheckpoint {
        pushed,
        pending,
        communication,
        injected,
        retried,
        recovered,
        ticks,
        lost_machines,
    })
}

/// Atomically persists a checkpoint: the bytes land in `<path>.tmp` first and
/// are renamed over `path`, so a crash mid-write never destroys the previous
/// resume point.
pub fn save_checkpoint<T: CheckpointItem>(
    path: &std::path::Path,
    key: &CheckpointKey,
    ck: &ArenaCheckpoint<T>,
) -> Result<(), ProtocolError> {
    let bytes = encode_checkpoint(key, ck);
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    std::fs::write(&tmp, &bytes).map_err(|e| ProtocolError::Checkpoint {
        context: format!("write {}: {e}", tmp.display()),
    })?;
    std::fs::rename(&tmp, path).map_err(|e| ProtocolError::Checkpoint {
        context: format!("rename {} over {}: {e}", tmp.display(), path.display()),
    })
}

/// Loads the checkpoint at `path` if it exists, verifies, and belongs to the
/// run identified by `key`. Any defect — missing file, bad magic, failed
/// CRC, truncation, parameter mismatch — yields `None`: the caller starts
/// fresh instead of trusting damaged state.
pub fn load_checkpoint<T: CheckpointItem>(
    path: &std::path::Path,
    key: &CheckpointKey,
) -> Option<ArenaCheckpoint<T>> {
    let bytes = std::fs::read(path).ok()?;
    decode_checkpoint(key, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_key() -> CheckpointKey {
        CheckpointKey {
            problem: Graph::PROBLEM,
            n: 100,
            k: 8,
            m: 407,
            seed: 42,
            fan_in: 2,
            fault_seed: 7,
        }
    }

    fn demo_checkpoint() -> ArenaCheckpoint<Graph> {
        let g1 = Graph::from_pairs(100, vec![(0, 1), (2, 3), (5, 9)]).unwrap();
        let g2 = Graph::from_pairs(100, vec![(10, 20)]).unwrap();
        let mut communication = CommunicationCost::default();
        communication.record_message(&crate::comm::CostModel::for_n(100), 3, 0);
        communication.record_message(&crate::comm::CostModel::for_n(100), 1, 0);
        ArenaCheckpoint {
            pushed: 2,
            pending: vec![vec![g1, g2], vec![], vec![]],
            communication,
            injected: 3,
            retried: 2,
            recovered: 1,
            ticks: 12,
            lost_machines: vec![4],
        }
    }

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rc_ckpt_{}_{tag}.bin", std::process::id()))
    }

    #[test]
    fn round_trips_exactly() {
        let path = tmp_path("round_trip");
        let key = demo_key();
        let ck = demo_checkpoint();
        save_checkpoint(&path, &key, &ck).unwrap();
        let back: ArenaCheckpoint<Graph> = load_checkpoint(&path, &key).expect("loads");
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back.pushed, ck.pushed);
        assert_eq!(back.pending.len(), ck.pending.len());
        for (a, b) in back.pending.iter().zip(&ck.pending) {
            assert_eq!(a.len(), b.len());
            for (ga, gb) in a.iter().zip(b) {
                assert_eq!(ga.n(), gb.n());
                assert_eq!(ga.edges(), gb.edges(), "edge order must survive");
            }
        }
        assert_eq!(back.communication, ck.communication);
        assert_eq!(
            (back.injected, back.retried, back.recovered, back.ticks),
            (3, 2, 1, 12)
        );
        assert_eq!(back.lost_machines, vec![4]);
    }

    #[test]
    fn vc_items_round_trip() {
        let path = tmp_path("vc_round_trip");
        let key = CheckpointKey {
            problem: VcCoresetOutput::PROBLEM,
            ..demo_key()
        };
        let ck = ArenaCheckpoint {
            pushed: 1,
            pending: vec![vec![VcCoresetOutput {
                fixed_vertices: vec![7, 3, 99],
                residual: Graph::from_pairs(100, vec![(1, 2)]).unwrap(),
            }]],
            communication: CommunicationCost::default(),
            injected: 0,
            retried: 0,
            recovered: 0,
            ticks: 0,
            lost_machines: vec![],
        };
        save_checkpoint(&path, &key, &ck).unwrap();
        let back: ArenaCheckpoint<VcCoresetOutput> = load_checkpoint(&path, &key).expect("loads");
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back.pending[0][0].fixed_vertices, vec![7, 3, 99]);
        assert_eq!(back.pending[0][0].residual.m(), 1);
    }

    #[test]
    fn missing_file_is_a_fresh_start() {
        let path = tmp_path("missing_never_created");
        assert!(load_checkpoint::<Graph>(&path, &demo_key()).is_none());
    }

    #[test]
    fn every_single_byte_corruption_is_rejected_or_equal() {
        let path = tmp_path("bitflip");
        let key = demo_key();
        save_checkpoint(&path, &key, &demo_checkpoint()).unwrap();
        let clean = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_checkpoint::<Graph>(&key, &bad).is_none(),
                "flip at byte {i} must be caught by the CRC"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let key = demo_key();
        let full = encode_checkpoint(&key, &demo_checkpoint());
        for cut in 0..full.len() {
            assert!(
                decode_checkpoint::<Graph>(&key, &full[..cut]).is_none(),
                "truncation to {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn mismatched_run_parameters_are_discarded() {
        let path = tmp_path("mismatch");
        let key = demo_key();
        save_checkpoint(&path, &key, &demo_checkpoint()).unwrap();
        for bad in [
            CheckpointKey { seed: 43, ..key },
            CheckpointKey { k: 9, ..key },
            CheckpointKey { fan_in: 3, ..key },
            CheckpointKey {
                fault_seed: 8,
                ..key
            },
            CheckpointKey {
                problem: VcCoresetOutput::PROBLEM,
                ..key
            },
        ] {
            assert!(
                load_checkpoint::<Graph>(&path, &bad).is_none(),
                "{bad:?} must not resume {key:?}"
            );
        }
        assert!(load_checkpoint::<Graph>(&path, &key).is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_is_atomic_over_an_existing_checkpoint() {
        let path = tmp_path("atomic");
        let key = demo_key();
        save_checkpoint(&path, &key, &demo_checkpoint()).unwrap();
        let mut later = demo_checkpoint();
        later.pushed = 5;
        save_checkpoint(&path, &key, &later).unwrap();
        let back: ArenaCheckpoint<Graph> = load_checkpoint(&path, &key).expect("loads");
        assert_eq!(back.pushed, 5);
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        assert!(
            !std::path::PathBuf::from(tmp_name).exists(),
            "tmp file must be renamed away"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
