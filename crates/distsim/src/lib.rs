//! Distributed-computation simulators for the coreset reproduction.
//!
//! The paper evaluates its coresets in two computation models, neither of
//! which requires real hardware to measure the quantities the paper talks
//! about (approximation ratio, communication volume, number of rounds, and
//! per-machine memory). This crate simulates both models faithfully:
//!
//! * [`coordinator`] — the **simultaneous communication / coordinator model**:
//!   the input is randomly partitioned across `k` machines, every machine
//!   sends one message (its coreset) to the coordinator, and the coordinator
//!   outputs the answer. Communication is accounted in 64-bit words
//!   ([`comm`]).
//! * [`mapreduce`] — the **MapReduce model** of Karloff et al. as used by the
//!   paper (Section 1.1, "MapReduce Framework"): machines with `Õ(n√n)`
//!   memory, computation proceeds in rounds, and the paper's algorithm needs
//!   two rounds (one if the input is already randomly distributed).
//! * [`protocols`] — concrete protocols: the paper's coreset protocols for
//!   matching and vertex cover, the communication-efficient variants of
//!   Remarks 5.2 and 5.8, and the *filtering* baseline of Lattanzi et al.
//!   (the prior state of the art the paper compares rounds against).
//! * [`report`] — serde-serialisable run reports consumed by the experiment
//!   binaries in the `bench` crate.
//! * [`service`] — the edge-churn serving driver: batched updates through a
//!   [`graph::ChurnPartition`] overlay, instant incremental answers from a
//!   [`dynamic::DynamicCover`], and dirty-piece-only coreset rebuilds through
//!   fingerprint-keyed caches (experiment E18).
//! * [`faults`], [`checkpoint`], [`error`] — the fault-tolerant runtime:
//!   deterministic fault injection keyed by `(fault_seed, site)`, retry by
//!   replaying per-machine RNG streams, degraded composition over survivors,
//!   and checksummed checkpoint/resume for out-of-core runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod comm;
pub mod coordinator;
pub mod error;
pub mod faults;
pub mod mapreduce;
pub mod protocols;
pub mod report;
pub mod service;

pub use checkpoint::{ArenaCheckpoint, CheckpointItem, CheckpointKey};
pub use comm::{CommunicationCost, CostModel};
pub use coordinator::{
    ArenaProtocol, ComposeMode, CoordinatorProtocol, FaultRunOptions, FaultyRun, SimultaneousRun,
};
pub use error::ProtocolError;
pub use faults::{
    DegradedComposition, FaultInjector, FaultPlan, FaultReport, MachineFault, RetryPolicy,
};
pub use mapreduce::{MapReduceConfig, MapReduceOutcome, MapReduceSimulator};
pub use report::{MatchingProtocolReport, VertexCoverProtocolReport};
pub use service::{naive_full_round, BatchOutcome, GraphService, GraphServiceConfig};
