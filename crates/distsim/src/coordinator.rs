//! The coordinator (simultaneous communication) model.
//!
//! A [`CoordinatorProtocol`] run proceeds exactly as in the paper's model
//! (Section 2, "Communication Complexity"):
//!
//! 1. the edge set is **randomly partitioned** across `k` machines,
//! 2. every machine simultaneously sends one message to the coordinator —
//!    here, its coreset — with its size charged to the communication cost,
//! 3. the coordinator combines the messages and outputs the answer; no
//!    further interaction happens.
//!
//! Machines execute **simultaneously on real OS threads**: the vendored rayon
//! backend spawns a scoped pool of `std::thread` workers (worker count from
//! `RC_THREADS` / `RAYON_NUM_THREADS`, or every available core) that race a
//! **work-stealing chunk queue** over the machines — a worker that finishes a
//! sparse machine immediately claims more work, so one dense machine of a
//! skewed partition no longer serializes the fan-out (experiment E15,
//! `exp_sched_scaling`). All randomness is
//! fixed *before* that fan-out — the edge partition is drawn from the run
//! seed, and machine `i`'s private `ChaCha8Rng` stream is derived from
//! `(seed, i)` via [`coresets::streams::machine_rng`] — and per-machine
//! messages are collected in machine order, so a run's answer, coreset sizes
//! and communication cost are bit-identical for any thread count or schedule
//! (asserted by `tests/determinism.rs`).
//!
//! Both the per-machine coreset solves and the coordinator's composed solve
//! run on the compacted, epoch-reset, warm-started matching engine
//! ([`matching::MatchingEngine`]; experiment E13): each worker thread reuses
//! one engine across the machines it simulates, and
//! [`coresets::solve_composed_matching`] seeds the final solve with the best
//! machine's matching. The vertex-cover side runs on the analogous
//! `vertexcover::VcEngine` (experiment E14): bucket-queue peeling per
//! machine and a union-free composed 2-approximation at the coordinator,
//! with zero per-round edge-buffer reallocations across the whole run.
//!
//! The coordinator's own composition step is parallel where its sub-solves
//! are independent: the warm-start screen over the received coresets and the
//! per-residual-slice statistics feeding the composed 2-approximation fan
//! out on the same work-stealing pool and reduce deterministically (see
//! `coresets::compose`), so composition answers are also bit-identical at
//! every thread count.

use crate::comm::{CommunicationCost, CostModel};
use coresets::matching_coreset::MatchingCoresetBuilder;
use coresets::streams::{machine_jobs, machine_rng};
use coresets::tree::{merge_matching_coresets, merge_vc_coresets, TreeFolder};
use coresets::vc_coreset::{VcCoresetBuilder, VcCoresetOutput};
use coresets::{
    compose_vertex_cover, solve_composed_matching, tree_compose_vertex_cover, tree_solve_matching,
    CoresetParams,
};
use graph::arena_file::{ArenaFile, SegmentLoader};
use graph::partition::{PartitionStrategy, PartitionedGraph};
use graph::{metrics, Graph, GraphError};
use matching::matching::Matching;
use matching::maximum::MaximumMatchingAlgorithm;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use vertexcover::VertexCover;

/// How the coordinator combines the `k` received coresets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComposeMode {
    /// One flat union of all `k` coresets, solved in a single step (the
    /// paper's literal model).
    #[default]
    Flat,
    /// Hierarchical composition: merge coresets `fan_in` at a time over
    /// `⌈log_f k⌉` levels, re-coreseting each merged union through the same
    /// builder (Mirrokni–Zadimoghaddam associativity), then solve the
    /// `≤ fan_in` roots flat. Bounded per-node memory; bit-identical across
    /// thread counts (see [`coresets::tree`]).
    Tree {
        /// Coresets merged per tree node; must be at least 2.
        fan_in: usize,
    },
}

/// Configuration of one simultaneous-protocol run.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorProtocol {
    /// Number of machines `k`.
    pub k: usize,
    /// How the edges are split across machines (the paper's model is
    /// [`PartitionStrategy::Random`]; the adversarial strategy is provided for
    /// the negative-control experiments).
    pub strategy: PartitionStrategy,
    /// How the coordinator composes the received coresets (flat union by
    /// default).
    pub compose: ComposeMode,
}

impl CoordinatorProtocol {
    /// The paper's model: random partitioning across `k` machines.
    pub fn random(k: usize) -> Self {
        CoordinatorProtocol {
            k,
            strategy: PartitionStrategy::Random,
            compose: ComposeMode::Flat,
        }
    }

    /// Adversarial (sorted-chunk) partitioning across `k` machines.
    pub fn adversarial(k: usize) -> Self {
        CoordinatorProtocol {
            k,
            strategy: PartitionStrategy::Adversarial,
            compose: ComposeMode::Flat,
        }
    }

    /// Random partitioning with hierarchical (tree) composition.
    pub fn tree(k: usize, fan_in: usize) -> Self {
        CoordinatorProtocol::random(k).with_compose(ComposeMode::Tree { fan_in })
    }

    /// Returns this protocol with the given composition mode.
    pub fn with_compose(mut self, compose: ComposeMode) -> Self {
        self.compose = compose;
        self
    }

    /// Runs the matching protocol: each machine sends the coreset built by
    /// `builder`, the coordinator extracts a maximum matching of the union.
    pub fn run_matching<B: MatchingCoresetBuilder>(
        &self,
        g: &Graph,
        builder: &B,
        seed: u64,
    ) -> Result<SimultaneousRun<Matching>, GraphError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // One edge permutation into the arena; each machine computes on a
        // zero-copy view of its slice.
        let partition = PartitionedGraph::new(g, self.k, self.strategy, &mut rng)?;
        let params = CoresetParams::new(g.n(), self.k);
        let model = CostModel::for_n(g.n());

        // Machine RNG streams are derived from (seed, machine) before the
        // fan-out; the parallel stage consumes only machine-local state.
        let coresets: Vec<Graph> = machine_jobs(&partition.views(), seed)
            .into_par_iter()
            .map(|(i, piece, mut rng)| builder.build(*piece, &params, i, &mut rng))
            .collect();

        let mut communication = CommunicationCost::default();
        for c in &coresets {
            communication.record_message(&model, c.m(), 0);
        }
        let answer = match self.compose {
            ComposeMode::Flat => solve_composed_matching(&coresets, MaximumMatchingAlgorithm::Auto),
            ComposeMode::Tree { fan_in } => tree_solve_matching(
                g.n(),
                coresets,
                builder,
                &params,
                seed,
                fan_in,
                MaximumMatchingAlgorithm::Auto,
            ),
        };
        Ok(SimultaneousRun {
            answer,
            communication,
            piece_sizes: partition.piece_sizes(),
        })
    }

    /// Runs the vertex-cover protocol: each machine sends the coreset built by
    /// `builder` (fixed vertices + residual edges), the coordinator unions the
    /// residuals, 2-approximates a cover of the union, and adds the fixed
    /// vertices.
    pub fn run_vertex_cover<B: VcCoresetBuilder>(
        &self,
        g: &Graph,
        builder: &B,
        seed: u64,
    ) -> Result<SimultaneousRun<VertexCover>, GraphError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let partition = PartitionedGraph::new(g, self.k, self.strategy, &mut rng)?;
        let params = CoresetParams::new(g.n(), self.k);
        let model = CostModel::for_n(g.n());

        let outputs: Vec<VcCoresetOutput> = machine_jobs(&partition.views(), seed)
            .into_par_iter()
            .map(|(i, piece, mut rng)| builder.build(*piece, &params, i, &mut rng))
            .collect();

        let mut communication = CommunicationCost::default();
        for o in &outputs {
            communication.record_message(&model, o.residual.m(), o.fixed_vertices.len());
        }
        let answer = match self.compose {
            ComposeMode::Flat => compose_vertex_cover(&outputs),
            ComposeMode::Tree { fan_in } => {
                tree_compose_vertex_cover(g.n(), outputs, builder, &params, seed, fan_in)
            }
        };
        Ok(SimultaneousRun {
            answer,
            communication,
            piece_sizes: partition.piece_sizes(),
        })
    }
}

/// Out-of-core protocol runner: the partition lives in an on-disk
/// [`ArenaFile`], machine pieces are streamed one at a time through a
/// [`SegmentLoader`], and composition is hierarchical by default — so peak
/// memory is one segment plus the live coresets of `log k` levels, never the
/// full arena (experiment E16's in-binary bound).
///
/// The leaf coresets use the same `(seed, machine)` streams and the tree the
/// same `(seed, level, node)` streams as the in-memory
/// [`CoordinatorProtocol`] over the same partition, so for an arena written
/// from that partition the answers are **bit-identical** to the in-memory
/// run — the file format and the bounded-memory schedule are invisible in
/// the output (asserted by E16 and `tests/tree_compose.rs`).
///
/// Leaves are built sequentially (each needs the loader's single resident
/// segment); the composition-side solves inside each merge and the final
/// root solve still ride the work-stealing pool.
#[derive(Debug, Clone, Copy)]
pub struct ArenaProtocol {
    /// How the coordinator composes the received coresets.
    pub compose: ComposeMode,
}

impl ArenaProtocol {
    /// Hierarchical composition with the given fan-in (the mode E16 measures).
    pub fn tree(fan_in: usize) -> Self {
        ArenaProtocol {
            compose: ComposeMode::Tree { fan_in },
        }
    }

    /// Flat composition (all coresets resident at once; the arena is still
    /// streamed one segment at a time).
    pub fn flat() -> Self {
        ArenaProtocol {
            compose: ComposeMode::Flat,
        }
    }

    /// Runs the matching protocol from an on-disk arena: stream each
    /// machine's segment, build its coreset, drop the segment, compose.
    ///
    /// `k` and `n` come from the arena header; every coreset buffer alive at
    /// the coordinator (plus merge scratch) is charged to
    /// [`graph::metrics::resident_edges`], alongside the loader's segment
    /// accounting.
    pub fn run_matching<B: MatchingCoresetBuilder>(
        &self,
        arena: &ArenaFile,
        builder: &B,
        seed: u64,
    ) -> Result<SimultaneousRun<Matching>, GraphError> {
        let n = arena.n();
        let params = CoresetParams::new(n, arena.k());
        let model = CostModel::for_n(n);
        let mut communication = CommunicationCost::default();
        let fan_in = match self.compose {
            ComposeMode::Tree { fan_in } => fan_in,
            // Flat composition is the degenerate tree whose "root set" is all
            // k coresets: a fan-in wide enough that no merge round fires.
            ComposeMode::Flat => arena.k().max(2),
        };
        let merge = |level: usize, node: usize, group: Vec<Graph>| {
            let union_edges: usize = group.iter().map(Graph::m).sum();
            metrics::record_resident_edges_acquired(union_edges);
            let merged = merge_matching_coresets(n, &params, builder, seed, level, node, &group);
            metrics::record_resident_edges_released(union_edges);
            metrics::record_resident_edges_acquired(merged.m());
            metrics::record_resident_edges_released(union_edges);
            merged
        };
        let mut folder = TreeFolder::new(arena.k(), fan_in, merge);
        let mut loader = SegmentLoader::new(arena)?;
        for i in 0..arena.k() {
            let piece = loader.load(i)?;
            let coreset = builder.build(piece, &params, i, &mut machine_rng(seed, i));
            communication.record_message(&model, coreset.m(), 0);
            metrics::record_resident_edges_acquired(coreset.m());
            folder.push(coreset);
        }
        loader.release();
        let roots = folder.finish();
        let root_edges: usize = roots.iter().map(Graph::m).sum();
        // The final flat solve's compaction scratch is one more union pass.
        metrics::record_resident_edges_acquired(root_edges);
        let answer = solve_composed_matching(&roots, MaximumMatchingAlgorithm::Auto);
        metrics::record_resident_edges_released(2 * root_edges);
        Ok(SimultaneousRun {
            answer,
            communication,
            piece_sizes: arena.piece_sizes(),
        })
    }

    /// Runs the vertex-cover protocol from an on-disk arena (same schedule
    /// and accounting as [`ArenaProtocol::run_matching`]).
    pub fn run_vertex_cover<B: VcCoresetBuilder>(
        &self,
        arena: &ArenaFile,
        builder: &B,
        seed: u64,
    ) -> Result<SimultaneousRun<VertexCover>, GraphError> {
        let n = arena.n();
        let params = CoresetParams::new(n, arena.k());
        let model = CostModel::for_n(n);
        let mut communication = CommunicationCost::default();
        let fan_in = match self.compose {
            ComposeMode::Tree { fan_in } => fan_in,
            ComposeMode::Flat => arena.k().max(2),
        };
        let merge = |level: usize, node: usize, group: Vec<VcCoresetOutput>| {
            let union_edges: usize = group.iter().map(|o| o.residual.m()).sum();
            metrics::record_resident_edges_acquired(union_edges);
            let merged = merge_vc_coresets(n, &params, builder, seed, level, node, group);
            metrics::record_resident_edges_released(union_edges);
            metrics::record_resident_edges_acquired(merged.residual.m());
            metrics::record_resident_edges_released(union_edges);
            merged
        };
        let mut folder = TreeFolder::new(arena.k(), fan_in, merge);
        let mut loader = SegmentLoader::new(arena)?;
        for i in 0..arena.k() {
            let piece = loader.load(i)?;
            let output = builder.build(piece, &params, i, &mut machine_rng(seed, i));
            communication.record_message(&model, output.residual.m(), output.fixed_vertices.len());
            metrics::record_resident_edges_acquired(output.residual.m());
            folder.push(output);
        }
        loader.release();
        let roots = folder.finish();
        let root_edges: usize = roots.iter().map(|o| o.residual.m()).sum();
        let answer = compose_vertex_cover(&roots);
        metrics::record_resident_edges_released(root_edges);
        Ok(SimultaneousRun {
            answer,
            communication,
            piece_sizes: arena.piece_sizes(),
        })
    }
}

/// The result of one simultaneous-protocol run.
#[derive(Debug, Clone)]
pub struct SimultaneousRun<T> {
    /// The coordinator's answer (a matching or a vertex cover).
    pub answer: T,
    /// Communication charged to the machines' messages.
    pub communication: CommunicationCost,
    /// Number of edges each machine received (the input partition sizes).
    pub piece_sizes: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use coresets::matching_coreset::MaximumMatchingCoreset;
    use coresets::vc_coreset::PeelingVcCoreset;
    use graph::gen::er::gnp;
    use matching::maximum::maximum_matching;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn matching_protocol_communication_is_o_of_nk() {
        let mut r = rng(1);
        let n = 600;
        let g = gnp(n, 0.02, &mut r);
        let k = 6;
        let run = CoordinatorProtocol::random(k)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 42)
            .unwrap();
        assert!(run.answer.is_valid_for(&g));
        // Each message is a matching: at most n/2 edges = n words.
        assert!(run.communication.max_message_words() <= n as u64);
        assert!(run.communication.total_words() <= (n * k) as u64);
        assert_eq!(run.communication.message_count(), k);
        // Approximation guarantee of Theorem 1.
        let opt = maximum_matching(&g).len();
        assert!(9 * run.answer.len() >= opt);
    }

    #[test]
    fn vertex_cover_protocol_covers_and_accounts() {
        let mut r = rng(2);
        let n = 800;
        let g = gnp(n, 0.015, &mut r);
        let k = 5;
        let run = CoordinatorProtocol::random(k)
            .run_vertex_cover(&g, &PeelingVcCoreset::new(), 7)
            .unwrap();
        assert!(run.answer.covers(&g));
        assert_eq!(run.communication.message_count(), k);
        assert!(run.communication.total_words() > 0);
        assert_eq!(run.piece_sizes.iter().sum::<usize>(), g.m());
    }

    #[test]
    fn runs_are_reproducible() {
        let mut r = rng(3);
        let g = gnp(300, 0.03, &mut r);
        let p = CoordinatorProtocol::random(4);
        let a = p
            .run_matching(&g, &MaximumMatchingCoreset::new(), 11)
            .unwrap();
        let b = p
            .run_matching(&g, &MaximumMatchingCoreset::new(), 11)
            .unwrap();
        assert_eq!(a.answer.len(), b.answer.len());
        assert_eq!(a.communication, b.communication);
    }

    #[test]
    fn adversarial_strategy_is_supported() {
        let mut r = rng(4);
        let g = gnp(200, 0.05, &mut r);
        let run = CoordinatorProtocol::adversarial(4)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 1)
            .unwrap();
        assert!(run.answer.is_valid_for(&g));
    }

    #[test]
    fn zero_machines_is_rejected() {
        let g = gnp(50, 0.1, &mut rng(5));
        assert!(CoordinatorProtocol::random(0)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 0)
            .is_err());
    }

    #[test]
    fn tree_mode_runs_are_valid_and_reproducible() {
        let g = gnp(500, 0.02, &mut rng(6));
        let p = CoordinatorProtocol::tree(9, 2);
        let a = p
            .run_matching(&g, &MaximumMatchingCoreset::new(), 13)
            .unwrap();
        let b = p
            .run_matching(&g, &MaximumMatchingCoreset::new(), 13)
            .unwrap();
        assert!(a.answer.is_valid_for(&g));
        assert_eq!(a.answer.edges(), b.answer.edges());
        // Communication is charged to the leaf messages only: same as flat.
        let flat = CoordinatorProtocol::random(9)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 13)
            .unwrap();
        assert_eq!(a.communication, flat.communication);

        let cover = p
            .run_vertex_cover(&g, &PeelingVcCoreset::new(), 13)
            .unwrap();
        assert!(cover.answer.covers(&g));
    }

    /// Serializes the arena tests: they all touch the process-global
    /// resident-edge counters, and the peak test needs them quiescent.
    static ARENA_METRICS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn arena_lock() -> std::sync::MutexGuard<'static, ()> {
        ARENA_METRICS_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Writes `g`'s partition (drawn exactly as `run_matching` draws it) to
    /// an arena file and returns the open arena plus its path.
    fn arena_of(
        g: &Graph,
        k: usize,
        seed: u64,
        tag: &str,
    ) -> (graph::ArenaFile, std::path::PathBuf) {
        let mut r = rng(seed);
        let partition =
            graph::PartitionedGraph::new(g, k, graph::partition::PartitionStrategy::Random, &mut r)
                .unwrap();
        let path =
            std::env::temp_dir().join(format!("rc_coord_arena_{}_{tag}.bin", std::process::id()));
        graph::write_arena_file(&path, &partition).unwrap();
        (ArenaFile::open(&path).unwrap(), path)
    }

    #[test]
    fn arena_flat_matching_is_bit_identical_to_in_memory_flat() {
        let _guard = arena_lock();
        let g = gnp(400, 0.025, &mut rng(7));
        let (k, seed) = (6, 21);
        let mem = CoordinatorProtocol::random(k)
            .run_matching(&g, &MaximumMatchingCoreset::new(), seed)
            .unwrap();
        let (arena, path) = arena_of(&g, k, seed, "flat_match");
        let ooc = ArenaProtocol::flat()
            .run_matching(&arena, &MaximumMatchingCoreset::new(), seed)
            .unwrap();
        std::fs::remove_file(path).unwrap();
        assert_eq!(mem.answer.edges(), ooc.answer.edges());
        assert_eq!(mem.communication, ooc.communication);
        assert_eq!(mem.piece_sizes, ooc.piece_sizes);
    }

    #[test]
    fn arena_tree_matching_is_bit_identical_to_in_memory_tree() {
        let _guard = arena_lock();
        let g = gnp(450, 0.02, &mut rng(8));
        let (k, fan_in, seed) = (9, 2, 33);
        let mem = CoordinatorProtocol::tree(k, fan_in)
            .run_matching(&g, &MaximumMatchingCoreset::new(), seed)
            .unwrap();
        let (arena, path) = arena_of(&g, k, seed, "tree_match");
        let ooc = ArenaProtocol::tree(fan_in)
            .run_matching(&arena, &MaximumMatchingCoreset::new(), seed)
            .unwrap();
        std::fs::remove_file(path).unwrap();
        assert_eq!(mem.answer.edges(), ooc.answer.edges());
        assert_eq!(mem.communication, ooc.communication);
    }

    #[test]
    fn arena_tree_vertex_cover_is_bit_identical_to_in_memory_tree() {
        let _guard = arena_lock();
        let g = gnp(500, 0.015, &mut rng(9));
        let (k, fan_in, seed) = (8, 3, 5);
        let mem = CoordinatorProtocol::tree(k, fan_in)
            .run_vertex_cover(&g, &PeelingVcCoreset::new(), seed)
            .unwrap();
        let (arena, path) = arena_of(&g, k, seed, "tree_vc");
        let ooc = ArenaProtocol::tree(fan_in)
            .run_vertex_cover(&arena, &PeelingVcCoreset::new(), seed)
            .unwrap();
        std::fs::remove_file(path).unwrap();
        assert!(mem.answer.covers(&g));
        assert_eq!(mem.answer, ooc.answer);
        assert_eq!(mem.communication, ooc.communication);
    }

    #[test]
    fn arena_tree_peak_resident_stays_bounded() {
        let _guard = arena_lock();
        let g = gnp(600, 0.05, &mut rng(10));
        let (k, fan_in, seed) = (8, 2, 2);
        let (arena, path) = arena_of(&g, k, seed, "peak");
        metrics::reset_peak_resident_edges();
        let before = metrics::resident_edges();
        let run = ArenaProtocol::tree(fan_in)
            .run_matching(&arena, &MaximumMatchingCoreset::new(), seed)
            .unwrap();
        std::fs::remove_file(path).unwrap();
        assert!(!run.answer.is_empty());
        // Everything acquired during the run was released again.
        assert_eq!(metrics::resident_edges(), before);
        // Peak stayed below the full arena plus tree overhead — the bound E16
        // asserts at 10^7-edge scale (levels + 1 live coreset layers of at
        // most n/2 edges each, one segment, merge scratch).
        let levels = coresets::TreePlan::new(k, fan_in).levels();
        let m = arena.m();
        let bound = (2 * (m / k + fan_in * (g.n() / 2) * (levels + 1))) as u64;
        assert!(
            metrics::peak_resident_edges() <= bound,
            "peak {} above bound {bound}",
            metrics::peak_resident_edges()
        );
    }
}
