//! The coordinator (simultaneous communication) model.
//!
//! A [`CoordinatorProtocol`] run proceeds exactly as in the paper's model
//! (Section 2, "Communication Complexity"):
//!
//! 1. the edge set is **randomly partitioned** across `k` machines,
//! 2. every machine simultaneously sends one message to the coordinator —
//!    here, its coreset — with its size charged to the communication cost,
//! 3. the coordinator combines the messages and outputs the answer; no
//!    further interaction happens.
//!
//! Machines execute **simultaneously on real OS threads**: the vendored rayon
//! backend spawns a scoped pool of `std::thread` workers (worker count from
//! `RC_THREADS` / `RAYON_NUM_THREADS`, or every available core) that race a
//! **work-stealing chunk queue** over the machines — a worker that finishes a
//! sparse machine immediately claims more work, so one dense machine of a
//! skewed partition no longer serializes the fan-out (experiment E15,
//! `exp_sched_scaling`). All randomness is
//! fixed *before* that fan-out — the edge partition is drawn from the run
//! seed, and machine `i`'s private `ChaCha8Rng` stream is derived from
//! `(seed, i)` via [`coresets::streams::machine_rng`] — and per-machine
//! messages are collected in machine order, so a run's answer, coreset sizes
//! and communication cost are bit-identical for any thread count or schedule
//! (asserted by `tests/determinism.rs`).
//!
//! Both the per-machine coreset solves and the coordinator's composed solve
//! run on the compacted, epoch-reset, warm-started matching engine
//! ([`matching::MatchingEngine`]; experiment E13): each worker thread reuses
//! one engine across the machines it simulates, and
//! [`coresets::solve_composed_matching`] seeds the final solve with the best
//! machine's matching. The vertex-cover side runs on the analogous
//! `vertexcover::VcEngine` (experiment E14): bucket-queue peeling per
//! machine and a union-free composed 2-approximation at the coordinator,
//! with zero per-round edge-buffer reallocations across the whole run.
//!
//! The coordinator's own composition step is parallel where its sub-solves
//! are independent: the warm-start screen over the received coresets and the
//! per-residual-slice statistics feeding the composed 2-approximation fan
//! out on the same work-stealing pool and reduce deterministically (see
//! `coresets::compose`), so composition answers are also bit-identical at
//! every thread count.

use crate::checkpoint::{
    load_checkpoint, save_checkpoint, ArenaCheckpoint, CheckpointItem, CheckpointKey,
};
use crate::comm::{CommunicationCost, CostModel};
use crate::error::ProtocolError;
use crate::faults::{
    run_machine_with_faults, DegradedComposition, FaultInjector, FaultPlan, FaultReport,
    MachineOutcome, RetryPolicy,
};
use coresets::matching_coreset::MatchingCoresetBuilder;
use coresets::streams::{machine_jobs, machine_rng};
use coresets::tree::{merge_matching_coresets, merge_vc_coresets, TreeFolder};
use coresets::vc_coreset::{VcCoresetBuilder, VcCoresetOutput};
use coresets::{
    compose_vertex_cover, solve_composed_matching, tree_compose_vertex_cover, tree_solve_matching,
    CoresetParams,
};
use graph::arena_file::{ArenaFile, SegmentLoader, SegmentRetryPolicy};
use graph::partition::{PartitionStrategy, PartitionedGraph};
use graph::{metrics, Graph, GraphError};
use matching::matching::Matching;
use matching::maximum::MaximumMatchingAlgorithm;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use vertexcover::VertexCover;

/// How the coordinator combines the `k` received coresets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComposeMode {
    /// One flat union of all `k` coresets, solved in a single step (the
    /// paper's literal model).
    #[default]
    Flat,
    /// Hierarchical composition: merge coresets `fan_in` at a time over
    /// `⌈log_f k⌉` levels, re-coreseting each merged union through the same
    /// builder (Mirrokni–Zadimoghaddam associativity), then solve the
    /// `≤ fan_in` roots flat. Bounded per-node memory; bit-identical across
    /// thread counts (see [`coresets::tree`]).
    Tree {
        /// Coresets merged per tree node; must be at least 2.
        fan_in: usize,
    },
}

/// Configuration of one simultaneous-protocol run.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorProtocol {
    /// Number of machines `k`.
    pub k: usize,
    /// How the edges are split across machines (the paper's model is
    /// [`PartitionStrategy::Random`]; the adversarial strategy is provided for
    /// the negative-control experiments).
    pub strategy: PartitionStrategy,
    /// How the coordinator composes the received coresets (flat union by
    /// default).
    pub compose: ComposeMode,
}

impl CoordinatorProtocol {
    /// The paper's model: random partitioning across `k` machines.
    pub fn random(k: usize) -> Self {
        CoordinatorProtocol {
            k,
            strategy: PartitionStrategy::Random,
            compose: ComposeMode::Flat,
        }
    }

    /// Adversarial (sorted-chunk) partitioning across `k` machines.
    pub fn adversarial(k: usize) -> Self {
        CoordinatorProtocol {
            k,
            strategy: PartitionStrategy::Adversarial,
            compose: ComposeMode::Flat,
        }
    }

    /// Random partitioning with hierarchical (tree) composition.
    pub fn tree(k: usize, fan_in: usize) -> Self {
        CoordinatorProtocol::random(k).with_compose(ComposeMode::Tree { fan_in })
    }

    /// Returns this protocol with the given composition mode.
    pub fn with_compose(mut self, compose: ComposeMode) -> Self {
        self.compose = compose;
        self
    }

    /// Runs the matching protocol: each machine sends the coreset built by
    /// `builder`, the coordinator extracts a maximum matching of the union.
    pub fn run_matching<B: MatchingCoresetBuilder>(
        &self,
        g: &Graph,
        builder: &B,
        seed: u64,
    ) -> Result<SimultaneousRun<Matching>, GraphError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // One edge permutation into the arena; each machine computes on a
        // zero-copy view of its slice.
        let partition = PartitionedGraph::new(g, self.k, self.strategy, &mut rng)?;
        let params = CoresetParams::new(g.n(), self.k);
        let model = CostModel::for_n(g.n());

        // Machine RNG streams are derived from (seed, machine) before the
        // fan-out; the parallel stage consumes only machine-local state.
        let coresets: Vec<Graph> = machine_jobs(&partition.views(), seed)
            .into_par_iter()
            .map(|(i, piece, mut rng)| builder.build(*piece, &params, i, &mut rng))
            .collect();

        let mut communication = CommunicationCost::default();
        for c in &coresets {
            communication.record_message(&model, c.m(), 0);
        }
        let answer = match self.compose {
            ComposeMode::Flat => solve_composed_matching(&coresets, MaximumMatchingAlgorithm::Auto),
            ComposeMode::Tree { fan_in } => tree_solve_matching(
                g.n(),
                coresets,
                builder,
                &params,
                seed,
                fan_in,
                MaximumMatchingAlgorithm::Auto,
            ),
        };
        Ok(SimultaneousRun {
            answer,
            communication,
            piece_sizes: partition.piece_sizes(),
        })
    }

    /// Runs the vertex-cover protocol: each machine sends the coreset built by
    /// `builder` (fixed vertices + residual edges), the coordinator unions the
    /// residuals, 2-approximates a cover of the union, and adds the fixed
    /// vertices.
    pub fn run_vertex_cover<B: VcCoresetBuilder>(
        &self,
        g: &Graph,
        builder: &B,
        seed: u64,
    ) -> Result<SimultaneousRun<VertexCover>, GraphError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let partition = PartitionedGraph::new(g, self.k, self.strategy, &mut rng)?;
        let params = CoresetParams::new(g.n(), self.k);
        let model = CostModel::for_n(g.n());

        let outputs: Vec<VcCoresetOutput> = machine_jobs(&partition.views(), seed)
            .into_par_iter()
            .map(|(i, piece, mut rng)| builder.build(*piece, &params, i, &mut rng))
            .collect();

        let mut communication = CommunicationCost::default();
        for o in &outputs {
            communication.record_message(&model, o.residual.m(), o.fixed_vertices.len());
        }
        let answer = match self.compose {
            ComposeMode::Flat => compose_vertex_cover(&outputs),
            ComposeMode::Tree { fan_in } => {
                tree_compose_vertex_cover(g.n(), outputs, builder, &params, seed, fan_in)
            }
        };
        Ok(SimultaneousRun {
            answer,
            communication,
            piece_sizes: partition.piece_sizes(),
        })
    }

    /// Runs the matching protocol under a fault plan: machine failures are
    /// injected deterministically, failed machines are **re-executed by
    /// replaying** their `machine_rng(seed, i)` stream (so a run in which
    /// every machine eventually delivers is bit-identical to the fault-free
    /// run), and machines that exhaust the retry budget fall through to the
    /// plan's [`DegradedComposition`] policy.
    pub fn run_matching_faulty<B: MatchingCoresetBuilder>(
        &self,
        g: &Graph,
        builder: &B,
        seed: u64,
        plan: &FaultPlan,
        retry: &RetryPolicy,
    ) -> Result<FaultyRun<Matching>, ProtocolError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let partition = PartitionedGraph::new(g, self.k, self.strategy, &mut rng)?;
        let params = CoresetParams::new(g.n(), self.k);
        let model = CostModel::for_n(g.n());
        let injector = FaultInjector::new(plan.clone());
        let views = partition.views();

        let jobs: Vec<(usize, _)> = views.iter().copied().enumerate().collect();
        let outcomes: Vec<MachineOutcome<Graph>> = jobs
            .into_par_iter()
            .map(|(i, piece)| {
                run_machine_with_faults(&injector, retry, i, || {
                    builder.build(piece, &params, i, &mut machine_rng(seed, i))
                })
            })
            .collect();

        let mut report = FaultReport::new(plan.fault_seed);
        let mut communication = CommunicationCost::default();
        let mut coresets: Vec<Graph> = Vec::with_capacity(self.k);
        for (i, outcome) in outcomes.into_iter().enumerate() {
            report.absorb(i, &outcome);
            match outcome.summary {
                Some(coreset) => {
                    communication.record_message(&model, coreset.m(), 0);
                    coresets.push(coreset);
                }
                // Empty placeholder: keeps the composition tree's shape and
                // its (level, node) RNG streams identical to a fault-free
                // run, while contributing no edges.
                None => coresets.push(Graph::empty(g.n())),
            }
        }
        self.check_losses(&report, plan)?;

        let solve = |cs: Vec<Graph>| match self.compose {
            ComposeMode::Flat => solve_composed_matching(&cs, MaximumMatchingAlgorithm::Auto),
            ComposeMode::Tree { fan_in } => tree_solve_matching(
                g.n(),
                cs,
                builder,
                &params,
                seed,
                fan_in,
                MaximumMatchingAlgorithm::Auto,
            ),
        };
        // The degraded baseline is cheap to recover in-memory: lost machines
        // are deterministic replays, so rebuild them and compose everything.
        let baseline = if report.degraded {
            let mut full = coresets.clone();
            for &i in &report.lost_machines {
                full[i] = builder.build(views[i], &params, i, &mut machine_rng(seed, i));
            }
            Some(solve(full).len())
        } else {
            None
        };
        let answer = solve(coresets);
        report.achieved_vs_fault_free = Some(match baseline {
            None | Some(0) => 1.0,
            Some(b) => answer.len() as f64 / b as f64,
        });
        Ok(FaultyRun {
            run: SimultaneousRun {
                answer,
                communication,
                piece_sizes: partition.piece_sizes(),
            },
            faults: report,
        })
    }

    /// Runs the vertex-cover protocol under a fault plan (same retry-by-
    /// replay and degraded-composition semantics as
    /// [`CoordinatorProtocol::run_matching_faulty`]).
    pub fn run_vertex_cover_faulty<B: VcCoresetBuilder>(
        &self,
        g: &Graph,
        builder: &B,
        seed: u64,
        plan: &FaultPlan,
        retry: &RetryPolicy,
    ) -> Result<FaultyRun<VertexCover>, ProtocolError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let partition = PartitionedGraph::new(g, self.k, self.strategy, &mut rng)?;
        let params = CoresetParams::new(g.n(), self.k);
        let model = CostModel::for_n(g.n());
        let injector = FaultInjector::new(plan.clone());
        let views = partition.views();

        let jobs: Vec<(usize, _)> = views.iter().copied().enumerate().collect();
        let outcomes: Vec<MachineOutcome<VcCoresetOutput>> = jobs
            .into_par_iter()
            .map(|(i, piece)| {
                run_machine_with_faults(&injector, retry, i, || {
                    builder.build(piece, &params, i, &mut machine_rng(seed, i))
                })
            })
            .collect();

        let mut report = FaultReport::new(plan.fault_seed);
        let mut communication = CommunicationCost::default();
        let mut outputs: Vec<VcCoresetOutput> = Vec::with_capacity(self.k);
        for (i, outcome) in outcomes.into_iter().enumerate() {
            report.absorb(i, &outcome);
            match outcome.summary {
                Some(output) => {
                    communication.record_message(
                        &model,
                        output.residual.m(),
                        output.fixed_vertices.len(),
                    );
                    outputs.push(output);
                }
                None => outputs.push(VcCoresetOutput {
                    fixed_vertices: Vec::new(),
                    residual: Graph::empty(g.n()),
                }),
            }
        }
        self.check_losses(&report, plan)?;

        let solve = |os: Vec<VcCoresetOutput>| match self.compose {
            ComposeMode::Flat => compose_vertex_cover(&os),
            ComposeMode::Tree { fan_in } => {
                tree_compose_vertex_cover(g.n(), os, builder, &params, seed, fan_in)
            }
        };
        let baseline = if report.degraded {
            let mut full = outputs.clone();
            for &i in &report.lost_machines {
                full[i] = builder.build(views[i], &params, i, &mut machine_rng(seed, i));
            }
            Some(solve(full).len())
        } else {
            None
        };
        let answer = solve(outputs);
        report.achieved_vs_fault_free = Some(match baseline {
            None | Some(0) => 1.0,
            Some(b) => answer.len() as f64 / b as f64,
        });
        Ok(FaultyRun {
            run: SimultaneousRun {
                answer,
                communication,
                piece_sizes: partition.piece_sizes(),
            },
            faults: report,
        })
    }

    /// Applies the plan's loss policy to the run's losses.
    fn check_losses(&self, report: &FaultReport, plan: &FaultPlan) -> Result<(), ProtocolError> {
        if report.lost_machines.len() == self.k {
            return Err(ProtocolError::NoSurvivors);
        }
        if report.degraded && plan.on_loss == DegradedComposition::Fail {
            return Err(ProtocolError::MachinesLost {
                machines: report.lost_machines.clone(),
            });
        }
        Ok(())
    }
}

/// Out-of-core protocol runner: the partition lives in an on-disk
/// [`ArenaFile`], machine pieces are streamed one at a time through a
/// [`SegmentLoader`], and composition is hierarchical by default — so peak
/// memory is one segment plus the live coresets of `log k` levels, never the
/// full arena (experiment E16's in-binary bound).
///
/// The leaf coresets use the same `(seed, machine)` streams and the tree the
/// same `(seed, level, node)` streams as the in-memory
/// [`CoordinatorProtocol`] over the same partition, so for an arena written
/// from that partition the answers are **bit-identical** to the in-memory
/// run — the file format and the bounded-memory schedule are invisible in
/// the output (asserted by E16 and `tests/tree_compose.rs`).
///
/// Leaves are built sequentially (each needs the loader's single resident
/// segment); the composition-side solves inside each merge and the final
/// root solve still ride the work-stealing pool.
#[derive(Debug, Clone, Copy)]
pub struct ArenaProtocol {
    /// How the coordinator composes the received coresets.
    pub compose: ComposeMode,
}

impl ArenaProtocol {
    /// Hierarchical composition with the given fan-in (the mode E16 measures).
    pub fn tree(fan_in: usize) -> Self {
        ArenaProtocol {
            compose: ComposeMode::Tree { fan_in },
        }
    }

    /// Flat composition (all coresets resident at once; the arena is still
    /// streamed one segment at a time).
    pub fn flat() -> Self {
        ArenaProtocol {
            compose: ComposeMode::Flat,
        }
    }

    /// Runs the matching protocol from an on-disk arena: stream each
    /// machine's segment, build its coreset, drop the segment, compose.
    ///
    /// `k` and `n` come from the arena header; every coreset buffer alive at
    /// the coordinator (plus merge scratch) is charged to
    /// [`graph::metrics::resident_edges`], alongside the loader's segment
    /// accounting.
    pub fn run_matching<B: MatchingCoresetBuilder>(
        &self,
        arena: &ArenaFile,
        builder: &B,
        seed: u64,
    ) -> Result<SimultaneousRun<Matching>, ProtocolError> {
        let n = arena.n();
        let params = CoresetParams::new(n, arena.k());
        let model = CostModel::for_n(n);
        let mut communication = CommunicationCost::default();
        let fan_in = match self.compose {
            ComposeMode::Tree { fan_in } => fan_in,
            // Flat composition is the degenerate tree whose "root set" is all
            // k coresets: a fan-in wide enough that no merge round fires.
            ComposeMode::Flat => arena.k().max(2),
        };
        let merge = |level: usize, node: usize, group: Vec<Graph>| {
            let union_edges: usize = group.iter().map(Graph::m).sum();
            metrics::record_resident_edges_acquired(union_edges);
            let merged = merge_matching_coresets(n, &params, builder, seed, level, node, &group);
            metrics::record_resident_edges_released(union_edges);
            metrics::record_resident_edges_acquired(merged.m());
            metrics::record_resident_edges_released(union_edges);
            merged
        };
        let mut folder = TreeFolder::new(arena.k(), fan_in, merge);
        let mut loader = SegmentLoader::new(arena)?;
        for i in 0..arena.k() {
            let piece = loader
                .load(i)
                .map_err(|source| ProtocolError::Segment { machine: i, source })?;
            let coreset = builder.build(piece, &params, i, &mut machine_rng(seed, i));
            communication.record_message(&model, coreset.m(), 0);
            metrics::record_resident_edges_acquired(coreset.m());
            folder.push(coreset);
        }
        loader.release();
        let roots = folder.finish();
        let root_edges: usize = roots.iter().map(Graph::m).sum();
        // The final flat solve's compaction scratch is one more union pass.
        metrics::record_resident_edges_acquired(root_edges);
        let answer = solve_composed_matching(&roots, MaximumMatchingAlgorithm::Auto);
        metrics::record_resident_edges_released(2 * root_edges);
        Ok(SimultaneousRun {
            answer,
            communication,
            piece_sizes: arena.piece_sizes(),
        })
    }

    /// Runs the vertex-cover protocol from an on-disk arena (same schedule
    /// and accounting as [`ArenaProtocol::run_matching`]).
    pub fn run_vertex_cover<B: VcCoresetBuilder>(
        &self,
        arena: &ArenaFile,
        builder: &B,
        seed: u64,
    ) -> Result<SimultaneousRun<VertexCover>, ProtocolError> {
        let n = arena.n();
        let params = CoresetParams::new(n, arena.k());
        let model = CostModel::for_n(n);
        let mut communication = CommunicationCost::default();
        let fan_in = match self.compose {
            ComposeMode::Tree { fan_in } => fan_in,
            ComposeMode::Flat => arena.k().max(2),
        };
        let merge = |level: usize, node: usize, group: Vec<VcCoresetOutput>| {
            let union_edges: usize = group.iter().map(|o| o.residual.m()).sum();
            metrics::record_resident_edges_acquired(union_edges);
            let merged = merge_vc_coresets(n, &params, builder, seed, level, node, group);
            metrics::record_resident_edges_released(union_edges);
            metrics::record_resident_edges_acquired(merged.residual.m());
            metrics::record_resident_edges_released(union_edges);
            merged
        };
        let mut folder = TreeFolder::new(arena.k(), fan_in, merge);
        let mut loader = SegmentLoader::new(arena)?;
        for i in 0..arena.k() {
            let piece = loader
                .load(i)
                .map_err(|source| ProtocolError::Segment { machine: i, source })?;
            let output = builder.build(piece, &params, i, &mut machine_rng(seed, i));
            communication.record_message(&model, output.residual.m(), output.fixed_vertices.len());
            metrics::record_resident_edges_acquired(output.residual.m());
            folder.push(output);
        }
        loader.release();
        let roots = folder.finish();
        let root_edges: usize = roots.iter().map(|o| o.residual.m()).sum();
        let answer = compose_vertex_cover(&roots);
        metrics::record_resident_edges_released(root_edges);
        Ok(SimultaneousRun {
            answer,
            communication,
            piece_sizes: arena.piece_sizes(),
        })
    }

    /// Runs the matching protocol from an arena under a fault plan, with
    /// optional checkpoint/resume.
    ///
    /// Fault semantics:
    ///
    /// * Arena-segment faults (transient I/O, checksum corruption) are
    ///   injected inside the [`SegmentLoader`] from
    ///   [`FaultPlan::segment_plan`] and retried up to the machine retry
    ///   budget; machine-level faults use the same retry-by-replay loop as
    ///   [`CoordinatorProtocol::run_matching_faulty`].
    /// * A machine whose segment stays unreadable after the budget — whether
    ///   the failure was injected or genuine — is **permanently lost** and
    ///   handled by the plan's [`DegradedComposition`] policy (an *unarmed*
    ///   plan instead surfaces [`ProtocolError::Segment`], matching
    ///   [`ArenaProtocol::run_matching`]).
    /// * With `opts.checkpoint` set, the folder's pending state is persisted
    ///   after every completed leaf and a rerun resumes after the last one;
    ///   the checkpoint is deleted once the run completes. A resumed run's
    ///   answer is bit-identical to an uninterrupted one (`tests/faults.rs`
    ///   kills at every leaf to pin this).
    pub fn run_matching_resumable<B: MatchingCoresetBuilder>(
        &self,
        arena: &ArenaFile,
        builder: &B,
        seed: u64,
        opts: &FaultRunOptions,
    ) -> Result<FaultyRun<Matching>, ProtocolError> {
        let n = arena.n();
        let k = arena.k();
        let params = CoresetParams::new(n, k);
        let model = CostModel::for_n(n);
        let fan_in = match self.compose {
            ComposeMode::Tree { fan_in } => fan_in,
            ComposeMode::Flat => k.max(2),
        };
        let injector = FaultInjector::new(opts.plan.clone());
        let key = CheckpointKey {
            problem: <Graph as CheckpointItem>::PROBLEM,
            n: n as u64,
            k: k as u64,
            m: arena.m() as u64,
            seed,
            fan_in: fan_in as u64,
            fault_seed: opts.plan.fault_seed,
        };
        let merge = |level: usize, node: usize, group: Vec<Graph>| {
            let union_edges: usize = group.iter().map(Graph::m).sum();
            metrics::record_resident_edges_acquired(union_edges);
            let merged = merge_matching_coresets(n, &params, builder, seed, level, node, &group);
            metrics::record_resident_edges_released(union_edges);
            metrics::record_resident_edges_acquired(merged.m());
            metrics::record_resident_edges_released(union_edges);
            merged
        };

        let mut communication = CommunicationCost::default();
        let mut report = FaultReport::new(opts.plan.fault_seed);
        let resumed = opts
            .checkpoint
            .as_deref()
            .and_then(|p| load_checkpoint::<Graph>(p, &key));
        let (mut folder, start) = match resumed {
            Some(ck) => {
                communication = ck.communication;
                report.injected = ck.injected;
                report.retried = ck.retried;
                report.recovered = ck.recovered;
                report.ticks = ck.ticks;
                report.degraded = !ck.lost_machines.is_empty();
                report.lost_machines = ck.lost_machines;
                let live: usize = ck.pending.iter().flatten().map(Graph::m).sum();
                metrics::record_resident_edges_acquired(live);
                let pushed = ck.pushed;
                (
                    TreeFolder::resume(k, fan_in, merge, pushed, ck.pending),
                    pushed,
                )
            }
            None => (TreeFolder::new(k, fan_in, merge), 0),
        };

        let mut loader = SegmentLoader::new(arena)?;
        loader.set_fault_plan(Some(opts.plan.segment_plan()));
        loader.set_retry_policy(SegmentRetryPolicy {
            max_attempts: opts.retry.max_attempts.max(1),
        });
        let (mut seg_injected, mut seg_retried) = (0u64, 0u64);
        for i in start..k {
            let outcome: MachineOutcome<Graph> = match loader.load(i) {
                Ok(piece) => run_machine_with_faults(&injector, &opts.retry, i, || {
                    builder.build(piece, &params, i, &mut machine_rng(seed, i))
                }),
                Err(source) => {
                    if !opts.plan.is_armed() {
                        return Err(ProtocolError::Segment { machine: i, source });
                    }
                    MachineOutcome {
                        summary: None,
                        injected: 0,
                        retried: 0,
                        ticks: 0,
                    }
                }
            };
            // Fold the loader's per-segment injection/retry deltas into the
            // run totals; segment retries are charged the flat base backoff
            // on the simulated tick clock.
            let d_inj = loader.injected_faults() - seg_injected;
            let d_ret = loader.retries() - seg_retried;
            seg_injected += d_inj;
            seg_retried += d_ret;
            report.injected += d_inj;
            report.retried += d_ret;
            report.ticks = report
                .ticks
                .saturating_add(opts.retry.backoff_ticks.saturating_mul(d_ret));
            if d_inj > 0 && outcome.summary.is_some() && outcome.injected == 0 {
                // Recovered at the segment layer only; absorb() below would
                // not see those injections.
                report.recovered += 1;
            }
            report.absorb(i, &outcome);
            match outcome.summary {
                Some(coreset) => {
                    communication.record_message(&model, coreset.m(), 0);
                    metrics::record_resident_edges_acquired(coreset.m());
                    folder.push(coreset);
                }
                None => folder.push(Graph::empty(n)),
            }
            if let Some(path) = opts.checkpoint.as_deref() {
                save_checkpoint(
                    path,
                    &key,
                    &ArenaCheckpoint {
                        pushed: folder.pushed(),
                        pending: folder.pending().to_vec(),
                        communication: communication.clone(),
                        injected: report.injected,
                        retried: report.retried,
                        recovered: report.recovered,
                        ticks: report.ticks,
                        lost_machines: report.lost_machines.clone(),
                    },
                )?;
            }
            if opts.kill_after_leaves == Some(folder.pushed()) {
                return Err(ProtocolError::Interrupted {
                    pushed: folder.pushed(),
                });
            }
        }
        loader.release();
        if report.lost_machines.len() == k {
            return Err(ProtocolError::NoSurvivors);
        }
        if report.degraded && opts.plan.on_loss == DegradedComposition::Fail {
            return Err(ProtocolError::MachinesLost {
                machines: report.lost_machines.clone(),
            });
        }
        let roots = folder.finish();
        let root_edges: usize = roots.iter().map(Graph::m).sum();
        metrics::record_resident_edges_acquired(root_edges);
        let answer = solve_composed_matching(&roots, MaximumMatchingAlgorithm::Auto);
        metrics::record_resident_edges_released(2 * root_edges);
        report.achieved_vs_fault_free = if report.degraded {
            // The fault-free baseline needs every segment intact; a genuinely
            // corrupt arena has no computable baseline.
            self.run_matching(arena, builder, seed)
                .ok()
                .map(|clean| match clean.answer.len() {
                    0 => 1.0,
                    b => answer.len() as f64 / b as f64,
                })
        } else {
            Some(1.0)
        };
        if let Some(path) = opts.checkpoint.as_deref() {
            let _ = std::fs::remove_file(path);
        }
        Ok(FaultyRun {
            run: SimultaneousRun {
                answer,
                communication,
                piece_sizes: arena.piece_sizes(),
            },
            faults: report,
        })
    }

    /// Runs the vertex-cover protocol from an arena under a fault plan, with
    /// optional checkpoint/resume (same semantics as
    /// [`ArenaProtocol::run_matching_resumable`]).
    pub fn run_vertex_cover_resumable<B: VcCoresetBuilder>(
        &self,
        arena: &ArenaFile,
        builder: &B,
        seed: u64,
        opts: &FaultRunOptions,
    ) -> Result<FaultyRun<VertexCover>, ProtocolError> {
        let n = arena.n();
        let k = arena.k();
        let params = CoresetParams::new(n, k);
        let model = CostModel::for_n(n);
        let fan_in = match self.compose {
            ComposeMode::Tree { fan_in } => fan_in,
            ComposeMode::Flat => k.max(2),
        };
        let injector = FaultInjector::new(opts.plan.clone());
        let key = CheckpointKey {
            problem: <VcCoresetOutput as CheckpointItem>::PROBLEM,
            n: n as u64,
            k: k as u64,
            m: arena.m() as u64,
            seed,
            fan_in: fan_in as u64,
            fault_seed: opts.plan.fault_seed,
        };
        let merge = |level: usize, node: usize, group: Vec<VcCoresetOutput>| {
            let union_edges: usize = group.iter().map(|o| o.residual.m()).sum();
            metrics::record_resident_edges_acquired(union_edges);
            let merged = merge_vc_coresets(n, &params, builder, seed, level, node, group);
            metrics::record_resident_edges_released(union_edges);
            metrics::record_resident_edges_acquired(merged.residual.m());
            metrics::record_resident_edges_released(union_edges);
            merged
        };

        let mut communication = CommunicationCost::default();
        let mut report = FaultReport::new(opts.plan.fault_seed);
        let resumed = opts
            .checkpoint
            .as_deref()
            .and_then(|p| load_checkpoint::<VcCoresetOutput>(p, &key));
        let (mut folder, start) = match resumed {
            Some(ck) => {
                communication = ck.communication;
                report.injected = ck.injected;
                report.retried = ck.retried;
                report.recovered = ck.recovered;
                report.ticks = ck.ticks;
                report.degraded = !ck.lost_machines.is_empty();
                report.lost_machines = ck.lost_machines;
                let live: usize = ck.pending.iter().flatten().map(|o| o.residual.m()).sum();
                metrics::record_resident_edges_acquired(live);
                let pushed = ck.pushed;
                (
                    TreeFolder::resume(k, fan_in, merge, pushed, ck.pending),
                    pushed,
                )
            }
            None => (TreeFolder::new(k, fan_in, merge), 0),
        };

        let mut loader = SegmentLoader::new(arena)?;
        loader.set_fault_plan(Some(opts.plan.segment_plan()));
        loader.set_retry_policy(SegmentRetryPolicy {
            max_attempts: opts.retry.max_attempts.max(1),
        });
        let (mut seg_injected, mut seg_retried) = (0u64, 0u64);
        for i in start..k {
            let outcome: MachineOutcome<VcCoresetOutput> = match loader.load(i) {
                Ok(piece) => run_machine_with_faults(&injector, &opts.retry, i, || {
                    builder.build(piece, &params, i, &mut machine_rng(seed, i))
                }),
                Err(source) => {
                    if !opts.plan.is_armed() {
                        return Err(ProtocolError::Segment { machine: i, source });
                    }
                    MachineOutcome {
                        summary: None,
                        injected: 0,
                        retried: 0,
                        ticks: 0,
                    }
                }
            };
            // Fold the loader's per-segment injection/retry deltas into the
            // run totals; segment retries are charged the flat base backoff
            // on the simulated tick clock.
            let d_inj = loader.injected_faults() - seg_injected;
            let d_ret = loader.retries() - seg_retried;
            seg_injected += d_inj;
            seg_retried += d_ret;
            report.injected += d_inj;
            report.retried += d_ret;
            report.ticks = report
                .ticks
                .saturating_add(opts.retry.backoff_ticks.saturating_mul(d_ret));
            if d_inj > 0 && outcome.summary.is_some() && outcome.injected == 0 {
                // Recovered at the segment layer only; absorb() below would
                // not see those injections.
                report.recovered += 1;
            }
            report.absorb(i, &outcome);
            match outcome.summary {
                Some(output) => {
                    communication.record_message(
                        &model,
                        output.residual.m(),
                        output.fixed_vertices.len(),
                    );
                    metrics::record_resident_edges_acquired(output.residual.m());
                    folder.push(output);
                }
                None => folder.push(VcCoresetOutput {
                    fixed_vertices: Vec::new(),
                    residual: Graph::empty(n),
                }),
            }
            if let Some(path) = opts.checkpoint.as_deref() {
                save_checkpoint(
                    path,
                    &key,
                    &ArenaCheckpoint {
                        pushed: folder.pushed(),
                        pending: folder.pending().to_vec(),
                        communication: communication.clone(),
                        injected: report.injected,
                        retried: report.retried,
                        recovered: report.recovered,
                        ticks: report.ticks,
                        lost_machines: report.lost_machines.clone(),
                    },
                )?;
            }
            if opts.kill_after_leaves == Some(folder.pushed()) {
                return Err(ProtocolError::Interrupted {
                    pushed: folder.pushed(),
                });
            }
        }
        loader.release();
        if report.lost_machines.len() == k {
            return Err(ProtocolError::NoSurvivors);
        }
        if report.degraded && opts.plan.on_loss == DegradedComposition::Fail {
            return Err(ProtocolError::MachinesLost {
                machines: report.lost_machines.clone(),
            });
        }
        let roots = folder.finish();
        let root_edges: usize = roots.iter().map(|o| o.residual.m()).sum();
        let answer = compose_vertex_cover(&roots);
        metrics::record_resident_edges_released(root_edges);
        report.achieved_vs_fault_free = if report.degraded {
            self.run_vertex_cover(arena, builder, seed)
                .ok()
                .map(|clean| match clean.answer.len() {
                    0 => 1.0,
                    b => answer.len() as f64 / b as f64,
                })
        } else {
            Some(1.0)
        };
        if let Some(path) = opts.checkpoint.as_deref() {
            let _ = std::fs::remove_file(path);
        }
        Ok(FaultyRun {
            run: SimultaneousRun {
                answer,
                communication,
                piece_sizes: arena.piece_sizes(),
            },
            faults: report,
        })
    }
}

/// Options of a fault-injected, optionally resumable arena run.
#[derive(Debug, Clone, Default)]
pub struct FaultRunOptions {
    /// Which faults to inject (a defaulted plan injects nothing).
    pub plan: FaultPlan,
    /// Retry budget and backoff schedule shared by machine replays and
    /// segment re-reads.
    pub retry: RetryPolicy,
    /// Where to persist the resume checkpoint; `None` disables
    /// checkpointing.
    pub checkpoint: Option<std::path::PathBuf>,
    /// Test knob: abort with [`ProtocolError::Interrupted`] once this many
    /// leaves completed (after the checkpoint for that leaf is saved), so
    /// crash-recovery tests can kill a run at every possible point.
    pub kill_after_leaves: Option<usize>,
}

/// The result of one simultaneous-protocol run.
#[derive(Debug, Clone)]
pub struct SimultaneousRun<T> {
    /// The coordinator's answer (a matching or a vertex cover).
    pub answer: T,
    /// Communication charged to the machines' messages.
    pub communication: CommunicationCost,
    /// Number of edges each machine received (the input partition sizes).
    pub piece_sizes: Vec<usize>,
}

/// A [`SimultaneousRun`] plus the fault accounting of how it got there.
#[derive(Debug, Clone)]
pub struct FaultyRun<T> {
    /// The protocol outcome (answer, communication, piece sizes).
    pub run: SimultaneousRun<T>,
    /// What was injected, retried, recovered, and lost along the way.
    pub faults: FaultReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use coresets::matching_coreset::MaximumMatchingCoreset;
    use coresets::vc_coreset::PeelingVcCoreset;
    use graph::gen::er::gnp;
    use matching::maximum::maximum_matching;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn matching_protocol_communication_is_o_of_nk() {
        let mut r = rng(1);
        let n = 600;
        let g = gnp(n, 0.02, &mut r);
        let k = 6;
        let run = CoordinatorProtocol::random(k)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 42)
            .unwrap();
        assert!(run.answer.is_valid_for(&g));
        // Each message is a matching: at most n/2 edges = n words.
        assert!(run.communication.max_message_words() <= n as u64);
        assert!(run.communication.total_words() <= (n * k) as u64);
        assert_eq!(run.communication.message_count(), k);
        // Approximation guarantee of Theorem 1.
        let opt = maximum_matching(&g).len();
        assert!(9 * run.answer.len() >= opt);
    }

    #[test]
    fn vertex_cover_protocol_covers_and_accounts() {
        let mut r = rng(2);
        let n = 800;
        let g = gnp(n, 0.015, &mut r);
        let k = 5;
        let run = CoordinatorProtocol::random(k)
            .run_vertex_cover(&g, &PeelingVcCoreset::new(), 7)
            .unwrap();
        assert!(run.answer.covers(&g));
        assert_eq!(run.communication.message_count(), k);
        assert!(run.communication.total_words() > 0);
        assert_eq!(run.piece_sizes.iter().sum::<usize>(), g.m());
    }

    #[test]
    fn runs_are_reproducible() {
        let mut r = rng(3);
        let g = gnp(300, 0.03, &mut r);
        let p = CoordinatorProtocol::random(4);
        let a = p
            .run_matching(&g, &MaximumMatchingCoreset::new(), 11)
            .unwrap();
        let b = p
            .run_matching(&g, &MaximumMatchingCoreset::new(), 11)
            .unwrap();
        assert_eq!(a.answer.len(), b.answer.len());
        assert_eq!(a.communication, b.communication);
    }

    #[test]
    fn adversarial_strategy_is_supported() {
        let mut r = rng(4);
        let g = gnp(200, 0.05, &mut r);
        let run = CoordinatorProtocol::adversarial(4)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 1)
            .unwrap();
        assert!(run.answer.is_valid_for(&g));
    }

    #[test]
    fn zero_machines_is_rejected() {
        let g = gnp(50, 0.1, &mut rng(5));
        assert!(CoordinatorProtocol::random(0)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 0)
            .is_err());
    }

    #[test]
    fn tree_mode_runs_are_valid_and_reproducible() {
        let g = gnp(500, 0.02, &mut rng(6));
        let p = CoordinatorProtocol::tree(9, 2);
        let a = p
            .run_matching(&g, &MaximumMatchingCoreset::new(), 13)
            .unwrap();
        let b = p
            .run_matching(&g, &MaximumMatchingCoreset::new(), 13)
            .unwrap();
        assert!(a.answer.is_valid_for(&g));
        assert_eq!(a.answer.edges(), b.answer.edges());
        // Communication is charged to the leaf messages only: same as flat.
        let flat = CoordinatorProtocol::random(9)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 13)
            .unwrap();
        assert_eq!(a.communication, flat.communication);

        let cover = p
            .run_vertex_cover(&g, &PeelingVcCoreset::new(), 13)
            .unwrap();
        assert!(cover.answer.covers(&g));
    }

    /// Serializes the arena tests: they all touch the process-global
    /// resident-edge counters, and the peak test needs them quiescent.
    static ARENA_METRICS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn arena_lock() -> std::sync::MutexGuard<'static, ()> {
        ARENA_METRICS_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Writes `g`'s partition (drawn exactly as `run_matching` draws it) to
    /// an arena file and returns the open arena plus its path.
    fn arena_of(
        g: &Graph,
        k: usize,
        seed: u64,
        tag: &str,
    ) -> (graph::ArenaFile, std::path::PathBuf) {
        let mut r = rng(seed);
        let partition =
            graph::PartitionedGraph::new(g, k, graph::partition::PartitionStrategy::Random, &mut r)
                .unwrap();
        let path =
            std::env::temp_dir().join(format!("rc_coord_arena_{}_{tag}.bin", std::process::id()));
        graph::write_arena_file(&path, &partition).unwrap();
        (ArenaFile::open(&path).unwrap(), path)
    }

    #[test]
    fn arena_flat_matching_is_bit_identical_to_in_memory_flat() {
        let _guard = arena_lock();
        let g = gnp(400, 0.025, &mut rng(7));
        let (k, seed) = (6, 21);
        let mem = CoordinatorProtocol::random(k)
            .run_matching(&g, &MaximumMatchingCoreset::new(), seed)
            .unwrap();
        let (arena, path) = arena_of(&g, k, seed, "flat_match");
        let ooc = ArenaProtocol::flat()
            .run_matching(&arena, &MaximumMatchingCoreset::new(), seed)
            .unwrap();
        std::fs::remove_file(path).unwrap();
        assert_eq!(mem.answer.edges(), ooc.answer.edges());
        assert_eq!(mem.communication, ooc.communication);
        assert_eq!(mem.piece_sizes, ooc.piece_sizes);
    }

    #[test]
    fn arena_tree_matching_is_bit_identical_to_in_memory_tree() {
        let _guard = arena_lock();
        let g = gnp(450, 0.02, &mut rng(8));
        let (k, fan_in, seed) = (9, 2, 33);
        let mem = CoordinatorProtocol::tree(k, fan_in)
            .run_matching(&g, &MaximumMatchingCoreset::new(), seed)
            .unwrap();
        let (arena, path) = arena_of(&g, k, seed, "tree_match");
        let ooc = ArenaProtocol::tree(fan_in)
            .run_matching(&arena, &MaximumMatchingCoreset::new(), seed)
            .unwrap();
        std::fs::remove_file(path).unwrap();
        assert_eq!(mem.answer.edges(), ooc.answer.edges());
        assert_eq!(mem.communication, ooc.communication);
    }

    #[test]
    fn arena_tree_vertex_cover_is_bit_identical_to_in_memory_tree() {
        let _guard = arena_lock();
        let g = gnp(500, 0.015, &mut rng(9));
        let (k, fan_in, seed) = (8, 3, 5);
        let mem = CoordinatorProtocol::tree(k, fan_in)
            .run_vertex_cover(&g, &PeelingVcCoreset::new(), seed)
            .unwrap();
        let (arena, path) = arena_of(&g, k, seed, "tree_vc");
        let ooc = ArenaProtocol::tree(fan_in)
            .run_vertex_cover(&arena, &PeelingVcCoreset::new(), seed)
            .unwrap();
        std::fs::remove_file(path).unwrap();
        assert!(mem.answer.covers(&g));
        assert_eq!(mem.answer, ooc.answer);
        assert_eq!(mem.communication, ooc.communication);
    }

    #[test]
    fn arena_tree_peak_resident_stays_bounded() {
        let _guard = arena_lock();
        let g = gnp(600, 0.05, &mut rng(10));
        let (k, fan_in, seed) = (8, 2, 2);
        let (arena, path) = arena_of(&g, k, seed, "peak");
        metrics::reset_peak_resident_edges();
        let before = metrics::resident_edges();
        let run = ArenaProtocol::tree(fan_in)
            .run_matching(&arena, &MaximumMatchingCoreset::new(), seed)
            .unwrap();
        std::fs::remove_file(path).unwrap();
        assert!(!run.answer.is_empty());
        // Everything acquired during the run was released again.
        assert_eq!(metrics::resident_edges(), before);
        // Peak stayed below the full arena plus tree overhead — the bound E16
        // asserts at 10^7-edge scale (levels + 1 live coreset layers of at
        // most n/2 edges each, one segment, merge scratch).
        let levels = coresets::TreePlan::new(k, fan_in).levels();
        let m = arena.m();
        let bound = (2 * (m / k + fan_in * (g.n() / 2) * (levels + 1))) as u64;
        assert!(
            metrics::peak_resident_edges() <= bound,
            "peak {} above bound {bound}",
            metrics::peak_resident_edges()
        );
    }

    #[test]
    fn unarmed_faulty_run_matches_fault_free_run() {
        let g = gnp(300, 0.03, &mut rng(11));
        let p = CoordinatorProtocol::random(5);
        let clean = p
            .run_matching(&g, &MaximumMatchingCoreset::new(), 17)
            .unwrap();
        let faulty = p
            .run_matching_faulty(
                &g,
                &MaximumMatchingCoreset::new(),
                17,
                &FaultPlan::new(99),
                &RetryPolicy::default(),
            )
            .unwrap();
        assert_eq!(clean.answer.edges(), faulty.run.answer.edges());
        assert_eq!(clean.communication, faulty.run.communication);
        assert_eq!(faulty.faults.injected, 0);
        assert_eq!(faulty.faults.retried, 0);
        assert_eq!(faulty.faults.lost_machines, Vec::<usize>::new());
        assert!(!faulty.faults.degraded);
        assert_eq!(faulty.faults.achieved_vs_fault_free, Some(1.0));
    }

    #[test]
    fn recovered_faulty_run_is_bit_identical_to_fault_free_run() {
        let g = gnp(350, 0.025, &mut rng(12));
        let p = CoordinatorProtocol::random(6);
        let clean = p
            .run_matching(&g, &MaximumMatchingCoreset::new(), 23)
            .unwrap();
        let plan = FaultPlan::machine_failure(4242, 0.2);
        let faulty = p
            .run_matching_faulty(
                &g,
                &MaximumMatchingCoreset::new(),
                23,
                &plan,
                &RetryPolicy::attempts(12),
            )
            .unwrap();
        assert!(
            !faulty.faults.degraded,
            "retry budget should recover every machine at this seed"
        );
        assert!(faulty.faults.injected > 0, "this seed must inject faults");
        assert!(faulty.faults.retried > 0);
        // Retry replays the same machine_rng stream: recovery is invisible in
        // the output.
        assert_eq!(clean.answer.edges(), faulty.run.answer.edges());
        assert_eq!(clean.communication, faulty.run.communication);
        assert_eq!(faulty.faults.achieved_vs_fault_free, Some(1.0));
    }

    #[test]
    fn stragglers_only_cost_simulated_ticks() {
        let g = gnp(200, 0.04, &mut rng(13));
        let k = 4;
        let mut plan = FaultPlan::new(5);
        plan.straggler_prob = 1.0;
        plan.straggler_ticks = 7;
        let p = CoordinatorProtocol::random(k);
        let clean = p
            .run_matching(&g, &MaximumMatchingCoreset::new(), 3)
            .unwrap();
        let faulty = p
            .run_matching_faulty(
                &g,
                &MaximumMatchingCoreset::new(),
                3,
                &plan,
                &RetryPolicy::default(),
            )
            .unwrap();
        // Every machine straggles exactly once, still delivers, and the
        // answer is untouched — only the tick clock moves.
        assert_eq!(faulty.faults.injected, k as u64);
        assert_eq!(faulty.faults.recovered, k as u64);
        assert_eq!(faulty.faults.ticks, 7 * k as u64);
        assert!(!faulty.faults.degraded);
        assert_eq!(clean.answer.edges(), faulty.run.answer.edges());
    }

    #[test]
    fn forced_machine_loss_degrades_but_stays_valid() {
        let g = gnp(400, 0.02, &mut rng(14));
        let p = CoordinatorProtocol::random(6);
        let plan = FaultPlan::new(1).losing(vec![2]);
        let faulty = p
            .run_matching_faulty(
                &g,
                &MaximumMatchingCoreset::new(),
                9,
                &plan,
                &RetryPolicy::attempts(8),
            )
            .unwrap();
        assert!(faulty.faults.degraded);
        assert_eq!(faulty.faults.lost_machines, vec![2]);
        assert!(faulty.run.answer.is_valid_for(&g));
        let ratio = faulty.faults.achieved_vs_fault_free.unwrap();
        assert!(ratio > 0.0 && ratio <= 1.0 + 1e-9, "ratio {ratio}");
        // Communication only counts survivors' messages.
        assert_eq!(faulty.run.communication.message_count(), 5);
    }

    #[test]
    fn degraded_vertex_cover_covers_the_surviving_edges() {
        let g = gnp(400, 0.02, &mut rng(15));
        let (k, seed) = (5, 31);
        let plan = FaultPlan::new(2).losing(vec![0]);
        let faulty = CoordinatorProtocol::random(k)
            .run_vertex_cover_faulty(
                &g,
                &PeelingVcCoreset::new(),
                seed,
                &plan,
                &RetryPolicy::default(),
            )
            .unwrap();
        assert!(faulty.faults.degraded);
        // The degraded cover must still cover every edge a surviving machine
        // held (the lost machine's edges are unknowable to the coordinator).
        let mut r = rng(seed);
        let partition = graph::PartitionedGraph::new(
            &g,
            k,
            graph::partition::PartitionStrategy::Random,
            &mut r,
        )
        .unwrap();
        for (i, piece) in partition.views().iter().enumerate() {
            if faulty.faults.lost_machines.contains(&i) {
                continue;
            }
            for e in piece.edges() {
                assert!(
                    faulty.run.answer.contains(e.u) || faulty.run.answer.contains(e.v),
                    "surviving edge ({}, {}) uncovered",
                    e.u,
                    e.v
                );
            }
        }
    }

    #[test]
    fn loss_policy_fail_and_total_loss_are_typed_errors() {
        let g = gnp(120, 0.05, &mut rng(16));
        let p = CoordinatorProtocol::random(3);
        let mut plan = FaultPlan::new(3).losing(vec![1]);
        plan.on_loss = DegradedComposition::Fail;
        let err = p
            .run_matching_faulty(
                &g,
                &MaximumMatchingCoreset::new(),
                1,
                &plan,
                &RetryPolicy::default(),
            )
            .unwrap_err();
        assert_eq!(err, ProtocolError::MachinesLost { machines: vec![1] });

        let all = FaultPlan::new(3).losing(vec![0, 1, 2]);
        let err = p
            .run_vertex_cover_faulty(
                &g,
                &PeelingVcCoreset::new(),
                1,
                &all,
                &RetryPolicy::default(),
            )
            .unwrap_err();
        assert_eq!(err, ProtocolError::NoSurvivors);
    }

    #[test]
    fn resumable_run_without_faults_matches_plain_arena_run() {
        let _guard = arena_lock();
        let g = gnp(380, 0.02, &mut rng(17));
        let (k, fan_in, seed) = (6, 2, 41);
        let (arena, path) = arena_of(&g, k, seed, "resume_clean");
        let plain = ArenaProtocol::tree(fan_in)
            .run_matching(&arena, &MaximumMatchingCoreset::new(), seed)
            .unwrap();
        let faulty = ArenaProtocol::tree(fan_in)
            .run_matching_resumable(
                &arena,
                &MaximumMatchingCoreset::new(),
                seed,
                &FaultRunOptions::default(),
            )
            .unwrap();
        std::fs::remove_file(path).unwrap();
        assert_eq!(plain.answer.edges(), faulty.run.answer.edges());
        assert_eq!(plain.communication, faulty.run.communication);
        assert_eq!(faulty.faults.injected, 0);
        assert_eq!(faulty.faults.achieved_vs_fault_free, Some(1.0));
    }

    #[test]
    fn segment_faults_are_retried_transparently() {
        let _guard = arena_lock();
        let g = gnp(300, 0.025, &mut rng(18));
        let (k, fan_in, seed) = (5, 2, 47);
        let (arena, path) = arena_of(&g, k, seed, "seg_retry");
        let plain = ArenaProtocol::tree(fan_in)
            .run_matching(&arena, &MaximumMatchingCoreset::new(), seed)
            .unwrap();
        let mut plan = FaultPlan::new(77);
        plan.segment_io_prob = 0.5;
        let opts = FaultRunOptions {
            plan,
            retry: RetryPolicy {
                max_attempts: 16,
                backoff_ticks: 3,
            },
            ..FaultRunOptions::default()
        };
        let faulty = ArenaProtocol::tree(fan_in)
            .run_matching_resumable(&arena, &MaximumMatchingCoreset::new(), seed, &opts)
            .unwrap();
        std::fs::remove_file(path).unwrap();
        assert!(faulty.faults.injected > 0, "this seed must inject faults");
        assert_eq!(faulty.faults.retried, faulty.faults.injected);
        assert_eq!(faulty.faults.ticks, 3 * faulty.faults.retried);
        assert!(!faulty.faults.degraded);
        assert_eq!(plain.answer.edges(), faulty.run.answer.edges());
        assert_eq!(plain.communication, faulty.run.communication);
    }

    #[test]
    fn killed_run_resumes_to_the_identical_answer() {
        let _guard = arena_lock();
        let g = gnp(350, 0.02, &mut rng(19));
        let (k, fan_in, seed) = (6, 2, 53);
        let (arena, path) = arena_of(&g, k, seed, "kill_resume");
        let ckpt =
            std::env::temp_dir().join(format!("rc_coord_ckpt_{}_kill.bin", std::process::id()));
        let _ = std::fs::remove_file(&ckpt);
        let uninterrupted = ArenaProtocol::tree(fan_in)
            .run_vertex_cover(&arena, &PeelingVcCoreset::new(), seed)
            .unwrap();
        let mut opts = FaultRunOptions {
            checkpoint: Some(ckpt.clone()),
            kill_after_leaves: Some(3),
            ..FaultRunOptions::default()
        };
        let err = ArenaProtocol::tree(fan_in)
            .run_vertex_cover_resumable(&arena, &PeelingVcCoreset::new(), seed, &opts)
            .unwrap_err();
        assert_eq!(err, ProtocolError::Interrupted { pushed: 3 });
        assert!(ckpt.exists(), "kill must leave a checkpoint behind");
        opts.kill_after_leaves = None;
        let resumed = ArenaProtocol::tree(fan_in)
            .run_vertex_cover_resumable(&arena, &PeelingVcCoreset::new(), seed, &opts)
            .unwrap();
        std::fs::remove_file(path).unwrap();
        assert_eq!(uninterrupted.answer, resumed.run.answer);
        assert_eq!(uninterrupted.communication, resumed.run.communication);
        assert!(
            !ckpt.exists(),
            "completed run must remove its checkpoint file"
        );
    }
}
