//! The coordinator (simultaneous communication) model.
//!
//! A [`CoordinatorProtocol`] run proceeds exactly as in the paper's model
//! (Section 2, "Communication Complexity"):
//!
//! 1. the edge set is **randomly partitioned** across `k` machines,
//! 2. every machine simultaneously sends one message to the coordinator —
//!    here, its coreset — with its size charged to the communication cost,
//! 3. the coordinator combines the messages and outputs the answer; no
//!    further interaction happens.
//!
//! Machines execute **simultaneously on real OS threads**: the vendored rayon
//! backend spawns a scoped pool of `std::thread` workers (worker count from
//! `RC_THREADS` / `RAYON_NUM_THREADS`, or every available core) that race a
//! **work-stealing chunk queue** over the machines — a worker that finishes a
//! sparse machine immediately claims more work, so one dense machine of a
//! skewed partition no longer serializes the fan-out (experiment E15,
//! `exp_sched_scaling`). All randomness is
//! fixed *before* that fan-out — the edge partition is drawn from the run
//! seed, and machine `i`'s private `ChaCha8Rng` stream is derived from
//! `(seed, i)` via [`coresets::streams::machine_rng`] — and per-machine
//! messages are collected in machine order, so a run's answer, coreset sizes
//! and communication cost are bit-identical for any thread count or schedule
//! (asserted by `tests/determinism.rs`).
//!
//! Both the per-machine coreset solves and the coordinator's composed solve
//! run on the compacted, epoch-reset, warm-started matching engine
//! ([`matching::MatchingEngine`]; experiment E13): each worker thread reuses
//! one engine across the machines it simulates, and
//! [`coresets::solve_composed_matching`] seeds the final solve with the best
//! machine's matching. The vertex-cover side runs on the analogous
//! `vertexcover::VcEngine` (experiment E14): bucket-queue peeling per
//! machine and a union-free composed 2-approximation at the coordinator,
//! with zero per-round edge-buffer reallocations across the whole run.
//!
//! The coordinator's own composition step is parallel where its sub-solves
//! are independent: the warm-start screen over the received coresets and the
//! per-residual-slice statistics feeding the composed 2-approximation fan
//! out on the same work-stealing pool and reduce deterministically (see
//! `coresets::compose`), so composition answers are also bit-identical at
//! every thread count.

use crate::comm::{CommunicationCost, CostModel};
use coresets::matching_coreset::MatchingCoresetBuilder;
use coresets::streams::machine_jobs;
use coresets::vc_coreset::{VcCoresetBuilder, VcCoresetOutput};
use coresets::{compose_vertex_cover, solve_composed_matching, CoresetParams};
use graph::partition::{PartitionStrategy, PartitionedGraph};
use graph::{Graph, GraphError};
use matching::matching::Matching;
use matching::maximum::MaximumMatchingAlgorithm;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use vertexcover::VertexCover;

/// Configuration of one simultaneous-protocol run.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorProtocol {
    /// Number of machines `k`.
    pub k: usize,
    /// How the edges are split across machines (the paper's model is
    /// [`PartitionStrategy::Random`]; the adversarial strategy is provided for
    /// the negative-control experiments).
    pub strategy: PartitionStrategy,
}

impl CoordinatorProtocol {
    /// The paper's model: random partitioning across `k` machines.
    pub fn random(k: usize) -> Self {
        CoordinatorProtocol {
            k,
            strategy: PartitionStrategy::Random,
        }
    }

    /// Adversarial (sorted-chunk) partitioning across `k` machines.
    pub fn adversarial(k: usize) -> Self {
        CoordinatorProtocol {
            k,
            strategy: PartitionStrategy::Adversarial,
        }
    }

    /// Runs the matching protocol: each machine sends the coreset built by
    /// `builder`, the coordinator extracts a maximum matching of the union.
    pub fn run_matching<B: MatchingCoresetBuilder>(
        &self,
        g: &Graph,
        builder: &B,
        seed: u64,
    ) -> Result<SimultaneousRun<Matching>, GraphError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // One edge permutation into the arena; each machine computes on a
        // zero-copy view of its slice.
        let partition = PartitionedGraph::new(g, self.k, self.strategy, &mut rng)?;
        let params = CoresetParams::new(g.n(), self.k);
        let model = CostModel::for_n(g.n());

        // Machine RNG streams are derived from (seed, machine) before the
        // fan-out; the parallel stage consumes only machine-local state.
        let coresets: Vec<Graph> = machine_jobs(&partition.views(), seed)
            .into_par_iter()
            .map(|(i, piece, mut rng)| builder.build(*piece, &params, i, &mut rng))
            .collect();

        let mut communication = CommunicationCost::default();
        for c in &coresets {
            communication.record_message(&model, c.m(), 0);
        }
        let answer = solve_composed_matching(&coresets, MaximumMatchingAlgorithm::Auto);
        Ok(SimultaneousRun {
            answer,
            communication,
            piece_sizes: partition.piece_sizes(),
        })
    }

    /// Runs the vertex-cover protocol: each machine sends the coreset built by
    /// `builder` (fixed vertices + residual edges), the coordinator unions the
    /// residuals, 2-approximates a cover of the union, and adds the fixed
    /// vertices.
    pub fn run_vertex_cover<B: VcCoresetBuilder>(
        &self,
        g: &Graph,
        builder: &B,
        seed: u64,
    ) -> Result<SimultaneousRun<VertexCover>, GraphError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let partition = PartitionedGraph::new(g, self.k, self.strategy, &mut rng)?;
        let params = CoresetParams::new(g.n(), self.k);
        let model = CostModel::for_n(g.n());

        let outputs: Vec<VcCoresetOutput> = machine_jobs(&partition.views(), seed)
            .into_par_iter()
            .map(|(i, piece, mut rng)| builder.build(*piece, &params, i, &mut rng))
            .collect();

        let mut communication = CommunicationCost::default();
        for o in &outputs {
            communication.record_message(&model, o.residual.m(), o.fixed_vertices.len());
        }
        let answer = compose_vertex_cover(&outputs);
        Ok(SimultaneousRun {
            answer,
            communication,
            piece_sizes: partition.piece_sizes(),
        })
    }
}

/// The result of one simultaneous-protocol run.
#[derive(Debug, Clone)]
pub struct SimultaneousRun<T> {
    /// The coordinator's answer (a matching or a vertex cover).
    pub answer: T,
    /// Communication charged to the machines' messages.
    pub communication: CommunicationCost,
    /// Number of edges each machine received (the input partition sizes).
    pub piece_sizes: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use coresets::matching_coreset::MaximumMatchingCoreset;
    use coresets::vc_coreset::PeelingVcCoreset;
    use graph::gen::er::gnp;
    use matching::maximum::maximum_matching;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn matching_protocol_communication_is_o_of_nk() {
        let mut r = rng(1);
        let n = 600;
        let g = gnp(n, 0.02, &mut r);
        let k = 6;
        let run = CoordinatorProtocol::random(k)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 42)
            .unwrap();
        assert!(run.answer.is_valid_for(&g));
        // Each message is a matching: at most n/2 edges = n words.
        assert!(run.communication.max_message_words() <= n as u64);
        assert!(run.communication.total_words() <= (n * k) as u64);
        assert_eq!(run.communication.message_count(), k);
        // Approximation guarantee of Theorem 1.
        let opt = maximum_matching(&g).len();
        assert!(9 * run.answer.len() >= opt);
    }

    #[test]
    fn vertex_cover_protocol_covers_and_accounts() {
        let mut r = rng(2);
        let n = 800;
        let g = gnp(n, 0.015, &mut r);
        let k = 5;
        let run = CoordinatorProtocol::random(k)
            .run_vertex_cover(&g, &PeelingVcCoreset::new(), 7)
            .unwrap();
        assert!(run.answer.covers(&g));
        assert_eq!(run.communication.message_count(), k);
        assert!(run.communication.total_words() > 0);
        assert_eq!(run.piece_sizes.iter().sum::<usize>(), g.m());
    }

    #[test]
    fn runs_are_reproducible() {
        let mut r = rng(3);
        let g = gnp(300, 0.03, &mut r);
        let p = CoordinatorProtocol::random(4);
        let a = p
            .run_matching(&g, &MaximumMatchingCoreset::new(), 11)
            .unwrap();
        let b = p
            .run_matching(&g, &MaximumMatchingCoreset::new(), 11)
            .unwrap();
        assert_eq!(a.answer.len(), b.answer.len());
        assert_eq!(a.communication, b.communication);
    }

    #[test]
    fn adversarial_strategy_is_supported() {
        let mut r = rng(4);
        let g = gnp(200, 0.05, &mut r);
        let run = CoordinatorProtocol::adversarial(4)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 1)
            .unwrap();
        assert!(run.answer.is_valid_for(&g));
    }

    #[test]
    fn zero_machines_is_rejected() {
        let g = gnp(50, 0.1, &mut rng(5));
        assert!(CoordinatorProtocol::random(0)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 0)
            .is_err());
    }
}
