//! Reporting wrappers for the vertex-cover protocols.

use crate::comm::{CommunicationCost, CostModel};
use crate::coordinator::CoordinatorProtocol;
use crate::error::ProtocolError;
use crate::faults::{FaultPlan, RetryPolicy};
use crate::report::VertexCoverProtocolReport;
use coresets::vc_coreset::{GroupedVcCoreset, PeelingVcCoreset, VcCoresetBuilder};
use coresets::CoresetParams;
use graph::partition::PartitionedGraph;
use graph::{Graph, GraphError};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vertexcover::VertexCover;

/// Runs a vertex-cover protocol with an arbitrary coreset builder and reports
/// the achieved cover size against `reference_cover_size` (the exact optimum
/// when known, otherwise a certified upper bound from the instance).
pub fn report_vertex_cover_protocol<B: VcCoresetBuilder>(
    g: &Graph,
    k: usize,
    builder: &B,
    reference_cover_size: usize,
    seed: u64,
) -> Result<VertexCoverProtocolReport, GraphError> {
    let run = CoordinatorProtocol::random(k).run_vertex_cover(g, builder, seed)?;
    let cover_size = run.answer.len();
    Ok(VertexCoverProtocolReport {
        protocol: builder.name().to_string(),
        k,
        n: g.n(),
        m: g.m(),
        feasible: run.answer.covers(g),
        cover_size,
        reference_cover_size,
        approximation_ratio: VertexCoverProtocolReport::ratio(cover_size, reference_cover_size),
        communication: run.communication,
        faults: None,
    })
}

/// Runs a vertex-cover protocol under a fault plan and reports the outcome
/// with the run's [`crate::faults::FaultReport`] attached. Feasibility is
/// judged against the full input graph: a degraded cover that misses edges of
/// lost machines reports `feasible: false`, which is itself a measured
/// result.
pub fn report_vertex_cover_protocol_faulty<B: VcCoresetBuilder>(
    g: &Graph,
    k: usize,
    builder: &B,
    reference_cover_size: usize,
    seed: u64,
    plan: &FaultPlan,
    retry: &RetryPolicy,
) -> Result<VertexCoverProtocolReport, ProtocolError> {
    let faulty =
        CoordinatorProtocol::random(k).run_vertex_cover_faulty(g, builder, seed, plan, retry)?;
    let cover_size = faulty.run.answer.len();
    Ok(VertexCoverProtocolReport {
        protocol: builder.name().to_string(),
        k,
        n: g.n(),
        m: g.m(),
        feasible: faulty.run.answer.covers(g),
        cover_size,
        reference_cover_size,
        approximation_ratio: VertexCoverProtocolReport::ratio(cover_size, reference_cover_size),
        communication: faulty.run.communication,
        faults: Some(faulty.faults),
    })
}

/// Runs the paper's default protocol (Theorem 2: peeling coresets).
pub fn report_default_vertex_cover_protocol(
    g: &Graph,
    k: usize,
    reference_cover_size: usize,
    seed: u64,
) -> Result<VertexCoverProtocolReport, GraphError> {
    report_vertex_cover_protocol(g, k, &PeelingVcCoreset::new(), reference_cover_size, seed)
}

/// Runs the Remark 5.8 protocol: vertices are grouped into supervertices of
/// size `Θ(alpha / log n)`, the Theorem 2 coreset runs on the contracted
/// graph, and the final cover is expanded back. Communication is charged on
/// the contracted coresets, which is the point of the construction.
pub fn report_grouped_protocol(
    g: &Graph,
    k: usize,
    alpha: f64,
    reference_cover_size: usize,
    seed: u64,
) -> Result<VertexCoverProtocolReport, GraphError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let partition = PartitionedGraph::random(g, k, &mut rng)?;
    let params = CoresetParams::new(g.n(), k);
    let grouped = GroupedVcCoreset::for_alpha(alpha, g.n());
    let (cover_vertices, contracted_sizes) =
        grouped.run_protocol(&partition.views(), &params, seed);
    let cover = VertexCover::from_vertices(cover_vertices);

    // Contracted messages are measured in the contracted id space.
    let model = CostModel::for_n(grouped.contracted_n(g.n()));
    let mut communication = CommunicationCost::default();
    for &size in &contracted_sizes {
        // A contracted coreset of `size` items is charged as if every item
        // were an edge (2 ids) — an upper bound that keeps the accounting
        // simple and conservative.
        communication.record_message(&model, size, 0);
    }

    let cover_size = cover.len();
    Ok(VertexCoverProtocolReport {
        protocol: format!("grouped(alpha={alpha}, group={})", grouped.group_size),
        k,
        n: g.n(),
        m: g.m(),
        feasible: cover.covers(g),
        cover_size,
        reference_cover_size,
        approximation_ratio: VertexCoverProtocolReport::ratio(cover_size, reference_cover_size),
        communication,
        faults: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen::er::gnp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vertexcover::approx::two_approx_cover;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn default_protocol_is_feasible_and_reported() {
        let g = gnp(800, 0.01, &mut rng(1));
        let reference = two_approx_cover(&g).len().max(1);
        let report = report_default_vertex_cover_protocol(&g, 6, reference, 3).unwrap();
        assert!(report.feasible);
        assert!(report.cover_size > 0);
        assert!(report.approximation_ratio.is_finite());
        assert_eq!(report.communication.message_count(), 6);
    }

    #[test]
    fn grouped_protocol_reduces_communication_for_large_alpha() {
        let g = gnp(2000, 0.005, &mut rng(2));
        let reference = two_approx_cover(&g).len().max(1);
        let ungrouped = report_default_vertex_cover_protocol(&g, 8, reference, 4).unwrap();
        let grouped = report_grouped_protocol(&g, 8, 64.0, reference, 4).unwrap();
        assert!(grouped.feasible, "grouped cover must still cover the graph");
        assert!(
            grouped.communication.total_words() <= ungrouped.communication.total_words(),
            "grouping should not increase communication ({} vs {})",
            grouped.communication.total_words(),
            ungrouped.communication.total_words()
        );
    }
}
