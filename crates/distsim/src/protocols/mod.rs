//! Concrete end-to-end protocols with reporting.
//!
//! * [`matching`] — the paper's matching protocols (Theorem 1 coreset and the
//!   Remark 5.2 subsampled variant) wrapped with approximation/communication
//!   reporting.
//! * [`vertex_cover`] — the paper's vertex-cover protocols (Theorem 2 coreset
//!   and the Remark 5.8 grouped variant).
//! * [`filtering`] — the Lattanzi–Moseley–Suri–Vassilvitskii *filtering*
//!   MapReduce baseline used for the round-complexity comparison.

pub mod filtering;
pub mod matching;
pub mod vertex_cover;

pub use filtering::{filtering_matching, filtering_vertex_cover, FilteringOutcome};
pub use matching::{report_matching_protocol, report_subsampled_protocol};
pub use vertex_cover::{report_grouped_protocol, report_vertex_cover_protocol};
