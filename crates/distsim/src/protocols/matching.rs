//! Reporting wrappers for the matching protocols.
//!
//! These helpers run a coordinator-model matching protocol and package the
//! outcome into a [`MatchingProtocolReport`] that the experiment binaries
//! print as table rows.

use crate::coordinator::CoordinatorProtocol;
use crate::error::ProtocolError;
use crate::faults::{FaultPlan, RetryPolicy};
use crate::report::MatchingProtocolReport;
use coresets::matching_coreset::{
    MatchingCoresetBuilder, MaximumMatchingCoreset, SubsampledMatchingCoreset,
};
use graph::{Graph, GraphError};

/// Runs a matching protocol with an arbitrary coreset builder and reports the
/// achieved approximation against `reference_matching_size` (the exact optimum
/// when known, otherwise a certified lower bound such as a planted matching).
pub fn report_matching_protocol<B: MatchingCoresetBuilder>(
    g: &Graph,
    k: usize,
    builder: &B,
    reference_matching_size: usize,
    seed: u64,
) -> Result<MatchingProtocolReport, GraphError> {
    let run = CoordinatorProtocol::random(k).run_matching(g, builder, seed)?;
    let matching_size = run.answer.len();
    Ok(MatchingProtocolReport {
        protocol: builder.name().to_string(),
        k,
        n: g.n(),
        m: g.m(),
        matching_size,
        reference_matching_size,
        approximation_ratio: MatchingProtocolReport::ratio(reference_matching_size, matching_size),
        communication: run.communication,
        faults: None,
    })
}

/// Runs a matching protocol under a fault plan and reports the outcome with
/// the run's [`crate::faults::FaultReport`] attached.
pub fn report_matching_protocol_faulty<B: MatchingCoresetBuilder>(
    g: &Graph,
    k: usize,
    builder: &B,
    reference_matching_size: usize,
    seed: u64,
    plan: &FaultPlan,
    retry: &RetryPolicy,
) -> Result<MatchingProtocolReport, ProtocolError> {
    let faulty =
        CoordinatorProtocol::random(k).run_matching_faulty(g, builder, seed, plan, retry)?;
    let matching_size = faulty.run.answer.len();
    Ok(MatchingProtocolReport {
        protocol: builder.name().to_string(),
        k,
        n: g.n(),
        m: g.m(),
        matching_size,
        reference_matching_size,
        approximation_ratio: MatchingProtocolReport::ratio(reference_matching_size, matching_size),
        communication: faulty.run.communication,
        faults: Some(faulty.faults),
    })
}

/// Runs the paper's default protocol (Theorem 1: maximum-matching coresets).
pub fn report_default_matching_protocol(
    g: &Graph,
    k: usize,
    reference_matching_size: usize,
    seed: u64,
) -> Result<MatchingProtocolReport, GraphError> {
    report_matching_protocol(
        g,
        k,
        &MaximumMatchingCoreset::new(),
        reference_matching_size,
        seed,
    )
}

/// Runs the Remark 5.2 protocol: maximum-matching coresets subsampled with
/// probability `1/alpha`, trading approximation for an `alpha²` reduction in
/// communication.
pub fn report_subsampled_protocol(
    g: &Graph,
    k: usize,
    alpha: f64,
    reference_matching_size: usize,
    seed: u64,
) -> Result<MatchingProtocolReport, GraphError> {
    let builder = SubsampledMatchingCoreset::new(alpha);
    let mut report = report_matching_protocol(g, k, &builder, reference_matching_size, seed)?;
    report.protocol = format!("subsampled(alpha={alpha})");
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen::bipartite::planted_matching_bipartite;
    use matching::maximum::maximum_matching;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn default_protocol_report_has_small_ratio() {
        let (bg, planted) = planted_matching_bipartite(400, 0.005, &mut rng(1));
        let g = bg.to_graph();
        let opt = maximum_matching(&g).len();
        assert!(opt >= planted.len());
        let report = report_default_matching_protocol(&g, 8, opt, 3).unwrap();
        assert!(report.approximation_ratio >= 1.0 - 1e-9);
        assert!(
            report.approximation_ratio <= 3.0,
            "ratio {}",
            report.approximation_ratio
        );
        assert_eq!(report.k, 8);
        assert_eq!(report.communication.message_count(), 8);
    }

    #[test]
    fn subsampled_protocol_trades_communication_for_ratio() {
        let (bg, _) = planted_matching_bipartite(600, 0.004, &mut rng(2));
        let g = bg.to_graph();
        let opt = maximum_matching(&g).len();
        let full = report_default_matching_protocol(&g, 6, opt, 5).unwrap();
        let alpha = 4.0;
        let sub = report_subsampled_protocol(&g, 6, alpha, opt, 5).unwrap();
        assert!(sub.communication.total_words() < full.communication.total_words());
        // The subsampled protocol is allowed to be worse, but not worse than
        // ~alpha times the full protocol's ratio (generous slack for noise).
        assert!(sub.approximation_ratio <= alpha * full.approximation_ratio * 2.0);
        assert!(sub.protocol.contains("alpha=4"));
    }
}
