//! The *filtering* MapReduce baseline (Lattanzi, Moseley, Suri,
//! Vassilvitskii, SPAA 2011 — reference \[46\] of the paper).
//!
//! The paper compares the round complexity of its coreset algorithm (2 rounds,
//! or 1 if the input is pre-randomized) against filtering, which achieves a
//! 2-approximation for both problems but needs at least 3 MapReduce rounds
//! with `Õ(n^{5/3})` memory and 6 rounds at `Õ(n√n)` memory.
//!
//! Filtering computes a **maximal matching** iteratively:
//!
//! 1. sample every remaining edge independently so that the sample fits in one
//!    machine's memory,
//! 2. compute a maximal matching of the sample on that machine,
//! 3. drop every remaining edge with a matched endpoint,
//! 4. repeat until the remaining edges fit in memory, then finish exactly.
//!
//! Each iteration costs two MapReduce rounds (one to collect the sample on the
//! central machine, one to broadcast the matched vertices and filter), and the
//! final exact step costs one more; this is the round-counting convention used
//! in the experiment tables and documented in `EXPERIMENTS.md`.
//!
//! The maximal matching is a 1/2-approximate maximum matching, and both
//! endpoint sets form a 2-approximate vertex cover.

use graph::{Graph, VertexId};
use matching::greedy::maximal_matching;
use matching::matching::Matching;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vertexcover::VertexCover;

/// Outcome of a filtering run.
#[derive(Debug, Clone)]
pub struct FilteringOutcome {
    /// The maximal matching computed by filtering.
    pub matching: Matching,
    /// Number of MapReduce rounds used (2 per sampling iteration + 1 final).
    pub rounds: usize,
    /// Number of sampling iterations performed.
    pub iterations: usize,
    /// The largest sample size (in edges) ever held by the central machine.
    pub max_sample_edges: usize,
}

impl FilteringOutcome {
    /// The 2-approximate vertex cover induced by the maximal matching (both
    /// endpoints of every matched edge).
    pub fn vertex_cover(&self) -> VertexCover {
        let mut cover = VertexCover::new();
        for e in self.matching.edges() {
            cover.insert(e.u);
            cover.insert(e.v);
        }
        cover
    }
}

/// Runs the filtering algorithm for maximal matching with a per-machine
/// memory budget of `memory_edges` edges.
///
/// # Panics
///
/// Panics if `memory_edges == 0`.
pub fn filtering_matching(g: &Graph, memory_edges: usize, seed: u64) -> FilteringOutcome {
    assert!(
        memory_edges > 0,
        "memory budget must allow at least one edge"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut matched = vec![false; g.n()];
    let mut matching = Matching::new();
    let mut remaining: Vec<graph::Edge> = g.edges().to_vec();
    let mut iterations = 0usize;
    let mut rounds = 0usize;
    let mut max_sample_edges = 0usize;

    while remaining.len() > memory_edges {
        iterations += 1;
        rounds += 2; // one round to sample centrally, one to filter

        // Sample so the expected sample size is half the memory budget.
        let p = (memory_edges as f64 / (2.0 * remaining.len() as f64)).min(1.0);
        let sample: Vec<graph::Edge> = remaining
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(p))
            .collect();
        max_sample_edges = max_sample_edges.max(sample.len());

        // Maximal matching of the sample on the central machine.
        // A subset of g's edges is simple; wrap it order-preserving without a
        // validation pass.
        let sample_graph = Graph::from_edges_unchecked(g.n(), sample);
        let local = maximal_matching(&sample_graph);
        for e in local.edges() {
            matching.try_add(*e, &mut matched);
        }

        // Filter: drop edges with a matched endpoint.
        remaining.retain(|e| !matched[e.u as usize] && !matched[e.v as usize]);

        // Safety valve: if sampling made no progress (tiny graphs, unlucky
        // draws), force progress by processing a memory-sized prefix exactly.
        if local.is_empty() && remaining.len() > memory_edges {
            let prefix: Vec<graph::Edge> = remaining.iter().copied().take(memory_edges).collect();
            let prefix_graph = Graph::from_edges_unchecked(g.n(), prefix);
            for e in maximal_matching(&prefix_graph).edges() {
                matching.try_add(*e, &mut matched);
            }
            remaining.retain(|e| !matched[e.u as usize] && !matched[e.v as usize]);
        }
    }

    // Final round: the leftovers fit in memory; finish exactly.
    rounds += 1;
    max_sample_edges = max_sample_edges.max(remaining.len());
    let rest = Graph::from_edges_unchecked(g.n(), remaining);
    for e in maximal_matching(&rest).edges() {
        matching.try_add(*e, &mut matched);
    }

    FilteringOutcome {
        matching,
        rounds,
        iterations,
        max_sample_edges,
    }
}

/// Runs filtering and returns its 2-approximate vertex cover together with the
/// outcome metadata.
pub fn filtering_vertex_cover(
    g: &Graph,
    memory_edges: usize,
    seed: u64,
) -> (VertexCover, FilteringOutcome) {
    let outcome = filtering_matching(g, memory_edges, seed);
    (outcome.vertex_cover(), outcome)
}

/// Returns the vertices matched by a matching (helper shared by tests).
pub fn matched_vertices(m: &Matching) -> Vec<VertexId> {
    let mut v: Vec<VertexId> = m.matched_vertices().into_iter().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen::er::gnm;
    use matching::maximum::maximum_matching;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn filtering_outputs_a_maximal_matching() {
        let g = gnm(300, 5_000, &mut rng(1));
        let out = filtering_matching(&g, 500, 7);
        assert!(out.matching.is_valid_for(&g));
        assert!(
            out.matching.is_maximal_in(&g),
            "filtering must end with a maximal matching"
        );
        // Maximal => 1/2-approximation.
        let opt = maximum_matching(&g).len();
        assert!(2 * out.matching.len() >= opt);
        // Memory budget respected by every sample.
        assert!(
            out.max_sample_edges <= 500 + 200,
            "sample overshoot: {}",
            out.max_sample_edges
        );
    }

    #[test]
    fn filtering_needs_multiple_rounds_under_tight_memory() {
        let g = gnm(400, 12_000, &mut rng(2));
        let out = filtering_matching(&g, 1_000, 3);
        assert!(out.iterations >= 1);
        assert!(
            out.rounds >= 3,
            "filtering uses at least 3 rounds when the input exceeds memory"
        );
    }

    #[test]
    fn filtering_single_round_when_everything_fits() {
        let g = gnm(100, 300, &mut rng(3));
        let out = filtering_matching(&g, 10_000, 1);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.rounds, 1);
        assert!(out.matching.is_maximal_in(&g));
    }

    #[test]
    fn filtering_cover_is_valid_and_2_approx_shaped() {
        let g = gnm(300, 4_000, &mut rng(4));
        let (cover, outcome) = filtering_vertex_cover(&g, 800, 11);
        assert!(cover.covers(&g));
        assert_eq!(cover.len(), 2 * outcome.matching.len());
    }

    #[test]
    #[should_panic(expected = "memory budget")]
    fn zero_memory_rejected() {
        let g = gnm(10, 20, &mut rng(5));
        let _ = filtering_matching(&g, 0, 0);
    }
}
