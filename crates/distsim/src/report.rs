//! Serialisable reports of protocol runs, consumed by the experiment
//! binaries and recorded in `EXPERIMENTS.md`.

use crate::comm::CommunicationCost;
use crate::faults::FaultReport;
use serde::{Deserialize, Serialize};

/// Outcome of one matching protocol run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchingProtocolReport {
    /// Protocol name (e.g. `"maximum-matching"`, `"subsampled"`).
    pub protocol: String,
    /// Number of machines.
    pub k: usize,
    /// Vertices of the input graph.
    pub n: usize,
    /// Edges of the input graph.
    pub m: usize,
    /// Size of the matching output by the coordinator.
    pub matching_size: usize,
    /// Size of the best matching known for the input (exact when feasible,
    /// otherwise a certified lower bound such as a planted matching).
    pub reference_matching_size: usize,
    /// `reference_matching_size / matching_size` (∞ clamped to a large value
    /// when the output is empty but the reference is not).
    pub approximation_ratio: f64,
    /// Communication accounting for the run.
    pub communication: CommunicationCost,
    /// Fault accounting when the run executed under a fault plan
    /// (`null`/`None` for fault-free runs).
    pub faults: Option<FaultReport>,
}

impl MatchingProtocolReport {
    /// Computes the approximation ratio, guarding against division by zero.
    pub fn ratio(reference: usize, achieved: usize) -> f64 {
        if achieved == 0 {
            if reference == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            reference as f64 / achieved as f64
        }
    }
}

/// Outcome of one vertex-cover protocol run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VertexCoverProtocolReport {
    /// Protocol name (e.g. `"peeling"`, `"grouped"`, `"local-cover"`).
    pub protocol: String,
    /// Number of machines.
    pub k: usize,
    /// Vertices of the input graph.
    pub n: usize,
    /// Edges of the input graph.
    pub m: usize,
    /// Whether the output actually covers every edge (capped / adversarial
    /// variants can fail feasibility, which is itself a measured result).
    pub feasible: bool,
    /// Size of the cover output by the coordinator.
    pub cover_size: usize,
    /// Best known cover size for the input (exact when feasible, otherwise an
    /// upper bound certified by the instance construction).
    pub reference_cover_size: usize,
    /// `cover_size / reference_cover_size`.
    pub approximation_ratio: f64,
    /// Communication accounting for the run.
    pub communication: CommunicationCost,
    /// Fault accounting when the run executed under a fault plan
    /// (`null`/`None` for fault-free runs).
    pub faults: Option<FaultReport>,
}

impl VertexCoverProtocolReport {
    /// Computes the approximation ratio, guarding against division by zero.
    pub fn ratio(achieved: usize, reference: usize) -> f64 {
        if reference == 0 {
            if achieved == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            achieved as f64 / reference as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_ratio_handles_degenerate_cases() {
        assert_eq!(MatchingProtocolReport::ratio(0, 0), 1.0);
        assert_eq!(MatchingProtocolReport::ratio(10, 5), 2.0);
        assert!(MatchingProtocolReport::ratio(10, 0).is_infinite());
    }

    #[test]
    fn cover_ratio_handles_degenerate_cases() {
        assert_eq!(VertexCoverProtocolReport::ratio(0, 0), 1.0);
        assert_eq!(VertexCoverProtocolReport::ratio(30, 10), 3.0);
        assert!(VertexCoverProtocolReport::ratio(5, 0).is_infinite());
    }

    #[test]
    fn reports_serialize_to_json() {
        let report = MatchingProtocolReport {
            protocol: "maximum-matching".into(),
            k: 4,
            n: 100,
            m: 400,
            matching_size: 45,
            reference_matching_size: 50,
            approximation_ratio: 50.0 / 45.0,
            communication: CommunicationCost::default(),
            faults: None,
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("maximum-matching"));
        let back: MatchingProtocolReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.matching_size, 45);
    }

    #[test]
    fn matching_report_round_trips_every_field() {
        let mut communication = CommunicationCost::default();
        communication.record_message(&crate::comm::CostModel::for_n(100), 45, 0);
        let report = MatchingProtocolReport {
            protocol: "subsampled".into(),
            k: 8,
            n: 100,
            m: 400,
            matching_size: 45,
            reference_matching_size: 50,
            approximation_ratio: 50.0 / 45.0,
            communication,
            faults: Some(FaultReport::new(9)),
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: MatchingProtocolReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.protocol, report.protocol);
        assert_eq!(back.k, report.k);
        assert_eq!(back.n, report.n);
        assert_eq!(back.m, report.m);
        assert_eq!(back.matching_size, report.matching_size);
        assert_eq!(back.reference_matching_size, report.reference_matching_size);
        assert_eq!(back.approximation_ratio, report.approximation_ratio);
        assert_eq!(back.communication, report.communication);
        assert_eq!(back.faults, report.faults);
    }

    #[test]
    fn vertex_cover_report_round_trips_through_pretty_json() {
        let mut communication = CommunicationCost::default();
        let model = crate::comm::CostModel::for_n(1 << 20);
        communication.record_message(&model, 1024, 64);
        communication.record_message(&model, 0, 32);
        let report = VertexCoverProtocolReport {
            protocol: "peeling".into(),
            k: 32,
            n: 1 << 20,
            m: 1 << 23,
            feasible: true,
            cover_size: 9000,
            reference_cover_size: 4096,
            approximation_ratio: 9000.0 / 4096.0,
            communication,
            faults: None,
        };
        let pretty = serde_json::to_string_pretty(&report).unwrap();
        assert!(pretty.contains('\n'), "pretty output should be multi-line");
        let back: VertexCoverProtocolReport = serde_json::from_str(&pretty).unwrap();
        assert_eq!(back.feasible, report.feasible);
        assert_eq!(back.cover_size, report.cover_size);
        assert_eq!(back.approximation_ratio, report.approximation_ratio);
        assert_eq!(back.communication, report.communication);
    }

    #[test]
    fn report_deserialization_rejects_missing_fields() {
        let err = serde_json::from_str::<MatchingProtocolReport>("{\"protocol\":\"x\"}");
        assert!(err.is_err());
        assert!(err.unwrap_err().to_string().contains("missing field"));
    }
}
