//! MapReduce simulation (Karloff et al. model, as used by the paper).
//!
//! The paper's MapReduce application (Section 1.1) uses `k = √n` machines,
//! each with `Õ(n√n)` memory, and finishes in **two rounds**:
//!
//! * **Round 1** — every machine randomly re-shuffles the edges it holds
//!   across the `k` machines; afterwards the edge set is randomly
//!   `k`-partitioned.
//! * **Round 2** — every machine sends its randomized composable coreset to a
//!   designated machine `M`, which holds the union (`k · Õ(n) = Õ(n√n)`
//!   edges, within its memory) and computes the final answer.
//!
//! If the input is already randomly distributed, round 1 can be skipped and
//! the algorithm takes a single round. The simulator tracks, per round, the
//! maximum number of words resident on any machine so that the memory budget
//! claim can be checked experimentally (experiment E8). As in the
//! coordinator model, every maximum-matching solve (per-machine coresets,
//! machine `M`'s composed solve) runs on the compacted, epoch-reset,
//! warm-started [`matching::MatchingEngine`] (experiment E13), and every
//! vertex-cover peeling / composition runs on the bucket-queue
//! `vertexcover::VcEngine` (experiment E14).
//!
//! Round 2's fan-out runs on the vendored rayon backend's **work-stealing
//! chunk queue** (experiment E15): machines are handed to scoped workers a
//! chunk at a time, so a machine holding a disproportionate share of the
//! shuffled edges cannot serialize the round. Machine `M`'s composition also
//! fans out its independent sub-solves (warm-start screening, residual-slice
//! statistics) on the same pool; results reassemble in machine order, so
//! simulated rounds stay bit-identical at every thread count.

use crate::comm::CostModel;
use coresets::matching_coreset::MatchingCoresetBuilder;
use coresets::streams::machine_jobs;
use coresets::vc_coreset::{VcCoresetBuilder, VcCoresetOutput};
use coresets::{compose_vertex_cover, solve_composed_matching, CoresetParams};
use graph::partition::PartitionedGraph;
use graph::{Graph, GraphError, GraphView};
use matching::matching::Matching;
use matching::maximum::MaximumMatchingAlgorithm;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use vertexcover::VertexCover;

/// Static configuration of a MapReduce deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapReduceConfig {
    /// Number of machines.
    pub k: usize,
    /// Memory budget per machine, in words (vertex ids).
    pub memory_words: u64,
    /// Whether the input is already randomly partitioned across the machines
    /// (in which case the shuffle round is skipped, as in the paper's
    /// discussion following the two-round algorithm).
    pub input_already_random: bool,
}

impl MapReduceConfig {
    /// The paper's parameterisation for an `n`-vertex, `m`-edge graph:
    /// `k = ceil(sqrt(n))` machines with `c · n·sqrt(n) · log2(n)` words of
    /// memory each.
    pub fn paper_defaults(n: usize) -> Self {
        let k = (n as f64).sqrt().ceil() as usize;
        let log_n = (n.max(2) as f64).log2();
        let memory_words = (2.0 * n as f64 * (n as f64).sqrt() * log_n).ceil() as u64;
        MapReduceConfig {
            k: k.max(1),
            memory_words,
            input_already_random: false,
        }
    }
}

/// Per-round memory statistics of a MapReduce run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Human-readable description of what the round did.
    pub description: String,
    /// The maximum number of words resident on any machine during the round.
    pub max_words_per_machine: u64,
}

/// The outcome of a MapReduce computation.
#[derive(Debug, Clone)]
pub struct MapReduceOutcome<T> {
    /// The final answer.
    pub answer: T,
    /// One entry per MapReduce round that was executed.
    pub rounds: Vec<RoundStats>,
    /// Whether every round respected the per-machine memory budget.
    pub within_memory_budget: bool,
}

impl<T> MapReduceOutcome<T> {
    /// Number of rounds used.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }
}

/// Simulator for the paper's two-round coreset-based MapReduce algorithms.
#[derive(Debug, Clone, Copy)]
pub struct MapReduceSimulator {
    /// Deployment parameters.
    pub config: MapReduceConfig,
}

impl MapReduceSimulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: MapReduceConfig) -> Self {
        MapReduceSimulator { config }
    }

    /// Runs the two-round (or one-round) coreset algorithm for maximum
    /// matching.
    pub fn run_matching<B: MatchingCoresetBuilder>(
        &self,
        g: &Graph,
        builder: &B,
        seed: u64,
    ) -> Result<MapReduceOutcome<Matching>, GraphError> {
        self.run_generic(g, seed, |pieces, params, machine_seed| {
            // Per-machine RNG streams are fixed before the round-2 fan-out.
            let coresets: Vec<Graph> = machine_jobs(pieces, machine_seed)
                .into_par_iter()
                .map(|(i, p, mut rng)| builder.build(*p, params, i, &mut rng))
                .collect();
            let coreset_words: Vec<u64> = coresets.iter().map(|c| 2 * c.m() as u64).collect();
            let answer = solve_composed_matching(&coresets, MaximumMatchingAlgorithm::Auto);
            (answer, coreset_words)
        })
    }

    /// Runs the two-round (or one-round) coreset algorithm for minimum vertex
    /// cover.
    pub fn run_vertex_cover<B: VcCoresetBuilder>(
        &self,
        g: &Graph,
        builder: &B,
        seed: u64,
    ) -> Result<MapReduceOutcome<VertexCover>, GraphError> {
        self.run_generic(g, seed, |pieces, params, machine_seed| {
            let outputs: Vec<VcCoresetOutput> = machine_jobs(pieces, machine_seed)
                .into_par_iter()
                .map(|(i, p, mut rng)| builder.build(*p, params, i, &mut rng))
                .collect();
            let model = CostModel::for_n(params.n);
            let coreset_words: Vec<u64> = outputs
                .iter()
                .map(|o| model.words(o.residual.m(), o.fixed_vertices.len()))
                .collect();
            let answer = compose_vertex_cover(&outputs);
            (answer, coreset_words)
        })
    }

    fn run_generic<T>(
        &self,
        g: &Graph,
        seed: u64,
        solve: impl FnOnce(&[GraphView<'_>], &CoresetParams, u64) -> (T, Vec<u64>),
    ) -> Result<MapReduceOutcome<T>, GraphError> {
        let k = self.config.k;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut rounds = Vec::new();

        // Round 1 (shuffle): produce a random k-partition into the shared
        // edge arena. The memory high water mark of the round is the largest
        // piece any machine receives (each machine holds its share of the
        // input plus what it receives; the received share dominates and is
        // what we report).
        let partition = PartitionedGraph::random(g, k, &mut rng)?;
        let max_piece_words = partition
            .piece_sizes()
            .iter()
            .map(|&m| 2 * m as u64)
            .max()
            .unwrap_or(0);
        if !self.config.input_already_random {
            rounds.push(RoundStats {
                description: "shuffle: random re-partitioning of the edges".into(),
                max_words_per_machine: max_piece_words,
            });
        }

        // Round 2: build coresets locally (in parallel, each machine on its
        // own pre-derived RNG stream), send them to machine M, solve there.
        let params = CoresetParams::new(g.n(), k);
        let (answer, coreset_words) = solve(&partition.views(), &params, seed);
        let central_words: u64 = coreset_words.iter().sum();
        rounds.push(RoundStats {
            description: "coresets: build locally, union and solve on the designated machine"
                .into(),
            max_words_per_machine: central_words.max(max_piece_words),
        });

        let within_memory_budget = rounds
            .iter()
            .all(|r| r.max_words_per_machine <= self.config.memory_words);
        Ok(MapReduceOutcome {
            answer,
            rounds,
            within_memory_budget,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coresets::matching_coreset::MaximumMatchingCoreset;
    use coresets::vc_coreset::PeelingVcCoreset;
    use graph::gen::er::gnm;
    use matching::maximum::maximum_matching;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn paper_defaults_use_sqrt_n_machines() {
        let cfg = MapReduceConfig::paper_defaults(10_000);
        assert_eq!(cfg.k, 100);
        assert!(cfg.memory_words >= 10_000 * 100);
    }

    #[test]
    fn two_rounds_for_matching_and_within_budget() {
        // Dense-ish graph: m ~ n^1.5 like the paper's regime.
        let n = 900;
        let m = 20_000;
        let g = gnm(n, m, &mut rng(1));
        let cfg = MapReduceConfig::paper_defaults(n);
        let sim = MapReduceSimulator::new(cfg);
        let out = sim
            .run_matching(&g, &MaximumMatchingCoreset::new(), 3)
            .unwrap();
        assert_eq!(out.round_count(), 2);
        assert!(out.within_memory_budget, "rounds: {:?}", out.rounds);
        assert!(out.answer.is_valid_for(&g));
        let opt = maximum_matching(&g).len();
        assert!(9 * out.answer.len() >= opt);
    }

    #[test]
    fn one_round_when_input_is_already_random() {
        let n = 400;
        let g = gnm(n, 6_000, &mut rng(2));
        let mut cfg = MapReduceConfig::paper_defaults(n);
        cfg.input_already_random = true;
        let out = MapReduceSimulator::new(cfg)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 5)
            .unwrap();
        assert_eq!(out.round_count(), 1);
        assert!(out.answer.is_valid_for(&g));
    }

    #[test]
    fn vertex_cover_two_rounds_and_feasible() {
        let n = 900;
        let g = gnm(n, 15_000, &mut rng(3));
        let cfg = MapReduceConfig::paper_defaults(n);
        let out = MapReduceSimulator::new(cfg)
            .run_vertex_cover(&g, &PeelingVcCoreset::new(), 9)
            .unwrap();
        assert_eq!(out.round_count(), 2);
        assert!(out.within_memory_budget);
        assert!(out.answer.covers(&g));
    }

    #[test]
    fn tight_memory_budget_is_detected() {
        let n = 300;
        let g = gnm(n, 8_000, &mut rng(4));
        let cfg = MapReduceConfig {
            k: 4,
            memory_words: 10,
            input_already_random: false,
        };
        let out = MapReduceSimulator::new(cfg)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 1)
            .unwrap();
        assert!(!out.within_memory_budget);
    }

    #[test]
    fn zero_machines_rejected() {
        let g = gnm(20, 30, &mut rng(5));
        let cfg = MapReduceConfig {
            k: 0,
            memory_words: 1000,
            input_already_random: false,
        };
        assert!(MapReduceSimulator::new(cfg)
            .run_matching(&g, &MaximumMatchingCoreset::new(), 0)
            .is_err());
    }
}
