//! Communication accounting.
//!
//! The paper states its bounds in bits; the simulator uses the natural
//! machine-word cost model: an edge is two vertex ids, a vertex id is one
//! word, and a word is `ceil(log2 n)` bits (reported as both words and bits).
//! Only the *content* of the messages is charged — framing and headers are
//! ignored, matching how communication complexity is measured.

use serde::{Deserialize, Serialize};

/// Cost model translating graph objects into words and bits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Number of bits needed to name one vertex (`ceil(log2 n)`, at least 1).
    pub bits_per_vertex: u32,
}

impl CostModel {
    /// Cost model for graphs with `n` vertices.
    pub fn for_n(n: usize) -> Self {
        // ceil(log2 n): ids in 0..n need (n-1).ilog2() + 1 bits for n >= 2.
        let bits = (n.max(2) - 1).ilog2() + 1;
        CostModel {
            bits_per_vertex: bits.max(1),
        }
    }

    /// Words (vertex ids) needed to send `edges` edges and `vertices` vertex ids.
    pub fn words(&self, edges: usize, vertices: usize) -> u64 {
        2 * edges as u64 + vertices as u64
    }

    /// Bits needed to send `edges` edges and `vertices` vertex ids.
    pub fn bits(&self, edges: usize, vertices: usize) -> u64 {
        self.words(edges, vertices) * self.bits_per_vertex as u64
    }
}

/// Accumulated communication of one protocol run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommunicationCost {
    /// Words sent by each machine (message content only).
    pub per_machine_words: Vec<u64>,
    /// Bits sent by each machine.
    pub per_machine_bits: Vec<u64>,
}

impl CommunicationCost {
    /// Records one machine's message consisting of `edges` edges and
    /// `vertices` vertex ids under the given cost model.
    pub fn record_message(&mut self, model: &CostModel, edges: usize, vertices: usize) {
        self.per_machine_words.push(model.words(edges, vertices));
        self.per_machine_bits.push(model.bits(edges, vertices));
    }

    /// Total words across machines.
    pub fn total_words(&self) -> u64 {
        self.per_machine_words.iter().sum()
    }

    /// Total bits across machines.
    pub fn total_bits(&self) -> u64 {
        self.per_machine_bits.iter().sum()
    }

    /// The largest single message, in words.
    pub fn max_message_words(&self) -> u64 {
        self.per_machine_words.iter().copied().max().unwrap_or(0)
    }

    /// Number of messages recorded (= number of machines that sent one).
    pub fn message_count(&self) -> usize {
        self.per_machine_words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_bits_grow_with_n() {
        let small = CostModel::for_n(16);
        let large = CostModel::for_n(1 << 20);
        assert!(small.bits_per_vertex < large.bits_per_vertex);
        assert_eq!(CostModel::for_n(16).bits_per_vertex, 4);
        assert_eq!(CostModel::for_n(17).bits_per_vertex, 5);
    }

    #[test]
    fn words_and_bits_accounting() {
        let model = CostModel::for_n(1024); // 10 bits per vertex
        assert_eq!(model.bits_per_vertex, 10);
        assert_eq!(model.words(3, 2), 8);
        assert_eq!(model.bits(3, 2), 80);
    }

    #[test]
    fn accumulation() {
        let model = CostModel::for_n(256);
        let mut cost = CommunicationCost::default();
        cost.record_message(&model, 10, 0);
        cost.record_message(&model, 0, 5);
        cost.record_message(&model, 2, 2);
        assert_eq!(cost.message_count(), 3);
        assert_eq!(cost.total_words(), 20 + 5 + 6);
        assert_eq!(cost.max_message_words(), 20);
        assert_eq!(cost.total_bits(), 31 * 8);
    }

    #[test]
    fn empty_cost_is_zero() {
        let cost = CommunicationCost::default();
        assert_eq!(cost.total_words(), 0);
        assert_eq!(cost.max_message_words(), 0);
        assert_eq!(cost.message_count(), 0);
    }

    #[test]
    fn tiny_n_has_at_least_one_bit() {
        assert!(CostModel::for_n(0).bits_per_vertex >= 1);
        assert!(CostModel::for_n(1).bits_per_vertex >= 1);
    }
}
