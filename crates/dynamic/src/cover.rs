//! The incremental 2-approximate vertex cover.
//!
//! The matched endpoints of any **maximal** matching form a vertex cover of
//! size at most twice the minimum (the classical 2-approximation). Since
//! [`DynamicMatcher`] maintains maximality under churn, [`DynamicCover`]
//! gets an always-feasible, always-2-approximate cover for free: it owns a
//! matcher, forwards updates to it, and reads the cover off the mate array.
//!
//! For query-time refinement it also owns a private [`VcEngine`] whose
//! epoch-stamped `VcWorkspace` is reused across calls —
//! [`DynamicCover::resolve_refined`] runs the engine-backed 2-approximation
//! on the current graph without reallocating solver scratch.

use crate::matcher::DynamicMatcher;
use graph::{ChurnOp, Edge, Graph, GraphError};
use vertexcover::{VcEngine, VertexCover};

/// A 2-approximate vertex cover maintained under edge churn as the matched
/// endpoints of a [`DynamicMatcher`]'s maximal matching.
#[derive(Debug)]
pub struct DynamicCover {
    matcher: DynamicMatcher,
    vc_engine: VcEngine,
}

impl DynamicCover {
    /// An empty cover structure over `n` vertices (default repair slack).
    pub fn new(n: usize) -> Self {
        DynamicCover {
            matcher: DynamicMatcher::new(n),
            vc_engine: VcEngine::new(),
        }
    }

    /// Builds the structure over `g`'s edge set (see
    /// [`DynamicMatcher::from_graph`]).
    pub fn from_graph(g: &Graph, eps: f64) -> Result<Self, GraphError> {
        Ok(DynamicCover {
            matcher: DynamicMatcher::from_graph(g, eps)?,
            vc_engine: VcEngine::new(),
        })
    }

    /// Applies one churn operation; returns whether the edge set changed.
    pub fn apply(&mut self, op: ChurnOp) -> Result<bool, GraphError> {
        self.matcher.apply(op)
    }

    /// Inserts an edge (see [`DynamicMatcher::insert`]).
    pub fn insert(&mut self, e: Edge) -> Result<bool, GraphError> {
        self.matcher.insert(e)
    }

    /// Deletes an edge (see [`DynamicMatcher::delete`]).
    pub fn delete(&mut self, e: Edge) -> Result<bool, GraphError> {
        self.matcher.delete(e)
    }

    /// Size of the maintained cover: both endpoints of every matching edge.
    /// Feasible (the matching is maximal) and at most `2 · |minimum cover|`.
    #[inline]
    pub fn cover_size(&self) -> usize {
        2 * self.matcher.matching_size()
    }

    /// The maintained cover as an owned [`VertexCover`].
    pub fn cover(&self) -> VertexCover {
        let mut cover = VertexCover::new();
        for e in self.matcher.matching().edges() {
            cover.insert(e.u);
            cover.insert(e.v);
        }
        cover
    }

    /// The underlying incremental matcher (for matching-size queries on the
    /// same update stream).
    #[inline]
    pub fn matcher(&self) -> &DynamicMatcher {
        &self.matcher
    }

    /// Mutable access to the underlying matcher (e.g. to call
    /// [`DynamicMatcher::resolve_max`]).
    #[inline]
    pub fn matcher_mut(&mut self) -> &mut DynamicMatcher {
        &mut self.matcher
    }

    /// Query-time refinement: the engine-backed greedy 2-approximate cover
    /// of the **current** graph, computed on this structure's private
    /// [`VcEngine`] (its epoch-stamped workspace is reused across calls, so
    /// repeated refinements allocate no fresh solver scratch). Does not
    /// change the maintained cover.
    pub fn resolve_refined(&mut self) -> VertexCover {
        let g = self.matcher.current_graph();
        self.vc_engine.two_approx_cover(&g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen::er::gnp;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn cover_is_always_feasible_under_churn() {
        let g = gnp(50, 0.08, &mut ChaCha8Rng::seed_from_u64(1));
        let mut dc = DynamicCover::from_graph(&g, 0.5).unwrap();
        let mut r = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            let u = r.gen_range(0..50u32);
            let v = r.gen_range(0..50u32);
            if u == v {
                continue;
            }
            let e = Edge::new(u, v);
            if r.gen_bool(0.5) {
                dc.insert(e).unwrap();
            } else {
                dc.delete(e).unwrap();
            }
            let cover = dc.cover();
            let current = dc.matcher().current_graph();
            assert!(cover.covers(&current), "cover must stay feasible");
            assert_eq!(cover.len(), dc.cover_size());
        }
    }

    #[test]
    fn refined_cover_is_feasible_and_engine_reuse_is_stable() {
        let g = gnp(60, 0.1, &mut ChaCha8Rng::seed_from_u64(3));
        let mut dc = DynamicCover::from_graph(&g, 0.5).unwrap();
        let first = dc.resolve_refined();
        assert!(first.covers(&g));
        // Same graph, same engine: the refinement is reproducible.
        assert_eq!(dc.resolve_refined(), first);
        dc.insert(Edge::new(0, 1)).unwrap();
        let current = dc.matcher().current_graph();
        assert!(dc.resolve_refined().covers(&current));
    }

    #[test]
    fn empty_structure_has_empty_cover() {
        let dc = DynamicCover::new(5);
        assert_eq!(dc.cover_size(), 0);
        assert!(dc.cover().is_empty());
    }
}
