//! The incremental maximal-matching structure.
//!
//! See the [crate docs](crate) for the update model and guarantees. The hot
//! paths ([`DynamicMatcher::insert`], [`DynamicMatcher::delete`] and the
//! repair helpers they call) perform **no per-update allocation**: adjacency
//! edits are in-place sorted inserts/removes, and the repair scans use the
//! matcher's epoch-stamped scratch (`stamp`) to memoize "this vertex has no
//! free neighbour" verdicts within one operation's repair epoch. The
//! memoization is sound because a repair never *frees* a vertex — matched
//! vertices stay matched through the length-3 rotations — so a "no free
//! neighbour" verdict cannot be invalidated later in the same epoch.

use graph::{ChurnOp, Edge, Graph, GraphError, VertexId};
use matching::maximum::MaximumMatchingAlgorithm;
use matching::{Matching, MatchingEngine};

/// Sentinel for "unmatched" in the mate array.
const NONE: VertexId = VertexId::MAX;

/// Update/repair counters of one [`DynamicMatcher`] (monotone over its life).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynStats {
    /// Effective edge insertions.
    pub inserts: u64,
    /// Effective edge deletions.
    pub deletes: u64,
    /// Freed vertices rematched to a free neighbour (greedy pass).
    pub rematches: u64,
    /// Length-3 augmenting rotations performed by the bounded repair.
    pub rotations: u64,
    /// Repairs skipped or aborted by the degree threshold / probe budget
    /// (each accrues one unit of dirt).
    pub skipped_repairs: u64,
    /// Full engine re-solves triggered by the dirt budget.
    pub fallback_resolves: u64,
}

/// A maximal matching maintained under edge churn with degree-bounded repair
/// and an engine-backed fallback re-solve. See the [crate docs](crate).
#[derive(Debug)]
pub struct DynamicMatcher {
    n: usize,
    /// Sorted adjacency lists; the edge set is exactly
    /// `{(u, v) : v ∈ adj[u], u < v}`.
    adj: Vec<Vec<VertexId>>,
    m: usize,
    /// `mate[v]` is `v`'s partner, or [`NONE`].
    mate: Vec<VertexId>,
    matched_pairs: usize,
    /// Epoch-stamped repair scratch: `stamp[z] == epoch` means `z`'s
    /// neighbourhood was scanned this epoch and held no free vertex.
    stamp: Vec<u32>,
    epoch: u32,
    /// Degree threshold `D`: repairs only walk neighbourhoods of degree
    /// `<= D`, with at most `D` probes per repair.
    degree_threshold: usize,
    /// Accrued dirt (skipped/aborted repairs since the last full solve).
    dirt: usize,
    /// Dirt level that triggers the fallback re-solve.
    dirt_budget: usize,
    eps: f64,
    engine: MatchingEngine,
    stats: DynStats,
}

impl DynamicMatcher {
    /// An empty matcher over `n` vertices with the default slack `ε = 0.5`.
    pub fn new(n: usize) -> Self {
        // eps = 0.5 is validated by construction; the expect cannot fire.
        match Self::with_eps(n, 0.5) {
            Ok(s) => s,
            // Unreachable: 0.5 is finite and positive.
            Err(_) => unreachable!("default eps is valid"), // xtask: allow(error-hygiene)
        }
    }

    /// An empty matcher over `n` vertices with repair slack `eps` (the degree
    /// threshold is `D ≈ √(2m)/eps`, re-derived after every full solve).
    /// `eps` must be finite and positive.
    pub fn with_eps(n: usize, eps: f64) -> Result<Self, GraphError> {
        if !(eps.is_finite() && eps > 0.0) {
            return Err(GraphError::InvalidParameter {
                reason: format!("repair slack eps must be finite and positive, got {eps}"),
            });
        }
        let mut s = DynamicMatcher {
            n,
            adj: vec![Vec::new(); n],
            m: 0,
            mate: vec![NONE; n],
            matched_pairs: 0,
            stamp: vec![0; n],
            epoch: 0,
            degree_threshold: 0,
            dirt: 0,
            dirt_budget: 0,
            eps,
            engine: MatchingEngine::new(),
            stats: DynStats::default(),
        };
        s.rederive_budgets();
        Ok(s)
    }

    /// Builds the matcher over `g`'s edge set and seeds it with the greedy
    /// maximal matching in canonical edge order (`O(m)` after adjacency
    /// construction). Call [`resolve_max`](Self::resolve_max) afterwards if a
    /// *maximum* starting matching is wanted.
    pub fn from_graph(g: &Graph, eps: f64) -> Result<Self, GraphError> {
        let mut s = Self::with_eps(g.n(), eps)?;
        for e in g.edges() {
            s.adj[e.u as usize].push(e.v);
            s.adj[e.v as usize].push(e.u);
        }
        // `Graph` does not guarantee an edge order (generators may emit
        // shuffled edges); sort so the binary-search update paths work and
        // the greedy seed below depends only on the edge *set*.
        for list in &mut s.adj {
            list.sort_unstable();
        }
        s.m = g.m();
        let mut order: Vec<Edge> = g.edges().to_vec();
        order.sort_unstable();
        for e in order {
            let (u, v) = (e.u as usize, e.v as usize);
            if s.mate[u] == NONE && s.mate[v] == NONE {
                s.mate[u] = e.v;
                s.mate[v] = e.u;
                s.matched_pairs += 1;
            }
        }
        s.rederive_budgets();
        Ok(s)
    }

    /// Re-derives the degree threshold and dirt budget from the current edge
    /// count: `D = max(8, ⌈√(2m)/eps⌉)`, dirt budget `= max(64, D)`.
    fn rederive_budgets(&mut self) {
        let d = ((2.0 * self.m as f64).sqrt() / self.eps).ceil() as usize;
        self.degree_threshold = d.max(8);
        self.dirt_budget = self.degree_threshold.max(64);
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Current degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Size of the maintained matching.
    #[inline]
    pub fn matching_size(&self) -> usize {
        self.matched_pairs
    }

    /// `v`'s current partner, if matched.
    #[inline]
    pub fn mate(&self, v: VertexId) -> Option<VertexId> {
        let w = self.mate[v as usize];
        (w != NONE).then_some(w)
    }

    /// The current degree threshold `D` bounding repairs.
    #[inline]
    pub fn degree_threshold(&self) -> usize {
        self.degree_threshold
    }

    /// Update/repair counters.
    #[inline]
    pub fn stats(&self) -> DynStats {
        self.stats
    }

    /// Overrides the repair budgets (testing hook): `degree_threshold`
    /// bounds each repair's neighbourhood walks and probe count,
    /// `dirt_budget` is the skipped-repair level that triggers the fallback
    /// re-solve. Both are re-derived from `m` and `eps` at the next full
    /// solve.
    pub fn set_budgets(&mut self, degree_threshold: usize, dirt_budget: usize) {
        self.degree_threshold = degree_threshold;
        self.dirt_budget = dirt_budget;
    }

    /// Applies one churn operation; returns whether the edge set changed.
    pub fn apply(&mut self, op: ChurnOp) -> Result<bool, GraphError> {
        match op {
            ChurnOp::Insert(e) => self.insert(e),
            ChurnOp::Delete(e) => self.delete(e),
        }
    }

    fn check_range(&self, e: Edge) -> Result<(), GraphError> {
        if e.v as usize >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: e.v,
                n: self.n,
            });
        }
        Ok(())
    }

    /// Starts a new repair epoch (handles stamp wraparound).
    fn bump_epoch(&mut self) {
        if self.epoch == u32::MAX {
            for s in &mut self.stamp {
                *s = 0;
            }
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Inserts edge `e`. Returns `Ok(true)` if it was absent (and is now
    /// present), `Ok(false)` for a duplicate no-op.
    ///
    /// If both endpoints are free they are matched directly; if exactly one
    /// is free, a bounded length-3 rotation through the other endpoint's
    /// mate may still grow the matching. Either way the matching stays
    /// maximal: the new edge ends with at least one matched endpoint.
    pub fn insert(&mut self, e: Edge) -> Result<bool, GraphError> {
        self.check_range(e)?;
        let (u, v) = (e.u as usize, e.v as usize);
        let pos_u = match self.adj[u].binary_search(&e.v) {
            Ok(_) => return Ok(false),
            Err(p) => p,
        };
        self.adj[u].insert(pos_u, e.v);
        // Present in neither list or both: the u-probe already decided.
        match self.adj[v].binary_search(&e.u) {
            Ok(_) => debug_assert!(false, "adjacency lists out of sync"),
            Err(p) => self.adj[v].insert(p, e.u),
        }
        self.m += 1;
        self.stats.inserts += 1;
        self.bump_epoch();
        let (mu, mv) = (self.mate[u], self.mate[v]);
        if mu == NONE && mv == NONE {
            self.mate[u] = e.v;
            self.mate[v] = e.u;
            self.matched_pairs += 1;
            self.stats.rematches += 1;
        } else if mu == NONE || mv == NONE {
            // One endpoint free: try to grow through the matched endpoint's
            // mate (x free — w matched — z = mate(w) — free y rotation).
            let (x, w) = if mu == NONE { (e.u, e.v) } else { (e.v, e.u) };
            let mut budget = self.degree_threshold;
            if !self.try_rotate(x, w, &mut budget) && budget == 0 {
                self.dirt += 1;
                self.stats.skipped_repairs += 1;
            }
        }
        self.maybe_fallback();
        Ok(true)
    }

    /// Deletes edge `e`. Returns `Ok(true)` if it was present (and is now
    /// absent), `Ok(false)` for an absent no-op.
    ///
    /// Deleting a matched edge frees both endpoints; each is repaired by a
    /// full greedy scan (preserving maximality) plus a degree-bounded
    /// length-3 rotation attempt (recovering size where cheap).
    pub fn delete(&mut self, e: Edge) -> Result<bool, GraphError> {
        self.check_range(e)?;
        let (u, v) = (e.u as usize, e.v as usize);
        let pos_u = match self.adj[u].binary_search(&e.v) {
            Ok(p) => p,
            Err(_) => return Ok(false),
        };
        self.adj[u].remove(pos_u);
        match self.adj[v].binary_search(&e.u) {
            Ok(p) => {
                self.adj[v].remove(p);
            }
            Err(_) => debug_assert!(false, "adjacency lists out of sync"),
        }
        self.m -= 1;
        self.stats.deletes += 1;
        if self.mate[u] == e.v {
            self.mate[u] = NONE;
            self.mate[v] = NONE;
            self.matched_pairs -= 1;
            self.bump_epoch();
            self.repair_vertex(e.u);
            if self.mate[v] == NONE {
                self.repair_vertex(e.v);
            }
        }
        self.maybe_fallback();
        Ok(true)
    }

    /// Repairs freed vertex `x`: greedy full scan for a free neighbour
    /// (required for maximality — never skipped), then, if `deg(x) <= D`, a
    /// budgeted length-3 rotation attempt through each matched neighbour.
    fn repair_vertex(&mut self, x: VertexId) {
        let xi = x as usize;
        // Greedy pass: match to the smallest free neighbour, if any.
        let mut free = NONE;
        for idx in 0..self.adj[xi].len() {
            let w = self.adj[xi][idx];
            if self.mate[w as usize] == NONE {
                free = w;
                break;
            }
        }
        if free != NONE {
            self.mate[xi] = free;
            self.mate[free as usize] = x;
            self.matched_pairs += 1;
            self.stats.rematches += 1;
            return;
        }
        // Bounded augmenting pass: all neighbours are matched; look for a
        // length-3 augmenting path x — w — mate(w) — free y.
        if self.adj[xi].len() > self.degree_threshold {
            self.dirt += 1;
            self.stats.skipped_repairs += 1;
            return;
        }
        let mut budget = self.degree_threshold;
        for idx in 0..self.adj[xi].len() {
            if budget == 0 {
                self.dirt += 1;
                self.stats.skipped_repairs += 1;
                return;
            }
            budget -= 1;
            let w = self.adj[xi][idx];
            if self.try_rotate(x, w, &mut budget) {
                return;
            }
        }
    }

    /// Attempts the length-3 rotation `x — w — z=mate(w) — y` for free `x`,
    /// matched neighbour `w`: rematches `w` to `x` and `z` to a free
    /// neighbour `y`, growing the matching by one. Walks `z`'s list only if
    /// `deg(z) <= D` and the probe budget allows; memoizes failures in the
    /// epoch stamp. Returns whether a rotation happened.
    fn try_rotate(&mut self, x: VertexId, w: VertexId, budget: &mut usize) -> bool {
        let z = self.mate[w as usize];
        debug_assert_ne!(z, NONE, "rotation requires a matched pivot");
        let zi = z as usize;
        if self.stamp[zi] == self.epoch || self.adj[zi].len() > self.degree_threshold {
            return false;
        }
        for idx in 0..self.adj[zi].len() {
            if *budget == 0 {
                // Out of probes: conservatively record nothing about z (its
                // scan is incomplete), let the caller account the dirt.
                return false;
            }
            *budget -= 1;
            let y = self.adj[zi][idx];
            if y != x && self.mate[y as usize] == NONE {
                self.mate[x as usize] = w;
                self.mate[w as usize] = x;
                self.mate[zi] = y;
                self.mate[y as usize] = z;
                self.matched_pairs += 1;
                self.stats.rotations += 1;
                return true;
            }
        }
        // Full scan found no free neighbour; matched vertices never become
        // free within an epoch, so this verdict stays valid until the next
        // operation bumps the epoch.
        self.stamp[zi] = self.epoch;
        false
    }

    /// Runs the fallback full re-solve if the accrued dirt crossed the
    /// budget.
    fn maybe_fallback(&mut self) {
        if self.dirt >= self.dirt_budget {
            self.stats.fallback_resolves += 1;
            self.resolve_max();
        }
    }

    /// Replaces the maintained matching with a **maximum** matching of the
    /// current graph, computed by the owned [`MatchingEngine`] warm-started
    /// from the current matching (the engine's epoch-stamped
    /// `BlossomWorkspace` is reused across calls). Resets the dirt and
    /// re-derives the repair budgets from the current `m`. Returns the new
    /// size.
    pub fn resolve_max(&mut self) -> usize {
        let g = self.current_graph();
        let warm = self.matching();
        let solved = self
            .engine
            .solve_warm(&g, &warm, MaximumMatchingAlgorithm::Auto);
        for mv in &mut self.mate {
            *mv = NONE;
        }
        self.matched_pairs = solved.len();
        for e in solved.edges() {
            self.mate[e.u as usize] = e.v;
            self.mate[e.v as usize] = e.u;
        }
        self.dirt = 0;
        self.rederive_budgets();
        self.matched_pairs
    }

    /// The current edge set as an owned canonical [`Graph`].
    pub fn current_graph(&self) -> Graph {
        let mut edges = Vec::with_capacity(self.m);
        for u in 0..self.n {
            for &v in &self.adj[u] {
                if (u as VertexId) < v {
                    edges.push(Edge {
                        u: u as VertexId,
                        v,
                    });
                }
            }
        }
        // Ascending u, ascending v within u: canonical sorted order.
        Graph::from_edges_unchecked(self.n, edges)
    }

    /// The maintained matching as an owned [`Matching`] (edges in canonical
    /// sorted order).
    pub fn matching(&self) -> Matching {
        let mut edges = Vec::with_capacity(self.matched_pairs);
        for u in 0..self.n {
            let v = self.mate[u];
            if v != NONE && (u as VertexId) < v {
                edges.push(Edge {
                    u: u as VertexId,
                    v,
                });
            }
        }
        debug_assert_eq!(edges.len(), self.matched_pairs);
        match Matching::try_from_edges(edges) {
            Some(m) => m,
            // Unreachable: the mate array encodes a matching by construction.
            None => unreachable!("mate array always encodes a matching"), // xtask: allow(error-hygiene)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::gen::er::gnp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_invariants(dm: &DynamicMatcher) {
        let g = dm.current_graph();
        let m = dm.matching();
        assert!(m.is_valid_for(&g), "matching must be valid");
        assert!(m.is_maximal_in(&g), "matching must be maximal");
        assert_eq!(m.len(), dm.matching_size());
    }

    #[test]
    fn insert_matches_free_pairs_and_stays_maximal() {
        let mut dm = DynamicMatcher::new(6);
        assert!(dm.insert(Edge::new(0, 1)).unwrap());
        assert_eq!(dm.matching_size(), 1);
        assert!(!dm.insert(Edge::new(0, 1)).unwrap(), "duplicate is a no-op");
        assert!(dm.insert(Edge::new(1, 2)).unwrap());
        assert_eq!(dm.matching_size(), 1, "covered edge changes nothing");
        assert!(dm.insert(Edge::new(2, 3)).unwrap());
        assert_eq!(dm.matching_size(), 2);
        assert_invariants(&dm);
    }

    #[test]
    fn insert_with_one_free_endpoint_rotates() {
        let mut dm = DynamicMatcher::new(4);
        // Match (1, 2), then insert (0, 1) with 0 free and (2, 3) available:
        // the rotation rematches 1 to 0 and 2 to 3.
        dm.insert(Edge::new(1, 2)).unwrap();
        dm.insert(Edge::new(2, 3)).unwrap();
        assert_eq!(dm.matching_size(), 1);
        dm.insert(Edge::new(0, 1)).unwrap();
        assert_eq!(
            dm.matching_size(),
            2,
            "length-3 rotation grows the matching"
        );
        assert_eq!(dm.mate(0), Some(1));
        assert_eq!(dm.mate(2), Some(3));
        assert!(dm.stats().rotations >= 1);
        assert_invariants(&dm);
    }

    #[test]
    fn delete_unmatched_edge_keeps_matching() {
        let mut dm = DynamicMatcher::new(4);
        dm.insert(Edge::new(0, 1)).unwrap();
        dm.insert(Edge::new(1, 2)).unwrap();
        assert!(dm.delete(Edge::new(1, 2)).unwrap());
        assert!(!dm.delete(Edge::new(1, 2)).unwrap(), "absent is a no-op");
        assert_eq!(dm.matching_size(), 1);
        assert_invariants(&dm);
    }

    #[test]
    fn delete_matched_edge_repairs_both_endpoints() {
        let mut dm = DynamicMatcher::new(6);
        // Suppress insert-time rotations so (2, 3) stays the only matched
        // edge while its pendant neighbours (0, 2) and (3, 5) arrive.
        dm.set_budgets(0, u64::MAX as usize);
        for (a, b) in [(2, 3), (0, 2), (3, 5)] {
            dm.insert(Edge::new(a, b)).unwrap();
        }
        assert_eq!(dm.matching_size(), 1);
        assert_eq!(dm.mate(2), Some(3));
        dm.set_budgets(8, 64);
        dm.delete(Edge::new(2, 3)).unwrap();
        // Both endpoints rematch greedily: 2 to 0, 3 to 5.
        assert_eq!(dm.matching_size(), 2);
        assert_eq!(dm.mate(2), Some(0));
        assert_eq!(dm.mate(3), Some(5));
        assert_invariants(&dm);
    }

    #[test]
    fn dirt_budget_triggers_engine_fallback() {
        let g = gnp(60, 0.2, &mut ChaCha8Rng::seed_from_u64(3));
        let mut dm = DynamicMatcher::from_graph(&g, 0.5).unwrap();
        // Force every bounded repair to be skipped and fall back immediately.
        dm.set_budgets(0, 1);
        let mut r = ChaCha8Rng::seed_from_u64(4);
        use rand::Rng;
        let mut deleted = 0;
        while dm.stats().fallback_resolves == 0 && dm.m() > 0 {
            let edges = dm.current_graph();
            let e = edges.edges()[r.gen_range(0..edges.m())];
            dm.delete(e).unwrap();
            deleted += 1;
        }
        assert!(
            dm.stats().fallback_resolves >= 1,
            "fallback after {deleted} deletes"
        );
        // After a fallback the matching is maximum (resolve_max is a no-op).
        let size = dm.matching_size();
        // Budgets were re-derived by the fallback; resolve again to confirm.
        assert_eq!(dm.resolve_max(), size);
        assert_invariants(&dm);
    }

    #[test]
    fn from_graph_seeds_the_greedy_maximal_matching() {
        let g = gnp(100, 0.05, &mut ChaCha8Rng::seed_from_u64(5));
        let dm = DynamicMatcher::from_graph(&g, 0.5).unwrap();
        assert_eq!(dm.m(), g.m());
        assert_eq!(dm.current_graph().edges(), g.edges());
        assert_invariants(&dm);
    }

    #[test]
    fn resolve_max_reaches_the_engine_optimum() {
        let g = gnp(80, 0.08, &mut ChaCha8Rng::seed_from_u64(6));
        let mut dm = DynamicMatcher::from_graph(&g, 0.5).unwrap();
        let max = MatchingEngine::new().solve(&g).len();
        assert!(dm.matching_size() <= max);
        assert!(2 * dm.matching_size() >= max, "maximal is a 2-approx");
        assert_eq!(dm.resolve_max(), max);
        assert_invariants(&dm);
    }

    #[test]
    fn out_of_range_and_bad_eps_are_rejected() {
        let mut dm = DynamicMatcher::new(3);
        assert!(matches!(
            dm.insert(Edge::new(0, 7)),
            Err(GraphError::VertexOutOfRange { vertex: 7, .. })
        ));
        assert!(DynamicMatcher::with_eps(3, 0.0).is_err());
        assert!(DynamicMatcher::with_eps(3, f64::NAN).is_err());
    }

    #[test]
    fn replaying_a_trace_is_bit_identical() {
        use rand::Rng;
        let run = || {
            let mut dm = DynamicMatcher::new(40);
            let mut r = ChaCha8Rng::seed_from_u64(9);
            for _ in 0..300 {
                let u = r.gen_range(0..40u32);
                let v = r.gen_range(0..40u32);
                if u == v {
                    continue;
                }
                let e = Edge::new(u, v);
                if r.gen_bool(0.7) {
                    dm.insert(e).unwrap();
                } else {
                    dm.delete(e).unwrap();
                }
            }
            (dm.matching().into_edges(), dm.stats())
        };
        assert_eq!(run(), run());
    }
}
