//! Incremental (edge-churn) solvers for the serving side of the coreset
//! protocol stack.
//!
//! The batch engines ([`matching::MatchingEngine`], [`vertexcover::VcEngine`])
//! solve a frozen graph from scratch. A long-running service also needs
//! *instant* per-update answers between protocol re-solves, which is what
//! this crate provides:
//!
//! * [`DynamicMatcher`] — a **maximal** matching maintained under
//!   `insert(u, v)` / `delete(u, v)`, with deterministic greedy rematching
//!   plus length-3 augmenting-path ("surrogate") repair bounded by a degree
//!   threshold `D ≈ √(2m)/ε` — the bounded-repair idea of the
//!   Neiman–Solomon / Onak–Rubinfeld line of dynamic matching algorithms.
//!   Repairs the bound forces the matcher to skip accrue *dirt*; when the
//!   dirty region exceeds its budget the matcher falls back to a full
//!   [`matching::MatchingEngine`] re-solve, **warm-started** from the current
//!   matching (reusing the engine's epoch-stamped `BlossomWorkspace`), which
//!   restores a maximum matching and resets the dirt.
//! * [`DynamicCover`] — the matched-endpoint **2-approximate vertex cover**
//!   of that maximal matching, plus an engine-backed refinement query that
//!   reuses a private [`vertexcover::VcEngine`] (epoch-stamped
//!   `VcWorkspace`) across calls.
//!
//! Both structures are strictly deterministic: their state is a pure function
//! of the operation sequence (no randomness, no iteration over hashed
//! containers), so replaying a churn trace reproduces answers bit-for-bit —
//! the same contract the protocol layer's determinism suite pins.
//!
//! **Invariants** (pinned by the proptests in `tests/dynamic_vs_batch.rs`):
//! after every operation the matching is a valid matching of the current
//! graph, it is *maximal* (hence at least half the maximum size, and its
//! matched endpoints cover every edge), and a [`DynamicMatcher::resolve_max`]
//! makes it maximum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cover;
pub mod matcher;

pub use cover::DynamicCover;
pub use matcher::{DynStats, DynamicMatcher};
