//! Property tests pinning the incremental solvers against the batch engines.
//!
//! For arbitrary insert/delete interleavings (mirrored into a `BTreeSet` so
//! the reference graph is independent of the matcher's own bookkeeping):
//!
//! * the maintained matching is a valid, **maximal** matching of the mirror
//!   graph after every operation, hence at least half the batch maximum;
//! * the maintained cover is feasible and at most twice the batch maximum
//!   matching (a fortiori at most twice the minimum vertex cover);
//! * `resolve_max` lands exactly on the batch engine's maximum;
//! * replaying the same trace twice is bit-identical (stats included).

use std::collections::BTreeSet;

use dynamic::{DynamicCover, DynamicMatcher};
use graph::gen::er::gnm;
use graph::{ChurnOp, Edge, Graph};
use matching::maximum::maximum_matching;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Derives an initial graph plus a churn trace over the same vertex range
/// from proptest-drawn scalars (the vendored proptest has no `prop_flat_map`,
/// so the dependent structure is built here, deterministically per case).
fn trace(n: usize, m: usize, graph_seed: u64, ops_seed: u64) -> (Graph, Vec<ChurnOp>) {
    let mut rng = ChaCha8Rng::seed_from_u64(graph_seed);
    let g = gnm(n, m.min(n * (n - 1) / 2), &mut rng);
    let mut rng = ChaCha8Rng::seed_from_u64(ops_seed);
    let mut ops = Vec::new();
    while ops.len() < 60 {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let e = Edge::new(u, v);
        ops.push(if rng.gen_bool(0.5) {
            ChurnOp::Insert(e)
        } else {
            ChurnOp::Delete(e)
        });
    }
    (g, ops)
}

fn mirror_graph(n: usize, edges: &BTreeSet<Edge>) -> Graph {
    Graph::from_edges_unchecked(n, edges.iter().copied().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The matcher stays valid + maximal on the mirror graph after every op,
    /// and `resolve_max` reaches the batch optimum at the end.
    #[test]
    fn matcher_tracks_the_mirror_graph(
        n in 4usize..24,
        m in 0usize..40,
        gs in any::<u64>(),
        os in any::<u64>(),
    ) {
        let (g, ops) = trace(n, m, gs, os);
        let mut dm = DynamicMatcher::from_graph(&g, 0.5).unwrap();
        let mut mirror: BTreeSet<Edge> = g.edges().iter().copied().collect();
        for op in ops {
            let changed = dm.apply(op).unwrap();
            let expected = match op {
                ChurnOp::Insert(e) => mirror.insert(e),
                ChurnOp::Delete(e) => mirror.remove(&e),
            };
            prop_assert_eq!(changed, expected);
            let mg = mirror_graph(n, &mirror);
            prop_assert_eq!(dm.m(), mirror.len());
            let matched = dm.matching();
            prop_assert!(matched.is_valid_for(&mg));
            prop_assert!(matched.is_maximal_in(&mg));
            prop_assert!(2 * matched.len() >= maximum_matching(&mg).len());
        }
        let mg = mirror_graph(n, &mirror);
        prop_assert_eq!(dm.resolve_max(), maximum_matching(&mg).len());
    }

    /// The maintained cover is feasible after every op and never larger than
    /// twice the batch maximum matching.
    #[test]
    fn cover_tracks_the_mirror_graph(
        n in 4usize..24,
        m in 0usize..40,
        gs in any::<u64>(),
        os in any::<u64>(),
    ) {
        let (g, ops) = trace(n, m, gs, os);
        let mut dc = DynamicCover::from_graph(&g, 0.5).unwrap();
        let mut mirror: BTreeSet<Edge> = g.edges().iter().copied().collect();
        for op in ops {
            dc.apply(op).unwrap();
            match op {
                ChurnOp::Insert(e) => {
                    mirror.insert(e);
                }
                ChurnOp::Delete(e) => {
                    mirror.remove(&e);
                }
            }
            let mg = mirror_graph(n, &mirror);
            let cover = dc.cover();
            prop_assert!(cover.covers(&mg));
            prop_assert!(cover.len() <= 2 * maximum_matching(&mg).len());
            let refined = dc.resolve_refined();
            prop_assert!(refined.covers(&mg));
        }
    }

    /// Replaying the same trace is bit-identical: mates, sizes, and stats.
    #[test]
    fn replay_is_bit_identical(
        n in 4usize..24,
        m in 0usize..40,
        gs in any::<u64>(),
        os in any::<u64>(),
    ) {
        let (g, ops) = trace(n, m, gs, os);
        let mut a = DynamicMatcher::from_graph(&g, 0.5).unwrap();
        let mut b = DynamicMatcher::from_graph(&g, 0.5).unwrap();
        for op in &ops {
            a.apply(*op).unwrap();
        }
        for op in &ops {
            b.apply(*op).unwrap();
        }
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.matching_size(), b.matching_size());
        prop_assert_eq!(a.matching(), b.matching());
        let (ga, gb) = (a.current_graph(), b.current_graph());
        prop_assert_eq!(ga.edges(), gb.edges());
    }
}
