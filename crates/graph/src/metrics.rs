//! Lightweight allocation-accounting counters for the partitioned data path.
//!
//! The zero-copy data path's whole point is that a protocol run copies the
//! edge set **once** (the machine-sorted permutation inside
//! [`crate::partition::PartitionedGraph`]) and never again into per-machine
//! owned graphs. That claim is hard to see from wall-clock alone, so this
//! module keeps a process-wide counter of *edges materialized into owned
//! per-machine graphs* — incremented exactly when
//! [`crate::view::GraphView::to_graph`] copies a piece out of an arena or
//! when [`crate::partition::EdgePartition`] materializes owned pieces.
//!
//! Experiment E12 (`exp_partition_datapath`) resets the counter, runs the old
//! and the new data path, and records both readings in
//! `BENCH_datapath.json`: the legacy path reports `m` edges per run, the
//! arena path reports 0.

//!
//! A second counter plays the same role for the vertex-cover side:
//! [`vc_peel_scratch_elems`] counts the elements of per-call / per-round scratch
//! (edge-buffer copies, per-round degree arrays, peel flags) allocated by the
//! *legacy* Parnas–Ron peeling path. The engine-backed peeling
//! (`vertexcover::VcEngine`) performs none of those allocations, so a full VC
//! protocol run leaves the counter untouched — experiment E14
//! (`exp_vc_hotpath`) and the determinism suite assert exactly that.

//!
//! A third pair of counters backs the out-of-core experiment E16
//! (`exp_tree_compose`): [`resident_edges`] tracks how many edge records are
//! currently held in memory by accounted holders (arena segment buffers,
//! live coresets and merge scratch in the tree-composition runner), and
//! [`peak_resident_edges`] is its high-water mark. The flat in-memory path
//! loads the whole arena, so its peak is `m`; the hierarchical out-of-core
//! path only ever holds one segment plus the live coresets of `log k`
//! levels, and E16 asserts the measured peak against that bound.

use std::sync::atomic::{AtomicU64, Ordering};

static PIECE_EDGES_MATERIALIZED: AtomicU64 = AtomicU64::new(0);
static VC_PEEL_SCRATCH_WORDS: AtomicU64 = AtomicU64::new(0);
static RESIDENT_EDGES: AtomicU64 = AtomicU64::new(0);
static PEAK_RESIDENT_EDGES: AtomicU64 = AtomicU64::new(0);

/// Records that `edges` edges were copied into an owned per-machine graph.
#[inline]
pub fn record_piece_edges_materialized(edges: usize) {
    PIECE_EDGES_MATERIALIZED.fetch_add(edges as u64, Ordering::Relaxed);
}

/// Total edges materialized into owned per-machine graphs since the last
/// [`reset_piece_edges_materialized`] (process-wide).
#[inline]
pub fn piece_edges_materialized() -> u64 {
    PIECE_EDGES_MATERIALIZED.load(Ordering::Relaxed)
}

/// Resets the materialization counter to zero (benchmarks call this between
/// phases).
#[inline]
pub fn reset_piece_edges_materialized() {
    PIECE_EDGES_MATERIALIZED.store(0, Ordering::Relaxed);
}

/// Records that a peeling round (or call) allocated `words` words of scratch:
/// an edge-buffer copy, a per-round degree array, or a per-call peel-flag
/// array. Only the legacy (pre-engine) peeling path calls this.
#[inline]
pub fn record_vc_peel_scratch(words: usize) {
    VC_PEEL_SCRATCH_WORDS.fetch_add(words as u64, Ordering::Relaxed);
}

/// Total scratch elements (edge slots, degree counters, peel flags)
/// allocated by legacy peeling since the last
/// [`reset_vc_peel_scratch`] (process-wide). Stays 0 across engine-backed
/// protocol runs — the "zero per-round edge-buffer reallocations" claim of
/// experiment E14.
#[inline]
pub fn vc_peel_scratch_elems() -> u64 {
    VC_PEEL_SCRATCH_WORDS.load(Ordering::Relaxed)
}

/// Resets the peeling-scratch counter to zero (benchmarks call this between
/// phases).
#[inline]
pub fn reset_vc_peel_scratch() {
    VC_PEEL_SCRATCH_WORDS.store(0, Ordering::Relaxed);
}

/// Records that `edges` edge records became resident in an accounted buffer
/// (an arena segment load, a coreset entering the composition tree, or merge
/// scratch), and pushes the high-water mark if the new total exceeds it.
#[inline]
pub fn record_resident_edges_acquired(edges: usize) {
    let now = RESIDENT_EDGES.fetch_add(edges as u64, Ordering::Relaxed) + edges as u64;
    PEAK_RESIDENT_EDGES.fetch_max(now, Ordering::Relaxed);
}

/// Records that `edges` previously-acquired edge records were dropped.
/// Saturates at zero so a stray release can never wrap the counter.
#[inline]
pub fn record_resident_edges_released(edges: usize) {
    let _ = RESIDENT_EDGES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
        Some(cur.saturating_sub(edges as u64))
    });
}

/// Edge records currently resident in accounted buffers (process-wide).
#[inline]
pub fn resident_edges() -> u64 {
    RESIDENT_EDGES.load(Ordering::Relaxed)
}

/// High-water mark of [`resident_edges`] since the last
/// [`reset_peak_resident_edges`] (process-wide).
#[inline]
pub fn peak_resident_edges() -> u64 {
    PEAK_RESIDENT_EDGES.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the *current* resident count (benchmarks
/// call this between phases; anything still held keeps counting).
#[inline]
pub fn reset_peak_resident_edges() {
    PEAK_RESIDENT_EDGES.store(RESIDENT_EDGES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// A point-in-time reading of every process-wide counter.
///
/// Snapshots turn the monotone counters into *scoped deltas*: subtract two
/// snapshots instead of resetting the globals, so independent measurement
/// scopes never clobber each other's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Reading of [`piece_edges_materialized`].
    pub piece_edges_materialized: u64,
    /// Reading of [`vc_peel_scratch_elems`].
    pub vc_peel_scratch_elems: u64,
    /// Reading of [`resident_edges`].
    pub resident_edges: u64,
    /// Reading of [`peak_resident_edges`].
    pub peak_resident_edges: u64,
}

impl MetricsSnapshot {
    /// Reads all counters now.
    pub fn take() -> Self {
        MetricsSnapshot {
            piece_edges_materialized: piece_edges_materialized(),
            vc_peel_scratch_elems: vc_peel_scratch_elems(),
            resident_edges: resident_edges(),
            peak_resident_edges: peak_resident_edges(),
        }
    }
}

/// A scoped counter guard: snapshot at entry, read per-scope deltas on
/// demand — no manual reset bookkeeping.
///
/// The monotone counters ([`piece_edges_materialized`],
/// [`vc_peel_scratch_elems`]) are handled purely by subtraction, so any
/// number of scopes may overlap (each sees its own delta, plus whatever
/// concurrent scopes added — the counters are process-wide by design).
///
/// The one counter that *cannot* be scoped by subtraction is the high-water
/// mark: before this type, `reset_peak_resident_edges` was the only counter
/// a measurement had to remember to reset, and a forgotten reset silently
/// reported a stale peak. [`MetricsScope::enter`] performs that reset
/// itself, so [`MetricsScope::peak_resident_edges`] is the peak reached
/// *since entry* — with the documented caveat that the peak (unlike the
/// deltas) is only meaningful when measurement scopes do not overlap.
#[derive(Debug)]
pub struct MetricsScope {
    start: MetricsSnapshot,
}

impl MetricsScope {
    /// Opens a scope: resets the resident-edge high-water mark to the
    /// current resident count and snapshots every counter.
    pub fn enter() -> Self {
        reset_peak_resident_edges();
        MetricsScope {
            start: MetricsSnapshot::take(),
        }
    }

    /// The snapshot taken at entry.
    #[inline]
    pub fn start(&self) -> MetricsSnapshot {
        self.start
    }

    /// Edges materialized into owned per-machine graphs since entry.
    pub fn piece_edges_materialized(&self) -> u64 {
        piece_edges_materialized().saturating_sub(self.start.piece_edges_materialized)
    }

    /// Legacy peeling scratch elements allocated since entry.
    pub fn vc_peel_scratch_elems(&self) -> u64 {
        vc_peel_scratch_elems().saturating_sub(self.start.vc_peel_scratch_elems)
    }

    /// Net change in resident edge records since entry (negative when the
    /// scope released more than it acquired).
    pub fn resident_edges_delta(&self) -> i64 {
        resident_edges() as i64 - self.start.resident_edges as i64
    }

    /// High-water mark of resident edges since entry (the scope reset the
    /// mark to the then-current resident count at entry). Only meaningful
    /// when no other measurement scope overlaps this one.
    pub fn peak_resident_edges(&self) -> u64 {
        peak_resident_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        // The counter is process-wide and tests run concurrently, so assert
        // only monotone relative movement. Resetting here would race with
        // other tests' reads; `reset_piece_edges_materialized` is exercised
        // by the single-process E12 binary instead.
        let before = piece_edges_materialized();
        record_piece_edges_materialized(7);
        record_piece_edges_materialized(3);
        assert!(piece_edges_materialized() >= before + 10);
    }

    #[test]
    fn peel_scratch_counter_accumulates() {
        let before = vc_peel_scratch_elems();
        record_vc_peel_scratch(5);
        record_vc_peel_scratch(4);
        assert!(vc_peel_scratch_elems() >= before + 9);
    }

    #[test]
    fn resident_accounting_moves_peak_monotonically() {
        // Process-wide counters and concurrent tests: assert only relative,
        // monotone movement from this test's own acquire/release pairs.
        let peak_before = peak_resident_edges();
        record_resident_edges_acquired(1000);
        let peak_mid = peak_resident_edges();
        assert!(peak_mid >= peak_before + 1000 || peak_mid >= 1000);
        record_resident_edges_released(1000);
        // The peak never goes down on release.
        assert!(peak_resident_edges() >= peak_mid);
    }

    #[test]
    fn scope_reports_deltas_without_resetting_globals() {
        let global_before = piece_edges_materialized();
        let scope = MetricsScope::enter();
        record_piece_edges_materialized(11);
        record_vc_peel_scratch(4);
        // Scoped deltas move by at least this test's contributions (other
        // concurrent tests can only add).
        assert!(scope.piece_edges_materialized() >= 11);
        assert!(scope.vc_peel_scratch_elems() >= 4);
        // The globals were never reset: monotone from the caller's view.
        assert!(piece_edges_materialized() >= global_before + 11);
        // A nested scope starts from the current reading, so it does not see
        // the outer scope's earlier contributions.
        let inner = MetricsScope::enter();
        record_piece_edges_materialized(2);
        assert!(inner.piece_edges_materialized() >= 2);
        assert!(inner.start().piece_edges_materialized >= global_before + 11);
    }

    #[test]
    fn scope_resets_the_peak_on_entry() {
        record_resident_edges_acquired(500);
        record_resident_edges_released(500);
        let scope = MetricsScope::enter();
        record_resident_edges_acquired(50);
        // The peak observed by the scope includes the 50 acquired inside it;
        // process-wide concurrency can only push it higher.
        assert!(scope.peak_resident_edges() >= 50);
        record_resident_edges_released(50);
        // Net delta from this test's own acquire/release pair is zero, but
        // other tests may acquire concurrently, so only bound it below.
        assert!(scope.resident_edges_delta() >= -(500 + 50));
    }

    #[test]
    fn release_saturates_instead_of_wrapping() {
        record_resident_edges_released(u64::MAX as usize / 2);
        // Whatever other tests hold, the counter must not have wrapped into
        // an astronomically large value.
        assert!(resident_edges() < u64::MAX / 4);
    }
}
