//! Versioned binary on-disk format for a partitioned edge arena, plus a
//! bounded-memory segment loader with checksum verification, deterministic
//! fault injection, and bounded retry — the out-of-core substrate of the
//! hierarchical composition runner (ROADMAP items 1 and 3).
//!
//! A [`crate::partition::PartitionedGraph`] is already laid out as one
//! machine-sorted edge permutation with `k + 1` offsets. This module persists
//! exactly that layout so a protocol run on a 10⁷–10⁸-edge graph never has to
//! hold the whole arena in memory: the coordinator opens the file, loads one
//! machine's segment at a time through [`SegmentLoader`], builds that
//! machine's coreset, and drops the segment before touching the next.
//!
//! # File layout (version 2, all integers little-endian)
//!
//! | offset     | bytes | field |
//! |------------|-------|-------|
//! | 0          | 8     | magic `RCARENA2` |
//! | 8          | 4     | format version (`2`) |
//! | 12         | 1     | partition strategy (0 random, 1 adversarial, 2 round-robin) |
//! | 13         | 3     | zero padding |
//! | 16         | 8     | `n` (vertex count) |
//! | 24         | 8     | `k` (machine count) |
//! | 32         | 8     | `m` (edge-record count) |
//! | 40         | 16·k  | segment table: `(offset, len)` per machine, in records |
//! | 40+16k     | 4·k   | checksum table: CRC32 (IEEE) of each segment's record bytes |
//! | 40+16k+4k  | 8·m   | edge records: `(u: u32, v: u32)`, canonical `u < v`, machine-major |
//!
//! Version-1 files (`RCARENA1`, no checksum table) are still read: loaders
//! simply skip checksum verification for them. New files are always written
//! as version 2; [`write_arena_file_v1`] exists for compatibility tests.
//!
//! The segment table must start at offset 0 and tile the record section
//! exactly (`offset[i+1] = offset[i] + len[i]`, totals equal to `m`);
//! [`ArenaFile::open`] rejects anything else with a typed
//! [`GraphError`] — truncation, bad magic, unknown version, and
//! table/offset inconsistencies each have their own variant, and no code
//! path panics on malformed input. A version-2 segment whose record bytes do
//! not hash to the recorded CRC32 is rejected at load time with
//! [`GraphError::ArenaChecksumMismatch`] instead of producing silently-wrong
//! edges.
//!
//! Every segment load and drop is charged to
//! [`crate::metrics::record_resident_edges_acquired`] /
//! [`crate::metrics::record_resident_edges_released`], so experiment E16 can
//! assert the out-of-core path's `peak_resident_edges` high-water mark
//! against the per-piece bound while the flat path peaks at `m`.
//!
//! # Fault injection
//!
//! [`SegmentLoader`] can carry a [`SegmentFaultPlan`]: a seeded, *pure*
//! decision function that injects transient I/O errors or checksum failures
//! keyed by `(fault_seed, segment, attempt)`. Decisions depend on nothing
//! but those inputs — no wall clock, no ambient RNG — so a faulty run is
//! bit-reproducible across thread counts and scheduler-fuzz seeds. A
//! [`SegmentRetryPolicy`] bounds how many attempts each segment gets before
//! the last error is surfaced to the caller.

use crate::edge::Edge;
use crate::error::GraphError;
use crate::metrics;
use crate::partition::{PartitionStrategy, PartitionedGraph};
use crate::view::GraphView;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes identifying a version-2 edge-arena file.
pub const ARENA_MAGIC: [u8; 8] = *b"RCARENA2";
/// Magic bytes of the legacy version-1 format (still readable).
pub const ARENA_MAGIC_V1: [u8; 8] = *b"RCARENA1";
/// The format version this build writes (it reads versions 1 and 2).
pub const ARENA_VERSION: u32 = 2;
/// Bytes in the fixed-size header that precedes the segment table.
const HEADER_BYTES: u64 = 40;
/// Bytes per segment-table entry (`offset: u64`, `len: u64`).
const SEGMENT_ENTRY_BYTES: u64 = 16;
/// Bytes per checksum-table entry (`crc32: u32`), version 2 only.
const CRC_ENTRY_BYTES: u64 = 4;
/// Bytes per edge record (`u: u32`, `v: u32`).
const RECORD_BYTES: u64 = 8;
/// Edge records decoded per buffered read (32 KiB stack chunk).
const CHUNK_RECORDS: usize = 4096;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, polynomial 0xEDB88320), byte-at-a-time with a
// const-built table. Streaming: start from `CRC32_INIT`, fold chunks through
// `crc32_update`, finish with `crc32_finish`.
// ---------------------------------------------------------------------------

const CRC32_INIT: u32 = 0xFFFF_FFFF;

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ CRC32_TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

fn crc32_finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

/// CRC32 (IEEE) of `bytes` — the checksum recorded per segment in
/// version-2 arena files.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC32_INIT, bytes))
}

// ---------------------------------------------------------------------------
// Deterministic fault-decision mixing (SplitMix64; self-contained so the
// graph crate keeps zero dependencies on the coreset layer).
// ---------------------------------------------------------------------------

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a `(seed, segment, attempt, salt)` site to a uniform `[0, 1)` value.
/// Pure in its inputs, so fault decisions are identical across thread counts
/// and scheduler interleavings.
fn site_unit(seed: u64, segment: u64, attempt: u64, salt: u64) -> f64 {
    let mut x = seed ^ salt;
    x = splitmix64(x ^ splitmix64(segment.wrapping_mul(0xA076_1D64_78BD_642F)));
    x = splitmix64(x ^ splitmix64(attempt.wrapping_mul(0xD6E8_FEB8_6659_FD93)));
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Salt separating injected-I/O decisions from injected-checksum decisions.
const SALT_SEGMENT_IO: u64 = 0x51DE_10AD_1001_F417;
/// Salt for injected checksum-corruption decisions.
const SALT_SEGMENT_CHECKSUM: u64 = 0x51DE_10AD_C0DE_C417;

/// The kind of failure a [`SegmentFaultPlan`] injects at a load site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentFault {
    /// A transient I/O error: the attempt fails with
    /// [`GraphError::ArenaIo`]; a retry re-reads the same healthy bytes.
    Io,
    /// A transient corruption: the attempt fails with
    /// [`GraphError::ArenaChecksumMismatch`], as if the bytes read did not
    /// match the recorded CRC32.
    Checksum,
}

/// Seeded plan for deterministically injecting segment-read failures.
///
/// Each `(segment, attempt)` pair is an independent Bernoulli draw computed
/// by pure mixing of `(seed, segment, attempt)` — no ambient entropy and no
/// clock — so the same plan produces the same faults on every run,
/// regardless of thread count or scheduler interleaving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentFaultPlan {
    /// Seed for the fault-decision stream (independent of the protocol seed).
    pub seed: u64,
    /// Probability that a given attempt fails with an injected I/O error.
    pub io_prob: f64,
    /// Probability that a given attempt fails with an injected checksum
    /// mismatch (evaluated only if no I/O fault fired).
    pub checksum_prob: f64,
}

impl SegmentFaultPlan {
    /// A plan with the given seed and no faults enabled; set the
    /// probability fields to arm it.
    pub fn new(seed: u64) -> Self {
        SegmentFaultPlan {
            seed,
            io_prob: 0.0,
            checksum_prob: 0.0,
        }
    }

    /// Decides whether attempt number `attempt` at loading `segment` fails,
    /// and how. Pure in `(self.seed, segment, attempt)`.
    pub fn decide(&self, segment: usize, attempt: u32) -> Option<SegmentFault> {
        if site_unit(self.seed, segment as u64, attempt as u64, SALT_SEGMENT_IO) < self.io_prob {
            return Some(SegmentFault::Io);
        }
        if site_unit(
            self.seed,
            segment as u64,
            attempt as u64,
            SALT_SEGMENT_CHECKSUM,
        ) < self.checksum_prob
        {
            return Some(SegmentFault::Checksum);
        }
        None
    }
}

/// Bounded-retry policy for segment loads: each segment gets up to
/// `max_attempts` tries before the last error is returned to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRetryPolicy {
    /// Maximum attempts per segment load (values below 1 behave as 1).
    pub max_attempts: u32,
}

impl Default for SegmentRetryPolicy {
    /// One attempt: no retries.
    fn default() -> Self {
        SegmentRetryPolicy { max_attempts: 1 }
    }
}

fn strategy_to_byte(s: PartitionStrategy) -> u8 {
    match s {
        PartitionStrategy::Random => 0,
        PartitionStrategy::Adversarial => 1,
        PartitionStrategy::RoundRobin => 2,
    }
}

fn strategy_from_byte(b: u8) -> Result<PartitionStrategy, GraphError> {
    match b {
        0 => Ok(PartitionStrategy::Random),
        1 => Ok(PartitionStrategy::Adversarial),
        2 => Ok(PartitionStrategy::RoundRobin),
        _ => Err(GraphError::ArenaCorrupt {
            reason: format!("unknown partition-strategy byte {b}"),
        }),
    }
}

fn io_err(what: &str, e: std::io::Error) -> GraphError {
    GraphError::ArenaIo {
        context: format!("{what}: {e}"),
    }
}

/// Serializes a partitioned edge arena to `path` in the version-2 format
/// described in the module docs (per-segment CRC32 checksum table included).
/// Overwrites any existing file.
pub fn write_arena_file(path: &Path, arena: &PartitionedGraph) -> Result<(), GraphError> {
    write_arena_impl(path, arena, ARENA_VERSION)
}

/// Serializes a partitioned edge arena in the legacy version-1 format (no
/// checksum table). Exists so compatibility tests can pin that v1 files
/// remain readable; new code should use [`write_arena_file`].
pub fn write_arena_file_v1(path: &Path, arena: &PartitionedGraph) -> Result<(), GraphError> {
    write_arena_impl(path, arena, 1)
}

fn write_arena_impl(path: &Path, arena: &PartitionedGraph, version: u32) -> Result<(), GraphError> {
    let file = File::create(path).map_err(|e| io_err("creating arena file", e))?;
    let mut w = BufWriter::new(file);
    let write = |w: &mut BufWriter<File>, bytes: &[u8]| {
        w.write_all(bytes)
            .map_err(|e| io_err("writing arena file", e))
    };
    let magic = if version == 1 {
        ARENA_MAGIC_V1
    } else {
        ARENA_MAGIC
    };
    write(&mut w, &magic)?;
    write(&mut w, &version.to_le_bytes())?;
    write(&mut w, &[strategy_to_byte(arena.strategy()), 0, 0, 0])?;
    write(&mut w, &(arena.n() as u64).to_le_bytes())?;
    write(&mut w, &(arena.k() as u64).to_le_bytes())?;
    write(&mut w, &(arena.m() as u64).to_le_bytes())?;
    let mut offset = 0u64;
    for len in arena.piece_sizes() {
        write(&mut w, &offset.to_le_bytes())?;
        write(&mut w, &(len as u64).to_le_bytes())?;
        offset += len as u64;
    }
    if version >= 2 {
        let records = arena.arena();
        let mut start = 0usize;
        for len in arena.piece_sizes() {
            let mut state = CRC32_INIT;
            for e in &records[start..start + len] {
                state = crc32_update(state, &e.u.to_le_bytes());
                state = crc32_update(state, &e.v.to_le_bytes());
            }
            write(&mut w, &crc32_finish(state).to_le_bytes())?;
            start += len;
        }
    }
    for e in arena.arena() {
        write(&mut w, &e.u.to_le_bytes())?;
        write(&mut w, &e.v.to_le_bytes())?;
    }
    w.flush().map_err(|e| io_err("flushing arena file", e))
}

/// Validated metadata of an on-disk edge arena: header fields plus the
/// segment table (and, for version-2 files, the per-segment CRC32 checksum
/// table). Opening is cheap (header + tables only); edge records are
/// streamed later through a [`SegmentLoader`].
#[derive(Debug, Clone)]
pub struct ArenaFile {
    path: PathBuf,
    version: u32,
    n: usize,
    k: usize,
    m: usize,
    strategy: PartitionStrategy,
    /// Per-machine `(offset, len)` into the record section, in records.
    segments: Vec<(usize, usize)>,
    /// Per-machine CRC32 of the segment's record bytes; `None` for v1 files.
    crcs: Option<Vec<u32>>,
}

impl ArenaFile {
    /// Opens `path`, validates the header and tables, and returns the
    /// arena's metadata. Both format versions are accepted: version 2
    /// (`RCARENA2`, with checksum table) and legacy version 1 (`RCARENA1`,
    /// without).
    ///
    /// Malformed inputs are rejected with typed errors, never panics:
    /// [`GraphError::ArenaBadMagic`], [`GraphError::ArenaBadVersion`],
    /// [`GraphError::ArenaTruncated`] (file shorter than the header/tables
    /// imply), and [`GraphError::ArenaCorrupt`] (segment table not tiling the
    /// record section, header inconsistencies, trailing bytes).
    pub fn open(path: &Path) -> Result<Self, GraphError> {
        let mut file = File::open(path).map_err(|e| io_err("opening arena file", e))?;
        let file_len = file
            .metadata()
            .map_err(|e| io_err("reading arena metadata", e))?
            .len();

        // Magic first: a non-arena file should say "bad magic", not
        // "truncated", even when it is tiny. Zero-pad short reads.
        let mut magic = [0u8; 8];
        let take = (file_len.min(8)) as usize;
        file.read_exact(&mut magic[..take])
            .map_err(|e| io_err("reading arena magic", e))?;
        let magic_version = if magic == ARENA_MAGIC {
            2u32
        } else if magic == ARENA_MAGIC_V1 {
            1u32
        } else {
            return Err(GraphError::ArenaBadMagic { found: magic });
        };
        if file_len < HEADER_BYTES {
            return Err(GraphError::ArenaTruncated {
                expected_bytes: HEADER_BYTES,
                found_bytes: file_len,
            });
        }

        let mut rest = [0u8; (HEADER_BYTES - 8) as usize];
        file.read_exact(&mut rest)
            .map_err(|e| io_err("reading arena header", e))?;
        let version = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        if version != magic_version {
            return Err(GraphError::ArenaBadVersion { found: version });
        }
        let strategy = strategy_from_byte(rest[4])?;
        if rest[5] != 0 || rest[6] != 0 || rest[7] != 0 {
            return Err(GraphError::ArenaCorrupt {
                reason: "nonzero header padding".into(),
            });
        }
        let read_u64 =
            |b: &[u8]| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
        let n = read_u64(&rest[8..16]);
        let k = read_u64(&rest[16..24]);
        let m = read_u64(&rest[24..32]);
        if k == 0 {
            return Err(GraphError::ArenaCorrupt {
                reason: "machine count k must be at least 1".into(),
            });
        }
        if n > u32::MAX as u64 + 1 {
            return Err(GraphError::ArenaCorrupt {
                reason: format!("vertex count {n} exceeds the u32 vertex-id space"),
            });
        }

        let crc_table_bytes = if version >= 2 { CRC_ENTRY_BYTES } else { 0 };
        let expected_bytes = k
            .checked_mul(SEGMENT_ENTRY_BYTES + crc_table_bytes)
            .and_then(|t| m.checked_mul(RECORD_BYTES).map(|r| (t, r)))
            .and_then(|(t, r)| HEADER_BYTES.checked_add(t)?.checked_add(r))
            .ok_or_else(|| GraphError::ArenaCorrupt {
                reason: format!("header sizes overflow: k={k}, m={m}"),
            })?;
        if file_len < expected_bytes {
            return Err(GraphError::ArenaTruncated {
                expected_bytes,
                found_bytes: file_len,
            });
        }
        if file_len > expected_bytes {
            return Err(GraphError::ArenaCorrupt {
                reason: format!(
                    "{} trailing bytes after the record section",
                    file_len - expected_bytes
                ),
            });
        }

        let mut segments = Vec::with_capacity(k as usize);
        let mut entry = [0u8; SEGMENT_ENTRY_BYTES as usize];
        let mut expected_offset = 0u64;
        for i in 0..k {
            file.read_exact(&mut entry)
                .map_err(|e| io_err("reading arena segment table", e))?;
            let offset = read_u64(&entry[0..8]);
            let len = read_u64(&entry[8..16]);
            if offset != expected_offset {
                return Err(GraphError::ArenaCorrupt {
                    reason: format!(
                        "segment {i} starts at record {offset}, expected {expected_offset} \
                         (segments must tile the record section)"
                    ),
                });
            }
            expected_offset = offset
                .checked_add(len)
                .ok_or_else(|| GraphError::ArenaCorrupt {
                    reason: format!("segment {i} offset+len overflows"),
                })?;
            segments.push((offset as usize, len as usize));
        }
        if expected_offset != m {
            return Err(GraphError::ArenaCorrupt {
                reason: format!(
                    "segment table covers {expected_offset} records but the header says m={m}"
                ),
            });
        }

        let crcs = if version >= 2 {
            let mut crcs = Vec::with_capacity(k as usize);
            let mut entry = [0u8; CRC_ENTRY_BYTES as usize];
            for _ in 0..k {
                file.read_exact(&mut entry)
                    .map_err(|e| io_err("reading arena checksum table", e))?;
                crcs.push(u32::from_le_bytes(entry));
            }
            Some(crcs)
        } else {
            None
        };

        Ok(ArenaFile {
            path: path.to_path_buf(),
            version,
            n: n as usize,
            k: k as usize,
            m: m as usize,
            strategy,
            segments,
            crcs,
        })
    }

    /// The path this arena was opened from.
    #[inline]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The format version recorded in the file header (1 or 2).
    #[inline]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Number of vertices (shared by every piece).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of machines.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of edge records.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The strategy that produced the partition stored in this file.
    #[inline]
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Number of edges each machine received, in machine order.
    pub fn piece_sizes(&self) -> Vec<usize> {
        self.segments.iter().map(|&(_, len)| len).collect()
    }

    /// The CRC32 recorded for segment `i`, or `None` for version-1 files
    /// (which carry no checksum table).
    pub fn segment_crc(&self, i: usize) -> Option<u32> {
        self.crcs.as_ref().map(|c| c[i])
    }
}

/// Streams one machine segment of an [`ArenaFile`] at a time into a reusable
/// buffer, exposing it as a [`GraphView`] — the bounded-memory front door of
/// the out-of-core protocol runner.
///
/// At most one load is resident per loader; loading a new segment releases
/// the previous one. Every acquire/release is charged to
/// [`crate::metrics::resident_edges`] so E16 can measure the high-water mark.
///
/// Version-2 arenas are checksum-verified on every load: the CRC32 of the
/// bytes actually read must match the file's checksum table or the load
/// fails with [`GraphError::ArenaChecksumMismatch`]. An optional
/// [`SegmentFaultPlan`] injects deterministic transient faults, and a
/// [`SegmentRetryPolicy`] bounds how many attempts each segment gets.
#[derive(Debug)]
pub struct SegmentLoader<'a> {
    arena: &'a ArenaFile,
    file: File,
    buf: Vec<Edge>,
    resident: usize,
    faults: Option<SegmentFaultPlan>,
    retry: SegmentRetryPolicy,
    injected: u64,
    retries: u64,
}

impl<'a> SegmentLoader<'a> {
    /// Opens the arena's backing file for segment streaming, with no fault
    /// injection and no retries.
    pub fn new(arena: &'a ArenaFile) -> Result<Self, GraphError> {
        let file = File::open(arena.path()).map_err(|e| io_err("opening arena for reading", e))?;
        Ok(SegmentLoader {
            arena,
            file,
            buf: Vec::new(),
            resident: 0,
            faults: None,
            retry: SegmentRetryPolicy::default(),
            injected: 0,
            retries: 0,
        })
    }

    /// Arms deterministic fault injection on this loader. Pass `None` to
    /// disarm.
    pub fn set_fault_plan(&mut self, plan: Option<SegmentFaultPlan>) {
        self.faults = plan;
    }

    /// Sets the bounded-retry policy applied to every segment load.
    pub fn set_retry_policy(&mut self, retry: SegmentRetryPolicy) {
        self.retry = retry;
    }

    /// Number of faults this loader has injected so far (all attempts).
    #[inline]
    pub fn injected_faults(&self) -> u64 {
        self.injected
    }

    /// Number of retry attempts (attempts beyond the first) consumed so far.
    #[inline]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Loads machine `i`'s segment into the reusable buffer, replacing (and
    /// releasing) whatever was previously loaded, and returns it as a
    /// zero-copy view. Records decode through a fixed-size stack chunk —
    /// peak extra memory is one segment plus 32 KiB regardless of `m`.
    ///
    /// For version-2 arenas the decoded bytes are CRC32-verified against the
    /// file's checksum table. Failed attempts (injected or real) are retried
    /// up to the loader's [`SegmentRetryPolicy`]; when the budget is
    /// exhausted the last error is returned.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`; malformed file *contents* never panic, they
    /// return typed errors.
    pub fn load(&mut self, i: usize) -> Result<GraphView<'_>, GraphError> {
        assert!(i < self.arena.k(), "machine index {i} out of range");
        let (offset, len) = self.arena.segments[i];
        self.release();
        self.load_segment_with_retry(i, offset, len)?;
        metrics::record_resident_edges_acquired(len);
        self.resident = len;
        Ok(GraphView::new_unchecked(self.arena.n(), &self.buf))
    }

    /// Loads the *entire* record section (all `m` records resident at once —
    /// the frozen flat baseline E16 compares against) and returns one view
    /// per machine, in machine order. Each segment is checksum-verified and
    /// retried independently, exactly as in [`SegmentLoader::load`].
    pub fn load_all(&mut self) -> Result<Vec<GraphView<'_>>, GraphError> {
        self.release();
        for i in 0..self.arena.k() {
            let (offset, len) = self.arena.segments[i];
            self.load_segment_with_retry(i, offset, len)?;
        }
        metrics::record_resident_edges_acquired(self.arena.m());
        self.resident = self.arena.m();
        let n = self.arena.n();
        let buf = &self.buf;
        Ok(self
            .arena
            .segments
            .iter()
            .map(|&(offset, len)| GraphView::new_unchecked(n, &buf[offset..offset + len]))
            .collect())
    }

    /// Edge records currently resident in this loader's buffer.
    #[inline]
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Drops the current segment (if any) and returns its accounting.
    pub fn release(&mut self) {
        if self.resident > 0 {
            metrics::record_resident_edges_released(self.resident);
            self.resident = 0;
        }
        self.buf.clear();
    }

    /// Appends segment `segment` to `self.buf`, retrying failed attempts up
    /// to the retry budget. On success the buffer has grown by exactly `len`
    /// records; on failure it is truncated back to its starting length and
    /// the last attempt's error is returned.
    fn load_segment_with_retry(
        &mut self,
        segment: usize,
        offset: usize,
        len: usize,
    ) -> Result<(), GraphError> {
        let base = self.buf.len();
        let attempts = self.retry.max_attempts.max(1);
        let mut last = Ok(());
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries += 1;
            }
            self.buf.truncate(base);
            match self.attempt_segment(segment, offset, len, attempt) {
                Ok(()) => return Ok(()),
                Err(e) => last = Err(e),
            }
        }
        self.buf.truncate(base);
        last
    }

    /// One attempt at reading and verifying a segment: consults the fault
    /// plan first (injected faults consume the attempt), then reads, decodes,
    /// and checksum-verifies the real bytes.
    fn attempt_segment(
        &mut self,
        segment: usize,
        offset: usize,
        len: usize,
        attempt: u32,
    ) -> Result<(), GraphError> {
        if let Some(plan) = self.faults {
            match plan.decide(segment, attempt) {
                Some(SegmentFault::Io) => {
                    self.injected += 1;
                    return Err(GraphError::ArenaIo {
                        context: format!(
                            "injected transient I/O fault on segment {segment} (attempt {attempt})"
                        ),
                    });
                }
                Some(SegmentFault::Checksum) => {
                    self.injected += 1;
                    let expected = self.arena.segment_crc(segment).unwrap_or(0);
                    return Err(GraphError::ArenaChecksumMismatch {
                        segment,
                        expected,
                        found: !expected,
                    });
                }
                None => {}
            }
        }
        let found = self.load_range(offset, len)?;
        if let Some(expected) = self.arena.segment_crc(segment) {
            if expected != found {
                return Err(GraphError::ArenaChecksumMismatch {
                    segment,
                    expected,
                    found,
                });
            }
        }
        Ok(())
    }

    /// Appends `len` records starting at record `offset` to `self.buf`,
    /// decoding and validating through a fixed-size stack chunk, and returns
    /// the CRC32 of the raw record bytes read.
    fn load_range(&mut self, offset: usize, len: usize) -> Result<u32, GraphError> {
        let n = self.arena.n();
        self.buf.reserve(len);
        let table_bytes = if self.arena.version >= 2 {
            SEGMENT_ENTRY_BYTES + CRC_ENTRY_BYTES
        } else {
            SEGMENT_ENTRY_BYTES
        };
        let base =
            HEADER_BYTES + self.arena.k() as u64 * table_bytes + offset as u64 * RECORD_BYTES;
        self.file
            .seek(SeekFrom::Start(base))
            .map_err(|e| io_err("seeking to arena segment", e))?;
        let mut chunk = [0u8; CHUNK_RECORDS * RECORD_BYTES as usize];
        let mut remaining = len;
        let mut state = CRC32_INIT;
        while remaining > 0 {
            let take = remaining.min(CHUNK_RECORDS);
            self.file
                .read_exact(&mut chunk[..take * RECORD_BYTES as usize])
                .map_err(|e| io_err("reading arena records", e))?;
            state = crc32_update(state, &chunk[..take * RECORD_BYTES as usize]);
            for r in 0..take {
                let b = r * RECORD_BYTES as usize;
                let u = u32::from_le_bytes([chunk[b], chunk[b + 1], chunk[b + 2], chunk[b + 3]]);
                let v =
                    u32::from_le_bytes([chunk[b + 4], chunk[b + 5], chunk[b + 6], chunk[b + 7]]);
                if u >= v || (v as usize) >= n {
                    return Err(GraphError::ArenaCorrupt {
                        reason: format!("record ({u}, {v}) violates canonical u < v < n (n={n})"),
                    });
                }
                self.buf.push(Edge { u, v });
            }
            remaining -= take;
        }
        Ok(crc32_finish(state))
    }
}

impl Drop for SegmentLoader<'_> {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er::gnp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rc_arena_test_{}_{tag}.bin", std::process::id()))
    }

    fn sample_arena(seed: u64, k: usize) -> PartitionedGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = gnp(120, 0.08, &mut rng);
        PartitionedGraph::random(&g, k, &mut rng).unwrap()
    }

    fn write_sample(tag: &str, seed: u64, k: usize) -> (PathBuf, PartitionedGraph) {
        let arena = sample_arena(seed, k);
        let path = tmp_path(tag);
        write_arena_file(&path, &arena).unwrap();
        (path, arena)
    }

    /// Byte offset of the record section in a v2 file with `k` machines.
    fn v2_records_base(k: usize) -> usize {
        40 + k * 16 + k * 4
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_preserves_layout_and_pieces() {
        let (path, arena) = write_sample("round_trip", 1, 5);
        let file = ArenaFile::open(&path).unwrap();
        assert_eq!(file.version(), 2);
        assert_eq!(file.n(), arena.n());
        assert_eq!(file.k(), arena.k());
        assert_eq!(file.m(), arena.m());
        assert_eq!(file.strategy(), arena.strategy());
        assert_eq!(file.piece_sizes(), arena.piece_sizes());
        let mut loader = SegmentLoader::new(&file).unwrap();
        for i in 0..arena.k() {
            let view = loader.load(i).unwrap();
            assert_eq!(view.edges(), arena.piece(i).edges(), "piece {i}");
            assert_eq!(view.n(), arena.n());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v1_files_still_open_and_load() {
        let arena = sample_arena(21, 4);
        let path = tmp_path("v1_compat");
        write_arena_file_v1(&path, &arena).unwrap();
        let file = ArenaFile::open(&path).unwrap();
        assert_eq!(file.version(), 1);
        assert_eq!(file.segment_crc(0), None);
        assert_eq!(file.piece_sizes(), arena.piece_sizes());
        let mut loader = SegmentLoader::new(&file).unwrap();
        for i in 0..arena.k() {
            assert_eq!(loader.load(i).unwrap().edges(), arena.piece(i).edges());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v1_and_v2_record_sections_are_identical() {
        let arena = sample_arena(22, 3);
        let p1 = tmp_path("v1_bytes");
        let p2 = tmp_path("v2_bytes");
        write_arena_file_v1(&p1, &arena).unwrap();
        write_arena_file(&p2, &arena).unwrap();
        let b1 = std::fs::read(&p1).unwrap();
        let b2 = std::fs::read(&p2).unwrap();
        assert_eq!(&b1[40 + 3 * 16..], &b2[v2_records_base(3)..]);
        assert_eq!(b2.len(), b1.len() + 3 * 4);
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }

    #[test]
    fn load_all_matches_views() {
        let (path, arena) = write_sample("load_all", 2, 4);
        let file = ArenaFile::open(&path).unwrap();
        let mut loader = SegmentLoader::new(&file).unwrap();
        let views = loader.load_all().unwrap();
        assert_eq!(views.len(), arena.k());
        for (i, v) in views.iter().enumerate() {
            assert_eq!(v.edges(), arena.piece(i).edges(), "piece {i}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn loads_charge_resident_accounting() {
        let (path, arena) = write_sample("accounting", 3, 3);
        let file = ArenaFile::open(&path).unwrap();
        let mut loader = SegmentLoader::new(&file).unwrap();
        let view = loader.load(0).unwrap();
        let len = view.m();
        assert_eq!(loader.resident(), len);
        // Counters are process-wide and tests run concurrently; assert only
        // what must hold regardless of interleaving.
        assert!(metrics::peak_resident_edges() >= len as u64);
        loader.release();
        assert_eq!(loader.resident(), 0);
        drop(loader);
        let _ = std::fs::remove_file(&path);
        let _ = arena;
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = crate::graph::Graph::empty(9);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let arena = PartitionedGraph::random(&g, 3, &mut rng).unwrap();
        let path = tmp_path("empty");
        write_arena_file(&path, &arena).unwrap();
        let file = ArenaFile::open(&path).unwrap();
        assert_eq!(file.m(), 0);
        let mut loader = SegmentLoader::new(&file).unwrap();
        for i in 0..3 {
            assert!(loader.load(i).unwrap().is_empty());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = ArenaFile::open(&tmp_path("never_written")).unwrap_err();
        assert!(matches!(err, GraphError::ArenaIo { .. }), "{err}");
    }

    #[test]
    fn bad_magic_rejected() {
        let (path, _) = write_sample("bad_magic", 5, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaBadMagic { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tiny_garbage_file_is_bad_magic_not_panic() {
        let path = tmp_path("tiny");
        std::fs::write(&path, b"abc").unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaBadMagic { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_version_rejected() {
        let (path, _) = write_sample("bad_version", 6, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert_eq!(err, GraphError::ArenaBadVersion { found: 7 });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn magic_and_version_must_agree() {
        // A v1 magic carrying a version-2 header field is rejected: the
        // reader must not guess which layout to trust.
        let (path, _) = write_sample("magic_mismatch", 15, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[..8].copy_from_slice(&ARENA_MAGIC_V1);
        std::fs::write(&path, &bytes).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert_eq!(err, GraphError::ArenaBadVersion { found: 2 });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_tail_rejected_with_byte_counts() {
        let (path, _) = write_sample("truncated", 7, 3);
        let bytes = std::fs::read(&path).unwrap();
        let full = bytes.len() as u64;
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert_eq!(
            err,
            GraphError::ArenaTruncated {
                expected_bytes: full,
                found_bytes: full - 5,
            }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_header_rejected() {
        let (path, _) = write_sample("truncated_header", 8, 3);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..20]).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaTruncated { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn segment_table_offset_mismatch_rejected() {
        let (path, _) = write_sample("seg_offset", 9, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        // Second segment's offset entry: header (40) + one entry (16).
        let pos = 40 + 16;
        let old = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        bytes[pos..pos + 8].copy_from_slice(&(old + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaCorrupt { .. }), "{err}");
        assert!(err.to_string().contains("segment 1"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn segment_table_length_mismatch_rejected() {
        let (path, _) = write_sample("seg_len", 10, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        // Last segment's len entry: header + two entries + offset field.
        let pos = 40 + 2 * 16 + 8;
        let old = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        bytes[pos..pos + 8].copy_from_slice(&(old + 3).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaCorrupt { .. }), "{err}");
        assert!(err.to_string().contains("m="), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (path, _) = write_sample("trailing", 11, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 9]);
        std::fs::write(&path, &bytes).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaCorrupt { .. }), "{err}");
        assert!(err.to_string().contains("trailing"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_strategy_byte_rejected() {
        let (path, _) = write_sample("bad_strategy", 12, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[12] = 9;
        std::fs::write(&path, &bytes).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaCorrupt { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_machines_in_header_rejected() {
        let (path, _) = write_sample("zero_k", 13, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[24..32].copy_from_slice(&0u64.to_le_bytes());
        // Drop the (single) segment-table and checksum-table entries so
        // sizes stay consistent and the k check is what fires.
        let patched: Vec<u8> = bytes[..40]
            .iter()
            .chain(&bytes[40 + 16 + 4..])
            .copied()
            .collect();
        std::fs::write(&path, &patched).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaCorrupt { .. }), "{err}");
        assert!(err.to_string().contains("k must be"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_record_rejected_at_load_without_panic() {
        let (path, arena) = write_sample("bad_record", 14, 2);
        assert!(arena.piece_sizes()[0] > 0);
        let mut bytes = std::fs::read(&path).unwrap();
        // First record of segment 0: make it a self-loop (u == v). Decode
        // validation fires before the checksum comparison, so this is
        // ArenaCorrupt, not ArenaChecksumMismatch.
        let rec = v2_records_base(2);
        let u = u32::from_le_bytes(bytes[rec..rec + 4].try_into().unwrap());
        bytes[rec + 4..rec + 8].copy_from_slice(&u.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let file = ArenaFile::open(&path).unwrap();
        let mut loader = SegmentLoader::new(&file).unwrap();
        let err = loader.load(0).unwrap_err();
        assert!(matches!(err, GraphError::ArenaCorrupt { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn silently_swapped_record_caught_by_checksum() {
        let (path, arena) = write_sample("crc_swap", 16, 2);
        let sizes = arena.piece_sizes();
        assert!(sizes[0] >= 2, "need two records in segment 0");
        let mut bytes = std::fs::read(&path).unwrap();
        // Overwrite record 0 with record 1's bytes: every record still
        // decodes as a valid canonical edge, so only the checksum can tell.
        let rec = v2_records_base(2);
        let dup: [u8; 8] = bytes[rec + 8..rec + 16].try_into().unwrap();
        let original: [u8; 8] = bytes[rec..rec + 8].try_into().unwrap();
        assert_ne!(dup, original, "adjacent records should differ");
        bytes[rec..rec + 8].copy_from_slice(&dup);
        std::fs::write(&path, &bytes).unwrap();
        let file = ArenaFile::open(&path).unwrap();
        let mut loader = SegmentLoader::new(&file).unwrap();
        let err = loader.load(0).unwrap_err();
        match err {
            GraphError::ArenaChecksumMismatch {
                segment,
                expected,
                found,
            } => {
                assert_eq!(segment, 0);
                assert_ne!(expected, found);
            }
            other => panic!("expected checksum mismatch, got {other}"),
        }
        // Segment 1 is untouched and still loads.
        assert_eq!(loader.load(1).unwrap().edges(), arena.piece(1).edges());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persistent_checksum_corruption_survives_retries() {
        let (path, _) = write_sample("crc_retry", 17, 2);
        let mut bytes = std::fs::read(&path).unwrap();
        let rec = v2_records_base(2);
        let dup: [u8; 8] = bytes[rec + 8..rec + 16].try_into().unwrap();
        bytes[rec..rec + 8].copy_from_slice(&dup);
        std::fs::write(&path, &bytes).unwrap();
        let file = ArenaFile::open(&path).unwrap();
        let mut loader = SegmentLoader::new(&file).unwrap();
        loader.set_retry_policy(SegmentRetryPolicy { max_attempts: 4 });
        let err = loader.load(0).unwrap_err();
        assert!(
            matches!(err, GraphError::ArenaChecksumMismatch { .. }),
            "{err}"
        );
        // Real corruption is re-read identically on every attempt: all
        // retries were consumed, none injected.
        assert_eq!(loader.retries(), 3);
        assert_eq!(loader.injected_faults(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fault_plan_decisions_are_pure_and_seed_dependent() {
        let plan = SegmentFaultPlan {
            seed: 99,
            io_prob: 0.5,
            checksum_prob: 0.25,
        };
        for segment in 0..8 {
            for attempt in 0..4 {
                assert_eq!(
                    plan.decide(segment, attempt),
                    plan.decide(segment, attempt),
                    "decision must be pure"
                );
            }
        }
        let other = SegmentFaultPlan { seed: 100, ..plan };
        let a: Vec<_> = (0..64).map(|s| plan.decide(s, 0)).collect();
        let b: Vec<_> = (0..64).map(|s| other.decide(s, 0)).collect();
        assert_ne!(a, b, "different seeds should differ somewhere in 64 sites");
        // Probabilities roughly respected across many sites.
        let fired = a.iter().filter(|d| d.is_some()).count();
        assert!(fired > 64 / 4, "p≈0.625 should fire often, got {fired}/64");
    }

    #[test]
    fn injected_transient_fault_recovers_within_retry_budget() {
        let (path, arena) = write_sample("inject_recover", 18, 3);
        let file = ArenaFile::open(&path).unwrap();

        // Find a seed whose plan faults segment 0 attempt 0 but not
        // attempt 1 — deterministic given the pure decision function.
        let seed = (0..u64::MAX)
            .find(|&s| {
                let p = SegmentFaultPlan {
                    seed: s,
                    io_prob: 0.6,
                    checksum_prob: 0.0,
                };
                p.decide(0, 0).is_some() && p.decide(0, 1).is_none()
            })
            .unwrap();
        let plan = SegmentFaultPlan {
            seed,
            io_prob: 0.6,
            checksum_prob: 0.0,
        };

        let mut loader = SegmentLoader::new(&file).unwrap();
        loader.set_fault_plan(Some(plan));
        loader.set_retry_policy(SegmentRetryPolicy { max_attempts: 2 });
        let view = loader.load(0).unwrap();
        assert_eq!(view.edges(), arena.piece(0).edges());
        assert_eq!(loader.injected_faults(), 1);
        assert_eq!(loader.retries(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exhausted_retry_budget_surfaces_typed_error() {
        let (path, _) = write_sample("inject_exhaust", 19, 2);
        let file = ArenaFile::open(&path).unwrap();
        let plan = SegmentFaultPlan {
            seed: 7,
            io_prob: 1.0,
            checksum_prob: 0.0,
        };
        let mut loader = SegmentLoader::new(&file).unwrap();
        loader.set_fault_plan(Some(plan));
        loader.set_retry_policy(SegmentRetryPolicy { max_attempts: 3 });
        let err = loader.load(0).unwrap_err();
        assert!(matches!(err, GraphError::ArenaIo { .. }), "{err}");
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(loader.injected_faults(), 3);
        assert_eq!(loader.retries(), 2);
        // The buffer was rolled back: a later clean load works.
        loader.set_fault_plan(None);
        assert!(loader.load(1).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_checksum_fault_is_typed_mismatch() {
        let (path, _) = write_sample("inject_crc", 20, 2);
        let file = ArenaFile::open(&path).unwrap();
        let plan = SegmentFaultPlan {
            seed: 7,
            io_prob: 0.0,
            checksum_prob: 1.0,
        };
        let mut loader = SegmentLoader::new(&file).unwrap();
        loader.set_fault_plan(Some(plan));
        let err = loader.load(1).unwrap_err();
        match err {
            GraphError::ArenaChecksumMismatch { segment, .. } => assert_eq!(segment, 1),
            other => panic!("expected checksum mismatch, got {other}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_all_retries_each_segment_independently() {
        let (path, arena) = write_sample("load_all_retry", 23, 3);
        let file = ArenaFile::open(&path).unwrap();
        let seed = (0..u64::MAX)
            .find(|&s| {
                let p = SegmentFaultPlan {
                    seed: s,
                    io_prob: 0.5,
                    checksum_prob: 0.0,
                };
                // At least one first-attempt fault somewhere, every
                // segment clean by its second attempt.
                (0..3).any(|i| p.decide(i, 0).is_some()) && (0..3).all(|i| p.decide(i, 1).is_none())
            })
            .unwrap();
        let plan = SegmentFaultPlan {
            seed,
            io_prob: 0.5,
            checksum_prob: 0.0,
        };
        let mut loader = SegmentLoader::new(&file).unwrap();
        loader.set_fault_plan(Some(plan));
        loader.set_retry_policy(SegmentRetryPolicy { max_attempts: 2 });
        let views = loader.load_all().unwrap();
        for (i, v) in views.iter().enumerate() {
            assert_eq!(v.edges(), arena.piece(i).edges(), "piece {i}");
        }
        assert!(loader.injected_faults() >= 1);
        let _ = std::fs::remove_file(&path);
    }
}
