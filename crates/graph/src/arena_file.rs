//! Versioned binary on-disk format for a partitioned edge arena, plus a
//! bounded-memory segment loader — the out-of-core substrate of the
//! hierarchical composition runner (ROADMAP items 1 and 3).
//!
//! A [`crate::partition::PartitionedGraph`] is already laid out as one
//! machine-sorted edge permutation with `k + 1` offsets. This module persists
//! exactly that layout so a protocol run on a 10⁷–10⁸-edge graph never has to
//! hold the whole arena in memory: the coordinator opens the file, loads one
//! machine's segment at a time through [`SegmentLoader`], builds that
//! machine's coreset, and drops the segment before touching the next.
//!
//! # File layout (version 1, all integers little-endian)
//!
//! | offset | bytes | field |
//! |--------|-------|-------|
//! | 0      | 8     | magic `RCARENA1` |
//! | 8      | 4     | format version (`1`) |
//! | 12     | 1     | partition strategy (0 random, 1 adversarial, 2 round-robin) |
//! | 13     | 3     | zero padding |
//! | 16     | 8     | `n` (vertex count) |
//! | 24     | 8     | `k` (machine count) |
//! | 32     | 8     | `m` (edge-record count) |
//! | 40     | 16·k  | segment table: `(offset, len)` per machine, in records |
//! | 40+16k | 8·m   | edge records: `(u: u32, v: u32)`, canonical `u < v`, machine-major |
//!
//! The segment table must start at offset 0 and tile the record section
//! exactly (`offset[i+1] = offset[i] + len[i]`, totals equal to `m`);
//! [`ArenaFile::open`] rejects anything else with a typed
//! [`GraphError`] — truncation, bad magic, unknown version, and
//! table/offset inconsistencies each have their own variant, and no code
//! path panics on malformed input.
//!
//! Every segment load and drop is charged to
//! [`crate::metrics::record_resident_edges_acquired`] /
//! [`crate::metrics::record_resident_edges_released`], so experiment E16 can
//! assert the out-of-core path's `peak_resident_edges` high-water mark
//! against the per-piece bound while the flat path peaks at `m`.

use crate::edge::Edge;
use crate::error::GraphError;
use crate::metrics;
use crate::partition::{PartitionStrategy, PartitionedGraph};
use crate::view::GraphView;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes identifying an edge-arena file.
pub const ARENA_MAGIC: [u8; 8] = *b"RCARENA1";
/// The (only) format version this build reads and writes.
pub const ARENA_VERSION: u32 = 1;
/// Bytes in the fixed-size header that precedes the segment table.
const HEADER_BYTES: u64 = 40;
/// Bytes per segment-table entry (`offset: u64`, `len: u64`).
const SEGMENT_ENTRY_BYTES: u64 = 16;
/// Bytes per edge record (`u: u32`, `v: u32`).
const RECORD_BYTES: u64 = 8;
/// Edge records decoded per buffered read (32 KiB stack chunk).
const CHUNK_RECORDS: usize = 4096;

fn strategy_to_byte(s: PartitionStrategy) -> u8 {
    match s {
        PartitionStrategy::Random => 0,
        PartitionStrategy::Adversarial => 1,
        PartitionStrategy::RoundRobin => 2,
    }
}

fn strategy_from_byte(b: u8) -> Result<PartitionStrategy, GraphError> {
    match b {
        0 => Ok(PartitionStrategy::Random),
        1 => Ok(PartitionStrategy::Adversarial),
        2 => Ok(PartitionStrategy::RoundRobin),
        _ => Err(GraphError::ArenaCorrupt {
            reason: format!("unknown partition-strategy byte {b}"),
        }),
    }
}

fn io_err(what: &str, e: std::io::Error) -> GraphError {
    GraphError::ArenaIo {
        context: format!("{what}: {e}"),
    }
}

/// Serializes a partitioned edge arena to `path` in the version-1 format
/// described in the module docs. Overwrites any existing file.
pub fn write_arena_file(path: &Path, arena: &PartitionedGraph) -> Result<(), GraphError> {
    let file = File::create(path).map_err(|e| io_err("creating arena file", e))?;
    let mut w = BufWriter::new(file);
    let write = |w: &mut BufWriter<File>, bytes: &[u8]| {
        w.write_all(bytes)
            .map_err(|e| io_err("writing arena file", e))
    };
    write(&mut w, &ARENA_MAGIC)?;
    write(&mut w, &ARENA_VERSION.to_le_bytes())?;
    write(&mut w, &[strategy_to_byte(arena.strategy()), 0, 0, 0])?;
    write(&mut w, &(arena.n() as u64).to_le_bytes())?;
    write(&mut w, &(arena.k() as u64).to_le_bytes())?;
    write(&mut w, &(arena.m() as u64).to_le_bytes())?;
    let mut offset = 0u64;
    for len in arena.piece_sizes() {
        write(&mut w, &offset.to_le_bytes())?;
        write(&mut w, &(len as u64).to_le_bytes())?;
        offset += len as u64;
    }
    for e in arena.arena() {
        write(&mut w, &e.u.to_le_bytes())?;
        write(&mut w, &e.v.to_le_bytes())?;
    }
    w.flush().map_err(|e| io_err("flushing arena file", e))
}

/// Validated metadata of an on-disk edge arena: header fields plus the
/// segment table. Opening is cheap (header + table only); edge records are
/// streamed later through a [`SegmentLoader`].
#[derive(Debug, Clone)]
pub struct ArenaFile {
    path: PathBuf,
    n: usize,
    k: usize,
    m: usize,
    strategy: PartitionStrategy,
    /// Per-machine `(offset, len)` into the record section, in records.
    segments: Vec<(usize, usize)>,
}

impl ArenaFile {
    /// Opens `path`, validates the header and segment table, and returns the
    /// arena's metadata.
    ///
    /// Malformed inputs are rejected with typed errors, never panics:
    /// [`GraphError::ArenaBadMagic`], [`GraphError::ArenaBadVersion`],
    /// [`GraphError::ArenaTruncated`] (file shorter than the header/table
    /// imply), and [`GraphError::ArenaCorrupt`] (segment table not tiling the
    /// record section, header inconsistencies, trailing bytes).
    pub fn open(path: &Path) -> Result<Self, GraphError> {
        let mut file = File::open(path).map_err(|e| io_err("opening arena file", e))?;
        let file_len = file
            .metadata()
            .map_err(|e| io_err("reading arena metadata", e))?
            .len();

        // Magic first: a non-arena file should say "bad magic", not
        // "truncated", even when it is tiny. Zero-pad short reads.
        let mut magic = [0u8; 8];
        let take = (file_len.min(8)) as usize;
        file.read_exact(&mut magic[..take])
            .map_err(|e| io_err("reading arena magic", e))?;
        if magic != ARENA_MAGIC {
            return Err(GraphError::ArenaBadMagic { found: magic });
        }
        if file_len < HEADER_BYTES {
            return Err(GraphError::ArenaTruncated {
                expected_bytes: HEADER_BYTES,
                found_bytes: file_len,
            });
        }

        let mut rest = [0u8; (HEADER_BYTES - 8) as usize];
        file.read_exact(&mut rest)
            .map_err(|e| io_err("reading arena header", e))?;
        let version = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        if version != ARENA_VERSION {
            return Err(GraphError::ArenaBadVersion { found: version });
        }
        let strategy = strategy_from_byte(rest[4])?;
        if rest[5] != 0 || rest[6] != 0 || rest[7] != 0 {
            return Err(GraphError::ArenaCorrupt {
                reason: "nonzero header padding".into(),
            });
        }
        let read_u64 =
            |b: &[u8]| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
        let n = read_u64(&rest[8..16]);
        let k = read_u64(&rest[16..24]);
        let m = read_u64(&rest[24..32]);
        if k == 0 {
            return Err(GraphError::ArenaCorrupt {
                reason: "machine count k must be at least 1".into(),
            });
        }
        if n > u32::MAX as u64 + 1 {
            return Err(GraphError::ArenaCorrupt {
                reason: format!("vertex count {n} exceeds the u32 vertex-id space"),
            });
        }

        let expected_bytes = k
            .checked_mul(SEGMENT_ENTRY_BYTES)
            .and_then(|t| m.checked_mul(RECORD_BYTES).map(|r| (t, r)))
            .and_then(|(t, r)| HEADER_BYTES.checked_add(t)?.checked_add(r))
            .ok_or_else(|| GraphError::ArenaCorrupt {
                reason: format!("header sizes overflow: k={k}, m={m}"),
            })?;
        if file_len < expected_bytes {
            return Err(GraphError::ArenaTruncated {
                expected_bytes,
                found_bytes: file_len,
            });
        }
        if file_len > expected_bytes {
            return Err(GraphError::ArenaCorrupt {
                reason: format!(
                    "{} trailing bytes after the record section",
                    file_len - expected_bytes
                ),
            });
        }

        let mut segments = Vec::with_capacity(k as usize);
        let mut entry = [0u8; SEGMENT_ENTRY_BYTES as usize];
        let mut expected_offset = 0u64;
        for i in 0..k {
            file.read_exact(&mut entry)
                .map_err(|e| io_err("reading arena segment table", e))?;
            let offset = read_u64(&entry[0..8]);
            let len = read_u64(&entry[8..16]);
            if offset != expected_offset {
                return Err(GraphError::ArenaCorrupt {
                    reason: format!(
                        "segment {i} starts at record {offset}, expected {expected_offset} \
                         (segments must tile the record section)"
                    ),
                });
            }
            expected_offset = offset
                .checked_add(len)
                .ok_or_else(|| GraphError::ArenaCorrupt {
                    reason: format!("segment {i} offset+len overflows"),
                })?;
            segments.push((offset as usize, len as usize));
        }
        if expected_offset != m {
            return Err(GraphError::ArenaCorrupt {
                reason: format!(
                    "segment table covers {expected_offset} records but the header says m={m}"
                ),
            });
        }

        Ok(ArenaFile {
            path: path.to_path_buf(),
            n: n as usize,
            k: k as usize,
            m: m as usize,
            strategy,
            segments,
        })
    }

    /// The path this arena was opened from.
    #[inline]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of vertices (shared by every piece).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of machines.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of edge records.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The strategy that produced the partition stored in this file.
    #[inline]
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Number of edges each machine received, in machine order.
    pub fn piece_sizes(&self) -> Vec<usize> {
        self.segments.iter().map(|&(_, len)| len).collect()
    }
}

/// Streams one machine segment of an [`ArenaFile`] at a time into a reusable
/// buffer, exposing it as a [`GraphView`] — the bounded-memory front door of
/// the out-of-core protocol runner.
///
/// At most one load is resident per loader; loading a new segment releases
/// the previous one. Every acquire/release is charged to
/// [`crate::metrics::resident_edges`] so E16 can measure the high-water mark.
#[derive(Debug)]
pub struct SegmentLoader<'a> {
    arena: &'a ArenaFile,
    file: File,
    buf: Vec<Edge>,
    resident: usize,
}

impl<'a> SegmentLoader<'a> {
    /// Opens the arena's backing file for segment streaming.
    pub fn new(arena: &'a ArenaFile) -> Result<Self, GraphError> {
        let file = File::open(arena.path()).map_err(|e| io_err("opening arena for reading", e))?;
        Ok(SegmentLoader {
            arena,
            file,
            buf: Vec::new(),
            resident: 0,
        })
    }

    /// Loads machine `i`'s segment into the reusable buffer, replacing (and
    /// releasing) whatever was previously loaded, and returns it as a
    /// zero-copy view. Records decode through a fixed-size stack chunk —
    /// peak extra memory is one segment plus 32 KiB regardless of `m`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`; malformed file *contents* never panic, they
    /// return typed errors.
    pub fn load(&mut self, i: usize) -> Result<GraphView<'_>, GraphError> {
        assert!(i < self.arena.k(), "machine index {i} out of range");
        let (offset, len) = self.arena.segments[i];
        self.release();
        self.load_range(offset, len)?;
        metrics::record_resident_edges_acquired(len);
        self.resident = len;
        Ok(GraphView::new_unchecked(self.arena.n(), &self.buf))
    }

    /// Loads the *entire* record section (all `m` records resident at once —
    /// the frozen flat baseline E16 compares against) and returns one view
    /// per machine, in machine order.
    pub fn load_all(&mut self) -> Result<Vec<GraphView<'_>>, GraphError> {
        self.release();
        self.load_range(0, self.arena.m())?;
        metrics::record_resident_edges_acquired(self.arena.m());
        self.resident = self.arena.m();
        let n = self.arena.n();
        let buf = &self.buf;
        Ok(self
            .arena
            .segments
            .iter()
            .map(|&(offset, len)| GraphView::new_unchecked(n, &buf[offset..offset + len]))
            .collect())
    }

    /// Edge records currently resident in this loader's buffer.
    #[inline]
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Drops the current segment (if any) and returns its accounting.
    pub fn release(&mut self) {
        if self.resident > 0 {
            metrics::record_resident_edges_released(self.resident);
            self.resident = 0;
        }
        self.buf.clear();
    }

    /// Fills `self.buf` with `len` records starting at record `offset`,
    /// decoding and validating through a fixed-size stack chunk.
    fn load_range(&mut self, offset: usize, len: usize) -> Result<(), GraphError> {
        let n = self.arena.n();
        self.buf.clear();
        self.buf.reserve(len);
        let base = HEADER_BYTES
            + self.arena.k() as u64 * SEGMENT_ENTRY_BYTES
            + offset as u64 * RECORD_BYTES;
        self.file
            .seek(SeekFrom::Start(base))
            .map_err(|e| io_err("seeking to arena segment", e))?;
        let mut chunk = [0u8; CHUNK_RECORDS * RECORD_BYTES as usize];
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(CHUNK_RECORDS);
            self.file
                .read_exact(&mut chunk[..take * RECORD_BYTES as usize])
                .map_err(|e| io_err("reading arena records", e))?;
            for r in 0..take {
                let b = r * RECORD_BYTES as usize;
                let u = u32::from_le_bytes([chunk[b], chunk[b + 1], chunk[b + 2], chunk[b + 3]]);
                let v =
                    u32::from_le_bytes([chunk[b + 4], chunk[b + 5], chunk[b + 6], chunk[b + 7]]);
                if u >= v || (v as usize) >= n {
                    return Err(GraphError::ArenaCorrupt {
                        reason: format!("record ({u}, {v}) violates canonical u < v < n (n={n})"),
                    });
                }
                self.buf.push(Edge { u, v });
            }
            remaining -= take;
        }
        Ok(())
    }
}

impl Drop for SegmentLoader<'_> {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er::gnp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rc_arena_test_{}_{tag}.bin", std::process::id()))
    }

    fn sample_arena(seed: u64, k: usize) -> PartitionedGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = gnp(120, 0.08, &mut rng);
        PartitionedGraph::random(&g, k, &mut rng).unwrap()
    }

    fn write_sample(tag: &str, seed: u64, k: usize) -> (PathBuf, PartitionedGraph) {
        let arena = sample_arena(seed, k);
        let path = tmp_path(tag);
        write_arena_file(&path, &arena).unwrap();
        (path, arena)
    }

    #[test]
    fn round_trip_preserves_layout_and_pieces() {
        let (path, arena) = write_sample("round_trip", 1, 5);
        let file = ArenaFile::open(&path).unwrap();
        assert_eq!(file.n(), arena.n());
        assert_eq!(file.k(), arena.k());
        assert_eq!(file.m(), arena.m());
        assert_eq!(file.strategy(), arena.strategy());
        assert_eq!(file.piece_sizes(), arena.piece_sizes());
        let mut loader = SegmentLoader::new(&file).unwrap();
        for i in 0..arena.k() {
            let view = loader.load(i).unwrap();
            assert_eq!(view.edges(), arena.piece(i).edges(), "piece {i}");
            assert_eq!(view.n(), arena.n());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_all_matches_views() {
        let (path, arena) = write_sample("load_all", 2, 4);
        let file = ArenaFile::open(&path).unwrap();
        let mut loader = SegmentLoader::new(&file).unwrap();
        let views = loader.load_all().unwrap();
        assert_eq!(views.len(), arena.k());
        for (i, v) in views.iter().enumerate() {
            assert_eq!(v.edges(), arena.piece(i).edges(), "piece {i}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn loads_charge_resident_accounting() {
        let (path, arena) = write_sample("accounting", 3, 3);
        let file = ArenaFile::open(&path).unwrap();
        let mut loader = SegmentLoader::new(&file).unwrap();
        let view = loader.load(0).unwrap();
        let len = view.m();
        assert_eq!(loader.resident(), len);
        // Counters are process-wide and tests run concurrently; assert only
        // what must hold regardless of interleaving.
        assert!(metrics::peak_resident_edges() >= len as u64);
        loader.release();
        assert_eq!(loader.resident(), 0);
        drop(loader);
        let _ = std::fs::remove_file(&path);
        let _ = arena;
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = crate::graph::Graph::empty(9);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let arena = PartitionedGraph::random(&g, 3, &mut rng).unwrap();
        let path = tmp_path("empty");
        write_arena_file(&path, &arena).unwrap();
        let file = ArenaFile::open(&path).unwrap();
        assert_eq!(file.m(), 0);
        let mut loader = SegmentLoader::new(&file).unwrap();
        for i in 0..3 {
            assert!(loader.load(i).unwrap().is_empty());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = ArenaFile::open(&tmp_path("never_written")).unwrap_err();
        assert!(matches!(err, GraphError::ArenaIo { .. }), "{err}");
    }

    #[test]
    fn bad_magic_rejected() {
        let (path, _) = write_sample("bad_magic", 5, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaBadMagic { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tiny_garbage_file_is_bad_magic_not_panic() {
        let path = tmp_path("tiny");
        std::fs::write(&path, b"abc").unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaBadMagic { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_version_rejected() {
        let (path, _) = write_sample("bad_version", 6, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert_eq!(err, GraphError::ArenaBadVersion { found: 7 });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_tail_rejected_with_byte_counts() {
        let (path, _) = write_sample("truncated", 7, 3);
        let bytes = std::fs::read(&path).unwrap();
        let full = bytes.len() as u64;
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert_eq!(
            err,
            GraphError::ArenaTruncated {
                expected_bytes: full,
                found_bytes: full - 5,
            }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_header_rejected() {
        let (path, _) = write_sample("truncated_header", 8, 3);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..20]).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaTruncated { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn segment_table_offset_mismatch_rejected() {
        let (path, _) = write_sample("seg_offset", 9, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        // Second segment's offset entry: header (40) + one entry (16).
        let pos = 40 + 16;
        let old = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        bytes[pos..pos + 8].copy_from_slice(&(old + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaCorrupt { .. }), "{err}");
        assert!(err.to_string().contains("segment 1"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn segment_table_length_mismatch_rejected() {
        let (path, _) = write_sample("seg_len", 10, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        // Last segment's len entry: header + two entries + offset field.
        let pos = 40 + 2 * 16 + 8;
        let old = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        bytes[pos..pos + 8].copy_from_slice(&(old + 3).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaCorrupt { .. }), "{err}");
        assert!(err.to_string().contains("m="), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (path, _) = write_sample("trailing", 11, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 9]);
        std::fs::write(&path, &bytes).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaCorrupt { .. }), "{err}");
        assert!(err.to_string().contains("trailing"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_strategy_byte_rejected() {
        let (path, _) = write_sample("bad_strategy", 12, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[12] = 9;
        std::fs::write(&path, &bytes).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaCorrupt { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_machines_in_header_rejected() {
        let (path, _) = write_sample("zero_k", 13, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[24..32].copy_from_slice(&0u64.to_le_bytes());
        // Drop the (single) segment-table entry so sizes stay consistent and
        // the k check, not the size check, is what fires.
        let patched: Vec<u8> = bytes[..40]
            .iter()
            .chain(&bytes[40 + 16..])
            .copied()
            .collect();
        std::fs::write(&path, &patched).unwrap();
        let err = ArenaFile::open(&path).unwrap_err();
        assert!(matches!(err, GraphError::ArenaCorrupt { .. }), "{err}");
        assert!(err.to_string().contains("k must be"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_record_rejected_at_load_without_panic() {
        let (path, arena) = write_sample("bad_record", 14, 2);
        assert!(arena.piece_sizes()[0] > 0);
        let mut bytes = std::fs::read(&path).unwrap();
        // First record of segment 0: make it a self-loop (u == v).
        let rec = 40 + 2 * 16;
        let u = u32::from_le_bytes(bytes[rec..rec + 4].try_into().unwrap());
        bytes[rec + 4..rec + 8].copy_from_slice(&u.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let file = ArenaFile::open(&path).unwrap();
        let mut loader = SegmentLoader::new(&file).unwrap();
        let err = loader.load(0).unwrap_err();
        assert!(matches!(err, GraphError::ArenaCorrupt { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
