//! Vertex and edge primitives.
//!
//! Vertices are dense `u32` identifiers in `0..n`. Undirected edges are stored
//! canonically with the smaller endpoint first so that equality, hashing and
//! deduplication behave as expected for simple graphs.

use serde::{Deserialize, Serialize};

/// Dense vertex identifier.
///
/// Using `u32` instead of `usize` halves the memory footprint of edge lists,
/// which matters for the large random-partitioning experiments (see the
/// "Smaller Integers" guidance in the Rust Performance Book).
pub type VertexId = u32;

/// An undirected, unweighted edge stored canonically (`u <= v` is *not*
/// enforced at construction of the raw struct, use [`Edge::new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge {
    /// The smaller endpoint.
    pub u: VertexId,
    /// The larger endpoint.
    pub v: VertexId,
}

impl Edge {
    /// Creates a canonical edge with `u <= v`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; self-loops are not part of the model.
    #[inline]
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert_ne!(a, b, "self-loops are not allowed");
        if a <= b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// Returns both endpoints as a tuple `(u, v)` with `u <= v`.
    #[inline]
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// Returns `true` if `x` is one of the endpoints.
    #[inline]
    pub fn is_incident(&self, x: VertexId) -> bool {
        self.u == x || self.v == x
    }

    /// Given one endpoint, returns the other one.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of the edge.
    #[inline]
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            // Documented `# Panics` contract: callers pass a known endpoint.
            // xtask: allow(error-hygiene)
            panic!(
                "vertex {x} is not an endpoint of edge ({}, {})",
                self.u, self.v
            )
        }
    }

    /// Returns `true` if the two edges share at least one endpoint.
    #[inline]
    pub fn shares_endpoint(&self, other: &Edge) -> bool {
        self.is_incident(other.u) || self.is_incident(other.v)
    }
}

impl From<(VertexId, VertexId)> for Edge {
    #[inline]
    fn from((a, b): (VertexId, VertexId)) -> Self {
        Edge::new(a, b)
    }
}

/// An undirected edge with a non-negative weight, used by the Crouch–Stubbs
/// weighted-matching extension of the paper (Section 1.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedEdge {
    /// The underlying unweighted edge.
    pub edge: Edge,
    /// The edge weight. Must be finite and non-negative.
    pub weight: f64,
}

impl WeightedEdge {
    /// Creates a new weighted edge.
    ///
    /// # Panics
    ///
    /// Panics if the weight is negative, NaN or infinite.
    #[inline]
    pub fn new(a: VertexId, b: VertexId, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "edge weight must be finite and non-negative, got {weight}"
        );
        WeightedEdge {
            edge: Edge::new(a, b),
            weight,
        }
    }

    /// Returns the endpoints `(u, v)` with `u <= v`.
    #[inline]
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        self.edge.endpoints()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_canonicalized() {
        let e = Edge::new(5, 2);
        assert_eq!(e.u, 2);
        assert_eq!(e.v, 5);
        assert_eq!(e, Edge::new(2, 5));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let _ = Edge::new(3, 3);
    }

    #[test]
    fn incidence_and_other() {
        let e = Edge::new(1, 4);
        assert!(e.is_incident(1));
        assert!(e.is_incident(4));
        assert!(!e.is_incident(2));
        assert_eq!(e.other(1), 4);
        assert_eq!(e.other(4), 1);
    }

    #[test]
    #[should_panic]
    fn other_panics_for_non_endpoint() {
        let e = Edge::new(1, 4);
        let _ = e.other(2);
    }

    #[test]
    fn shares_endpoint() {
        let a = Edge::new(1, 2);
        let b = Edge::new(2, 3);
        let c = Edge::new(4, 5);
        assert!(a.shares_endpoint(&b));
        assert!(!a.shares_endpoint(&c));
    }

    #[test]
    fn from_tuple() {
        let e: Edge = (9, 3).into();
        assert_eq!(e.endpoints(), (3, 9));
    }

    #[test]
    fn weighted_edge_basics() {
        let w = WeightedEdge::new(7, 3, 2.5);
        assert_eq!(w.endpoints(), (3, 7));
        assert_eq!(w.weight, 2.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = WeightedEdge::new(0, 1, -1.0);
    }

    #[test]
    fn edges_order_lexicographically() {
        let mut edges = vec![Edge::new(3, 1), Edge::new(0, 2), Edge::new(1, 2)];
        edges.sort();
        assert_eq!(
            edges,
            vec![Edge::new(0, 2), Edge::new(1, 2), Edge::new(1, 3)]
        );
    }
}
