//! Vertex compaction: relabel a graph onto its non-isolated vertices.
//!
//! The partition pieces the paper's protocols solve are *sparse slices of a
//! huge vertex set*: a `gnp(1e5, 2e-4)` piece under a `k = 16` random
//! partition touches only ~70% of the 100k vertex ids, and the coresets the
//! coordinator composes are matchings touching even fewer. Every solver that
//! allocates per-vertex state (blossom search arrays, Hopcroft–Karp pair
//! maps, BFS colourings) would otherwise pay for the isolated ids on every
//! call.
//!
//! [`VertexCompactor`] relabels the non-isolated vertices of any
//! [`GraphRef`] to the dense range `0..n_local` — in **increasing original-id
//! order**, so the relabeling is monotone and canonical edge order is
//! preserved — and maps solver output back to the original ids. The
//! compactor's per-original-vertex scratch (`local id` + presence stamp) is
//! epoch-stamped: a new [`VertexCompactor::compact`] call invalidates the
//! previous mapping by bumping a `u32` epoch instead of clearing the arrays,
//! so repeated compactions (one per solve on a reused matching engine) cost
//! `O(m + n_local log n_local)` — independent of the original `n` after the
//! first call.

use crate::edge::{Edge, VertexId};
use crate::view::{GraphRef, GraphView};

/// Reusable vertex-compaction scratch: relabels graphs onto their non-isolated
/// vertices and maps results back.
///
/// See the [module docs](self) for the epoch-stamping scheme. A compactor's
/// mapping accessors ([`VertexCompactor::n_local`],
/// [`VertexCompactor::to_local_edge`], [`VertexCompactor::expand_edges`], …)
/// always refer to the most recent [`VertexCompactor::compact`] call.
#[derive(Debug, Clone, Default)]
pub struct VertexCompactor {
    /// `local_of[v]` = dense id of original vertex `v`; valid iff
    /// `stamp[v] == epoch`.
    local_of: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    /// Sorted original ids of the current non-isolated vertices;
    /// `orig_of[local] = original`.
    orig_of: Vec<VertexId>,
    /// The relabeled edge list (same order as the source edge list).
    edges: Vec<Edge>,
}

impl VertexCompactor {
    /// Creates an empty compactor; arrays grow to the largest `n` seen.
    pub fn new() -> Self {
        Self::default()
    }

    /// Relabels `g` onto its non-isolated vertices (monotone in original id).
    pub fn compact<G: GraphRef + ?Sized>(&mut self, g: &G) {
        let n = g.n();
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.local_of.resize(n, 0);
        }
        // Bump the epoch; on wrap-around fall back to one full clear so stale
        // stamps from 2^32 compactions ago can never alias the new epoch.
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.iter_mut().for_each(|s| *s = 0);
                1
            }
        };
        self.orig_of.clear();
        for e in g.edges() {
            for x in [e.u, e.v] {
                if self.stamp[x as usize] != self.epoch {
                    self.stamp[x as usize] = self.epoch;
                    self.orig_of.push(x);
                }
            }
        }
        // Assign local ids in increasing original order: the relabeling is
        // monotone, so every relabeled edge keeps `u < v` and the piece's
        // deterministic edge/neighbour orderings survive compaction.
        self.orig_of.sort_unstable();
        for (local, &orig) in self.orig_of.iter().enumerate() {
            self.local_of[orig as usize] = local as u32;
        }
        self.edges.clear();
        self.edges.extend(g.edges().iter().map(|e| {
            let (u, v) = (self.local_of[e.u as usize], self.local_of[e.v as usize]);
            debug_assert!(u < v, "monotone relabeling must preserve edge order");
            Edge { u, v }
        }));
    }

    /// Relabels the **concatenation** of `slices` (edge slices over a shared
    /// vertex set `0..n`) onto its non-isolated vertices, without ever
    /// materializing the union edge list.
    ///
    /// For pairwise edge-disjoint slices — per-machine coresets of a
    /// partitioned graph always are — the result is identical to calling
    /// [`VertexCompactor::compact`] on the first-occurrence-preserving union:
    /// same `n_local`, same relabeled edge sequence. Overlapping slices keep
    /// every duplicate (this is a relabeling, not a dedup).
    pub fn compact_concat(&mut self, n: usize, slices: &[&[Edge]]) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.local_of.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.iter_mut().for_each(|s| *s = 0);
                1
            }
        };
        self.orig_of.clear();
        for s in slices {
            for e in *s {
                for x in [e.u, e.v] {
                    if self.stamp[x as usize] != self.epoch {
                        self.stamp[x as usize] = self.epoch;
                        self.orig_of.push(x);
                    }
                }
            }
        }
        self.orig_of.sort_unstable();
        for (local, &orig) in self.orig_of.iter().enumerate() {
            self.local_of[orig as usize] = local as u32;
        }
        self.edges.clear();
        for s in slices {
            self.edges.extend(s.iter().map(|e| {
                let (u, v) = (self.local_of[e.u as usize], self.local_of[e.v as usize]);
                debug_assert!(u < v, "monotone relabeling must preserve edge order");
                Edge { u, v }
            }));
        }
    }

    /// Number of vertices in the compacted graph (= non-isolated vertices of
    /// the source).
    #[inline]
    pub fn n_local(&self) -> usize {
        self.orig_of.len()
    }

    /// The relabeled edges, in the source's edge order.
    #[inline]
    pub fn local_edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Zero-copy view of the compacted graph.
    pub fn view(&self) -> GraphView<'_> {
        // Invariants hold by construction: the source is simple and the
        // relabeling is a bijection on its non-isolated vertices.
        GraphView::new_unchecked(self.n_local(), &self.edges)
    }

    /// The original id of compacted vertex `local`.
    #[inline]
    pub fn orig_of(&self, local: VertexId) -> VertexId {
        self.orig_of[local as usize]
    }

    /// Maps an original-id edge into compacted ids; `None` if either endpoint
    /// was isolated in (or absent from) the compacted graph.
    pub fn to_local_edge(&self, e: Edge) -> Option<Edge> {
        let (u, v) = (e.u as usize, e.v as usize);
        if u < self.stamp.len()
            && v < self.stamp.len()
            && self.stamp[u] == self.epoch
            && self.stamp[v] == self.epoch
        {
            // Monotone relabeling keeps the canonical order.
            Some(Edge {
                u: self.local_of[u],
                v: self.local_of[v],
            })
        } else {
            None
        }
    }

    /// Maps compacted-id edges back to original ids (preserving order; the
    /// monotone relabeling keeps each edge canonical).
    pub fn expand_edges(&self, local_edges: &[Edge]) -> Vec<Edge> {
        local_edges
            .iter()
            .map(|e| Edge {
                u: self.orig_of[e.u as usize],
                v: self.orig_of[e.v as usize],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn compacts_away_isolated_vertices() {
        // Vertices 0, 3, 9 are used; 10 ids total.
        let g = Graph::from_pairs(10, vec![(3, 9), (0, 9)]).unwrap();
        let mut c = VertexCompactor::new();
        c.compact(&g);
        assert_eq!(c.n_local(), 3);
        assert_eq!(c.orig_of(0), 0);
        assert_eq!(c.orig_of(1), 3);
        assert_eq!(c.orig_of(2), 9);
        // Edge order preserved (`from_pairs` canonicalizes to [(0,9), (3,9)]),
        // ids relabeled monotonically.
        assert_eq!(c.local_edges(), &[Edge::new(0, 2), Edge::new(1, 2)]);
        assert_eq!(c.view().n(), 3);
        assert_eq!(c.view().m(), 2);
    }

    #[test]
    fn round_trip_is_identity_on_edges() {
        let g = Graph::from_pairs(50, vec![(4, 40), (7, 12), (12, 40)]).unwrap();
        let mut c = VertexCompactor::new();
        c.compact(&g);
        let back = c.expand_edges(c.local_edges());
        assert_eq!(back, g.edges());
    }

    #[test]
    fn to_local_edge_rejects_unmapped_endpoints() {
        let g = Graph::from_pairs(10, vec![(1, 2)]).unwrap();
        let mut c = VertexCompactor::new();
        c.compact(&g);
        assert_eq!(c.to_local_edge(Edge::new(1, 2)), Some(Edge::new(0, 1)));
        assert_eq!(c.to_local_edge(Edge::new(1, 5)), None, "5 is isolated");
        assert_eq!(c.to_local_edge(Edge::new(90, 91)), None, "out of range");
    }

    #[test]
    fn reuse_across_graphs_of_different_sizes() {
        let mut c = VertexCompactor::new();
        c.compact(&Graph::from_pairs(100, vec![(10, 90)]).unwrap());
        assert_eq!(c.n_local(), 2);
        // A smaller graph afterwards: stale stamps from the larger graph must
        // not leak into the new mapping.
        c.compact(&Graph::from_pairs(5, vec![(0, 1), (1, 2)]).unwrap());
        assert_eq!(c.n_local(), 3);
        assert_eq!(c.local_edges(), &[Edge::new(0, 1), Edge::new(1, 2)]);
        assert_eq!(c.to_local_edge(Edge::new(10, 90)), None);
    }

    #[test]
    fn concat_compaction_equals_union_compaction_for_disjoint_slices() {
        let a = Graph::from_pairs(60, vec![(4, 40), (7, 12)]).unwrap();
        let b = Graph::from_pairs(60, vec![(12, 40), (2, 55)]).unwrap();
        let union = Graph::union(&[&a, &b]);
        let mut by_union = VertexCompactor::new();
        by_union.compact(&union);
        let mut by_concat = VertexCompactor::new();
        by_concat.compact_concat(60, &[a.edges(), b.edges()]);
        assert_eq!(by_concat.n_local(), by_union.n_local());
        assert_eq!(by_concat.local_edges(), by_union.local_edges());
        assert_eq!(
            by_concat.expand_edges(by_concat.local_edges()),
            by_union.expand_edges(by_union.local_edges())
        );
    }

    #[test]
    fn concat_compaction_of_empty_slices_is_empty() {
        let mut c = VertexCompactor::new();
        c.compact_concat(10, &[&[], &[]]);
        assert_eq!(c.n_local(), 0);
        assert!(c.local_edges().is_empty());
        c.compact_concat(10, &[]);
        assert_eq!(c.n_local(), 0);
    }

    #[test]
    fn empty_graph_compacts_to_nothing() {
        let mut c = VertexCompactor::new();
        c.compact(&Graph::empty(7));
        assert_eq!(c.n_local(), 0);
        assert!(c.local_edges().is_empty());
    }
}
