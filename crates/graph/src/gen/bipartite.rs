//! Random bipartite graph generators.

use crate::bipartite::BipartiteGraph;
use crate::edge::VertexId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples a random bipartite graph `G(left_n, right_n, p)`: every left/right
/// pair becomes an edge independently with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn random_bipartite<R: Rng + ?Sized>(
    left_n: usize,
    right_n: usize,
    p: f64,
    rng: &mut R,
) -> BipartiteGraph {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1], got {p}"
    );
    if left_n == 0 || right_n == 0 || p == 0.0 {
        return BipartiteGraph::empty(left_n, right_n);
    }
    let mut edges = Vec::new();
    if p >= 1.0 {
        for l in 0..left_n as VertexId {
            for r in 0..right_n as VertexId {
                edges.push((l, r));
            }
        }
        return BipartiteGraph::from_pairs_unchecked(left_n, right_n, edges);
    }
    // Geometric skip sampling over the left_n * right_n grid.
    let log_q = (1.0 - p).ln();
    let total = left_n as u64 * right_n as u64;
    let mut idx: u64 = 0;
    loop {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (r.ln() / log_q).floor() as u64;
        idx = idx.saturating_add(skip);
        if idx >= total {
            break;
        }
        let l = (idx / right_n as u64) as VertexId;
        let rr = (idx % right_n as u64) as VertexId;
        edges.push((l, rr));
        idx += 1;
    }
    BipartiteGraph::from_pairs_unchecked(left_n, right_n, edges)
}

/// Samples a near `d`-regular bipartite graph on `n + n` vertices: every left
/// vertex picks `d` distinct random right neighbours (so left degrees are
/// exactly `d`; right degrees concentrate around `d`).
///
/// This matches the structure of the `G_1` part of the matching lower-bound
/// distribution, which is a "random k-regular graph" on `n/2α + n/2α`
/// vertices (paper, Section 1.2).
///
/// # Panics
///
/// Panics if `d > n`.
pub fn near_regular_bipartite<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> BipartiteGraph {
    assert!(
        d <= n,
        "degree {d} cannot exceed the number of right vertices {n}"
    );
    let mut edges = Vec::with_capacity(n * d);
    let mut pool: Vec<VertexId> = (0..n as VertexId).collect();
    for l in 0..n as VertexId {
        // Partial Fisher-Yates: pick d distinct right vertices.
        for i in 0..d {
            let j = rng.gen_range(i..n);
            pool.swap(i, j);
            edges.push((l, pool[i]));
        }
    }
    BipartiteGraph::from_pairs_unchecked(n, n, edges)
}

/// Builds a bipartite graph that contains a planted perfect matching
/// (left `i` — right `perm[i]`) plus `G(n, n, p)` noise edges.
/// Returns the graph and the planted matching as `(left, right)` pairs.
///
/// The planted matching certifies that the maximum matching size is exactly
/// `n`, which gives the experiments an exact optimum without running an exact
/// solver on large instances.
pub fn planted_matching_bipartite<R: Rng + ?Sized>(
    n: usize,
    noise_p: f64,
    rng: &mut R,
) -> (BipartiteGraph, Vec<(VertexId, VertexId)>) {
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    perm.shuffle(rng);
    let planted: Vec<(VertexId, VertexId)> =
        (0..n as VertexId).map(|l| (l, perm[l as usize])).collect();

    let noise = random_bipartite(n, n, noise_p, rng);
    let mut edges: Vec<(VertexId, VertexId)> = noise.edges().to_vec();
    edges.extend_from_slice(&planted);
    // Deduplicate (a noise edge may coincide with a planted edge).
    edges.sort_unstable();
    edges.dedup();
    (BipartiteGraph::from_pairs_unchecked(n, n, edges), planted)
}

/// Builds a random perfect matching between `size` left vertices drawn from
/// `0..left_n` and `size` right vertices drawn from `0..right_n`, avoiding the
/// given excluded sets. Returns the matching edges.
///
/// Used by the hard-instance generators, which need "a random perfect matching
/// between `A-bar` and `B-bar`".
pub fn random_matching_between<R: Rng + ?Sized>(
    left_pool: &[VertexId],
    right_pool: &[VertexId],
    size: usize,
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    assert!(size <= left_pool.len() && size <= right_pool.len());
    let mut left: Vec<VertexId> = left_pool.to_vec();
    let mut right: Vec<VertexId> = right_pool.to_vec();
    left.shuffle(rng);
    right.shuffle(rng);
    left.truncate(size);
    right.truncate(size);
    left.into_iter().zip(right).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn random_bipartite_counts_concentrate() {
        let g = random_bipartite(200, 300, 0.02, &mut rng(1));
        let expected = 0.02 * 200.0 * 300.0;
        let ratio = g.m() as f64 / expected;
        assert!(ratio > 0.8 && ratio < 1.2, "m = {}", g.m());
    }

    #[test]
    fn random_bipartite_extremes() {
        assert_eq!(random_bipartite(5, 5, 0.0, &mut rng(2)).m(), 0);
        assert_eq!(random_bipartite(5, 4, 1.0, &mut rng(2)).m(), 20);
        assert_eq!(random_bipartite(0, 5, 0.7, &mut rng(2)).m(), 0);
    }

    #[test]
    fn near_regular_has_exact_left_degrees() {
        let g = near_regular_bipartite(50, 7, &mut rng(3));
        assert_eq!(g.m(), 50 * 7);
        for d in g.left_degrees() {
            assert_eq!(d, 7);
        }
        // Right degrees concentrate around 7: allow a generous band.
        for d in g.right_degrees() {
            assert!(d <= 25, "right degree {d} suspiciously high");
        }
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn near_regular_rejects_degree_above_n() {
        let _ = near_regular_bipartite(5, 6, &mut rng(4));
    }

    #[test]
    fn planted_matching_is_contained_and_perfect() {
        let (g, planted) = planted_matching_bipartite(80, 0.01, &mut rng(5));
        assert_eq!(planted.len(), 80);
        let edge_set: std::collections::HashSet<_> = g.edges().iter().copied().collect();
        for &(l, r) in &planted {
            assert!(edge_set.contains(&(l, r)), "planted edge ({l},{r}) missing");
        }
        // The planted matching is a perfect matching: left and right endpoints all distinct.
        let lefts: std::collections::HashSet<_> = planted.iter().map(|&(l, _)| l).collect();
        let rights: std::collections::HashSet<_> = planted.iter().map(|&(_, r)| r).collect();
        assert_eq!(lefts.len(), 80);
        assert_eq!(rights.len(), 80);
    }

    #[test]
    fn random_matching_between_is_a_matching() {
        let left: Vec<u32> = (0..30).collect();
        let right: Vec<u32> = (100..130).collect();
        let m = random_matching_between(&left, &right, 20, &mut rng(6));
        assert_eq!(m.len(), 20);
        let l: std::collections::HashSet<_> = m.iter().map(|&(a, _)| a).collect();
        let r: std::collections::HashSet<_> = m.iter().map(|&(_, b)| b).collect();
        assert_eq!(l.len(), 20);
        assert_eq!(r.len(), 20);
        assert!(l.iter().all(|x| *x < 30));
        assert!(r.iter().all(|x| (100..130).contains(x)));
    }

    #[test]
    fn generators_are_seed_reproducible() {
        let a = random_bipartite(40, 40, 0.1, &mut rng(9));
        let b = random_bipartite(40, 40, 0.1, &mut rng(9));
        assert_eq!(a, b);
    }
}
