//! R-MAT (recursive matrix) generator and 2-D grid graphs.
//!
//! R-MAT is the de-facto standard generator for skewed "social-network-like"
//! massive graphs (Graph500 uses it); the coreset experiments use it as an
//! additional realistic workload beyond Erdős–Rényi and Chung–Lu. Grids are
//! the opposite extreme — bounded degree and large diameter — and exercise
//! the coresets on near-regular sparse inputs.

use crate::edge::{Edge, VertexId};
use crate::graph::Graph;
use rand::Rng;
// Membership-only rejection-sampling dedup; iteration order never observed.
use std::collections::HashSet; // xtask: allow(hash-collections)

/// Samples an R-MAT graph with `2^scale` vertices and (up to) `edge_factor *
/// 2^scale` distinct edges, using the standard quadrant probabilities
/// `(a, b, c, d)`; Graph500 uses `(0.57, 0.19, 0.19, 0.05)`.
///
/// Self-loops are rejected and duplicate edges are merged, so the resulting
/// simple graph can have slightly fewer edges than requested (as in every
/// R-MAT implementation).
///
/// # Panics
///
/// Panics if the probabilities are negative or do not sum to ~1.
pub fn rmat<R: Rng + ?Sized>(
    scale: u32,
    edge_factor: usize,
    probabilities: (f64, f64, f64, f64),
    rng: &mut R,
) -> Graph {
    let (a, b, c, d) = probabilities;
    assert!(
        a >= 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0,
        "probabilities must be non-negative"
    );
    assert!(
        ((a + b + c + d) - 1.0).abs() < 1e-6,
        "probabilities must sum to 1"
    );

    let n = 1usize << scale;
    let target = edge_factor * n;
    let mut seen = HashSet::with_capacity(target); // xtask: allow(hash-collections)
    let mut edges = Vec::with_capacity(target);
    // Cap the attempts so adversarial parameters cannot loop forever.
    let max_attempts = target.saturating_mul(4).max(16);
    let mut attempts = 0;
    while edges.len() < target && attempts < max_attempts {
        attempts += 1;
        let (mut lo_u, mut lo_v) = (0u64, 0u64);
        let mut half = (n as u64) / 2;
        while half >= 1 {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            lo_u += du * half;
            lo_v += dv * half;
            half /= 2;
        }
        let (u, v) = (lo_u as VertexId, lo_v as VertexId);
        if u == v {
            continue;
        }
        let e = Edge::new(u, v);
        if seen.insert(e) {
            edges.push(e);
        }
    }
    Graph::from_edges_unchecked(n, edges)
}

/// The Graph500 default R-MAT parameters.
pub fn rmat_graph500<R: Rng + ?Sized>(scale: u32, edge_factor: usize, rng: &mut R) -> Graph {
    rmat(scale, edge_factor, (0.57, 0.19, 0.19, 0.05), rng)
}

/// A `rows x cols` 2-D grid graph (4-neighbour connectivity).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut edges = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::new(id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push(Edge::new(id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::from_edges_unchecked(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn rmat_produces_a_skewed_simple_graph() {
        let g = rmat_graph500(10, 8, &mut rng(1)); // 1024 vertices, ~8192 edges
        assert_eq!(g.n(), 1024);
        assert!(
            g.m() > 4000,
            "should produce a substantial number of edges, got {}",
            g.m()
        );
        assert!(g.m() <= 8 * 1024);
        // Skew: the maximum degree is far above the average.
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(g.max_degree() as f64 > 4.0 * avg, "R-MAT should have hubs");
        // Simplicity invariants.
        let set: HashSet<_> = g.edges().iter().collect();
        assert_eq!(set.len(), g.m());
    }

    #[test]
    fn rmat_is_reproducible() {
        let a = rmat_graph500(8, 4, &mut rng(2));
        let b = rmat_graph500(8, 4, &mut rng(2));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_rejects_bad_probabilities() {
        let _ = rmat(4, 2, (0.5, 0.5, 0.5, 0.5), &mut rng(3));
    }

    #[test]
    fn uniform_rmat_is_roughly_erdos_renyi() {
        // With equal quadrant probabilities R-MAT degenerates to near-uniform
        // edge sampling; the degree distribution should not have extreme hubs.
        let g = rmat(10, 8, (0.25, 0.25, 0.25, 0.25), &mut rng(4));
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!((g.max_degree() as f64) < 6.0 * avg);
    }

    #[test]
    fn grid_structure() {
        let g = grid(5, 7);
        assert_eq!(g.n(), 35);
        assert_eq!(g.m(), 5 * 6 + 4 * 7); // horizontal + vertical edges
        assert_eq!(g.max_degree(), 4);
        assert_eq!(connected_components(&g), 1);

        assert_eq!(grid(1, 4).m(), 3);
        assert_eq!(grid(3, 1).m(), 2);
        assert_eq!(grid(0, 5).m(), 0);
        assert_eq!(grid(1, 1).m(), 0);
    }
}
