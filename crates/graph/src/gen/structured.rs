//! Deterministic structured graphs: paths, cycles, stars, star forests and
//! complete graphs.
//!
//! Stars and star forests are the paper's canonical example of why a local
//! *minimum vertex cover* is not a composable coreset (Section 1.2: "a star on
//! k vertices" gives an `Ω(k)` approximation ratio).

use crate::edge::{Edge, VertexId};
use crate::graph::Graph;

/// Path `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> Graph {
    let edges = (1..n as VertexId).map(|v| Edge::new(v - 1, v)).collect();
    Graph::from_edges_unchecked(n, edges)
}

/// Cycle on `n >= 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut edges: Vec<Edge> = (1..n as VertexId).map(|v| Edge::new(v - 1, v)).collect();
    edges.push(Edge::new(0, n as VertexId - 1));
    Graph::from_edges_unchecked(n, edges)
}

/// Star with centre `0` and `leaves` leaves (so `n = leaves + 1`).
pub fn star(leaves: usize) -> Graph {
    let edges = (1..=leaves as VertexId).map(|v| Edge::new(0, v)).collect();
    Graph::from_edges_unchecked(leaves + 1, edges)
}

/// A forest of `stars` disjoint stars, each with `leaves` leaves.
///
/// The minimum vertex cover is exactly the set of centres (size `stars`),
/// while a careless per-machine cover can pick up to `stars * leaves` leaves —
/// the separation exploited by experiment E4.
pub fn star_forest(stars: usize, leaves: usize) -> Graph {
    let per = leaves + 1;
    let n = stars * per;
    let mut edges = Vec::with_capacity(stars * leaves);
    for s in 0..stars {
        let centre = (s * per) as VertexId;
        for l in 1..=leaves as VertexId {
            edges.push(Edge::new(centre, centre + l));
        }
    }
    Graph::from_edges_unchecked(n, edges)
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            edges.push(Edge::new(u, v));
        }
    }
    Graph::from_edges_unchecked(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(connected_components(&g), 1);
        assert_eq!(path(0).m(), 0);
        assert_eq!(path(1).m(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.m(), 6);
        assert!(g.degrees().iter().all(|&d| d == 2));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_rejected() {
        let _ = cycle(2);
    }

    #[test]
    fn star_shape() {
        let g = star(9);
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 9);
        assert_eq!(g.max_degree(), 9);
        assert_eq!(g.degrees()[0], 9);
    }

    #[test]
    fn star_forest_shape() {
        let g = star_forest(4, 6);
        assert_eq!(g.n(), 4 * 7);
        assert_eq!(g.m(), 4 * 6);
        assert_eq!(connected_components(&g), 4);
        assert_eq!(g.max_degree(), 6);
    }

    #[test]
    fn complete_shape() {
        let g = complete(7);
        assert_eq!(g.m(), 21);
        assert!(g.degrees().iter().all(|&d| d == 6));
        assert_eq!(complete(0).m(), 0);
        assert_eq!(complete(1).m(), 0);
    }
}
