//! Graph generators for every workload used in the experiments.
//!
//! * [`er`] — Erdős–Rényi `G(n, p)` and `G(n, m)` graphs.
//! * [`bipartite`] — random bipartite graphs, near-regular bipartite graphs
//!   and planted perfect matchings.
//! * [`structured`] — paths, cycles, stars, star forests, complete graphs.
//! * [`rmat`](mod@rmat) — R-MAT (Graph500-style) skewed graphs and 2-D grids.
//! * [`powerlaw`] — Chung–Lu graphs with power-law expected degrees.
//! * [`hard`] — the paper's hard distributions `D_Matching` (Sections 4.1 and
//!   5.1) and `D_VC` (Sections 4.2 and 5.3), plus the negative-control
//!   instance on which an *arbitrary maximal* matching coreset is only
//!   `Ω(k)`-approximate (Section 1.2).

pub mod bipartite;
pub mod er;
pub mod hard;
pub mod powerlaw;
pub mod rmat;
pub mod structured;

pub use bipartite::{near_regular_bipartite, planted_matching_bipartite, random_bipartite};
pub use er::{gnm, gnp};
pub use hard::{
    d_matching, d_vc, maximal_matching_trap, DMatchingInstance, DVcInstance, TrapInstance,
};
pub use powerlaw::chung_lu;
pub use rmat::{grid, rmat, rmat_graph500};
pub use structured::{complete, cycle, path, star, star_forest};
