//! The paper's hard input distributions and negative-control instances.
//!
//! * [`d_matching`] — distribution `D_Matching` (Sections 4.1 and 5.1): the
//!   union of a dense random bipartite graph `E_AB` on small vertex sets
//!   `A x B` (|A| = |B| = n/alpha) and a random near-perfect matching
//!   `E_AB-bar` on the remaining vertices. Any good approximation must recover
//!   many matching edges, but locally they are indistinguishable from the
//!   dense block's edges.
//! * [`d_vc`] — distribution `D_VC` (Sections 4.2 and 5.3): a bipartite graph
//!   whose edges all touch a small set `A` (|A| = n/alpha) plus a single
//!   "hidden" edge `e*`; the optimal vertex cover is `A ∪ {one endpoint of e*}`
//!   but a protocol that drops `e*` outputs an infeasible (or enormous) cover.
//! * [`maximal_matching_trap`] — the Section 1.2 negative control: an instance
//!   on which composing *arbitrary maximal* matchings of the pieces yields only
//!   an `Ω(k)` fraction of the optimum, while composing *maximum* matchings
//!   stays O(1). The instance is a planted perfect matching A–B plus a complete
//!   bipartite "trap" block A×C with |C| ≈ n/k; an adversarial maximal matching
//!   prefers trap edges, so the union of the coresets only matches `|C|`
//!   vertices.

use crate::bipartite::BipartiteGraph;
use crate::edge::{Edge, VertexId};
use crate::error::GraphError;
use crate::gen::bipartite::random_matching_between;
use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// A sample from the matching lower-bound distribution `D_Matching`.
#[derive(Debug, Clone)]
pub struct DMatchingInstance {
    /// The full bipartite graph `G(L, R, E_AB ∪ E_AB-bar)` with `|L| = |R| = n`.
    pub graph: BipartiteGraph,
    /// The vertex set `A ⊆ L` (size `n / alpha`).
    pub a: Vec<VertexId>,
    /// The vertex set `B ⊆ R` (size `n / alpha`).
    pub b: Vec<VertexId>,
    /// The planted matching `E_AB-bar` between `L \ A` and `R \ B`
    /// (size `n - n/alpha`); recovering a constant fraction of it is necessary
    /// for any constant-factor approximation.
    pub planted_matching: Vec<(VertexId, VertexId)>,
    /// Number of edges in the dense block `E_AB`.
    pub dense_edges: usize,
}

impl DMatchingInstance {
    /// The number of vertices per side.
    pub fn n(&self) -> usize {
        self.graph.left_n()
    }

    /// A certified lower bound on the maximum matching size: the planted
    /// matching alone.
    pub fn matching_lower_bound(&self) -> usize {
        self.planted_matching.len()
    }
}

/// Samples from `D_Matching(n, alpha, k)`.
///
/// Construction (paper, Section 4.1):
/// 1. pick `A ⊆ L`, `B ⊆ R` of size `n/alpha` uniformly at random,
/// 2. `E_AB`: each pair in `A x B` independently with probability
///    `k * alpha / n` (clamped to 1),
/// 3. `E_AB-bar`: a random perfect matching between `L \ A` and `R \ B`,
/// 4. the instance is `E_AB ∪ E_AB-bar`.
///
/// # Errors
///
/// Returns an error if `alpha < 1`, `n < alpha` (the set `A` would be empty)
/// or `k == 0`.
pub fn d_matching<R: Rng + ?Sized>(
    n: usize,
    alpha: f64,
    k: usize,
    rng: &mut R,
) -> Result<DMatchingInstance, GraphError> {
    if alpha < 1.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("alpha must be >= 1, got {alpha}"),
        });
    }
    if k == 0 {
        return Err(GraphError::InvalidMachineCount { k });
    }
    let block = (n as f64 / alpha).floor() as usize;
    if block == 0 || block > n {
        return Err(GraphError::InvalidParameter {
            reason: format!("n/alpha = {block} must be in 1..=n for D_Matching"),
        });
    }

    // Random A ⊆ L and B ⊆ R of size `block`.
    let mut left: Vec<VertexId> = (0..n as VertexId).collect();
    let mut right: Vec<VertexId> = (0..n as VertexId).collect();
    left.shuffle(rng);
    right.shuffle(rng);
    let a: Vec<VertexId> = left[..block].to_vec();
    let a_bar: Vec<VertexId> = left[block..].to_vec();
    let b: Vec<VertexId> = right[..block].to_vec();
    let b_bar: Vec<VertexId> = right[block..].to_vec();

    // Dense block E_AB with probability p = k * alpha / n.
    let p = (k as f64 * alpha / n as f64).min(1.0);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for &u in &a {
        for &v in &b {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    let dense_edges = edges.len();

    // Planted near-perfect matching between the complements.
    let planted = random_matching_between(&a_bar, &b_bar, a_bar.len().min(b_bar.len()), rng);
    edges.extend_from_slice(&planted);

    let graph = BipartiteGraph::from_pairs(n, n, edges)?;
    Ok(DMatchingInstance {
        graph,
        a,
        b,
        planted_matching: planted,
        dense_edges,
    })
}

/// A sample from the vertex-cover lower-bound distribution `D_VC`.
#[derive(Debug, Clone)]
pub struct DVcInstance {
    /// The full bipartite graph `G(L, R, E_A ∪ {e*})` with `|L| = |R| = n`.
    pub graph: BipartiteGraph,
    /// The vertex set `A ⊆ L` of size `n/alpha`; `A` plus one endpoint of `e*`
    /// is a vertex cover.
    pub a: Vec<VertexId>,
    /// The special vertex `v* ∈ L \ A` carrying the hidden edge.
    pub v_star: VertexId,
    /// The hidden edge `e* = (v*, r*)` as a `(left, right)` pair.
    pub e_star: (VertexId, VertexId),
}

impl DVcInstance {
    /// An upper bound on the optimal vertex cover size: `|A| + 1`.
    pub fn vc_upper_bound(&self) -> usize {
        self.a.len() + 1
    }
}

/// Samples from `D_VC(n, alpha, k)`.
///
/// Construction (paper, Sections 4.2 and 5.3, with the introduction's
/// placement of the hidden edge):
/// 1. pick `A ⊆ L` of size `n/alpha` uniformly at random,
/// 2. `E_A`: each pair in `A x R` independently with probability `k / 2n`,
/// 3. pick `v*` uniformly from `L \ A` and a uniformly random right vertex
///    `r*`; add the hidden edge `e* = (v*, r*)`.
///
/// The resulting graph has a vertex cover of size `n/alpha + 1` (namely
/// `A ∪ {v*}`), yet any protocol that fails to report `e*` (or one of its
/// endpoints) produces an infeasible cover — the crux of Theorem 4/6.
///
/// # Errors
///
/// Returns an error if `alpha < 1`, the implied `|A|` is zero or `n`, or `k == 0`.
pub fn d_vc<R: Rng + ?Sized>(
    n: usize,
    alpha: f64,
    k: usize,
    rng: &mut R,
) -> Result<DVcInstance, GraphError> {
    if alpha < 1.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("alpha must be >= 1, got {alpha}"),
        });
    }
    if k == 0 {
        return Err(GraphError::InvalidMachineCount { k });
    }
    let block = (n as f64 / alpha).floor() as usize;
    if block == 0 || block >= n {
        return Err(GraphError::InvalidParameter {
            reason: format!("n/alpha = {block} must be in 1..n for D_VC"),
        });
    }

    let mut left: Vec<VertexId> = (0..n as VertexId).collect();
    left.shuffle(rng);
    let a: Vec<VertexId> = left[..block].to_vec();
    let rest: Vec<VertexId> = left[block..].to_vec();

    let p = (k as f64 / (2.0 * n as f64)).min(1.0);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for &u in &a {
        for r in 0..n as VertexId {
            if rng.gen_bool(p) {
                edges.push((u, r));
            }
        }
    }

    let Some(&v_star) = rest.choose(rng) else {
        return Err(GraphError::InvalidParameter {
            reason: "D_VC requires block < n so that L \\ A is non-empty".into(),
        });
    };
    let r_star = rng.gen_range(0..n as VertexId);
    let e_star = (v_star, r_star);
    edges.push(e_star);

    let graph = BipartiteGraph::from_pairs(n, n, edges)?;
    Ok(DVcInstance {
        graph,
        a,
        v_star,
        e_star,
    })
}

/// The negative-control instance for arbitrary maximal matchings.
#[derive(Debug, Clone)]
pub struct TrapInstance {
    /// The full graph: planted matching `A–B` plus the trap block `A x C`.
    pub graph: Graph,
    /// The planted perfect matching edges (`a_i`, `b_i`); the optimum matching
    /// has at least this size.
    pub planted_matching: Vec<Edge>,
    /// The trap vertices `C` (size about `n / k`); an adversarial maximal
    /// matching prefers edges into `C`, so the composed solution is stuck at
    /// roughly `|C|`.
    pub trap_vertices: Vec<VertexId>,
    /// Edges of the trap block `A x C`.
    pub trap_edges: Vec<Edge>,
    /// Membership set for O(log) trap-edge queries (sorted, hash-free).
    trap_set: BTreeSet<Edge>,
}

impl TrapInstance {
    /// Lower bound on the maximum matching (the planted matching).
    pub fn matching_lower_bound(&self) -> usize {
        self.planted_matching.len()
    }

    /// Returns `true` if `e` is a trap edge (touches `C`).
    pub fn is_trap_edge(&self, e: &Edge) -> bool {
        self.trap_set.contains(e)
    }
}

impl TrapInstance {
    fn new(
        graph: Graph,
        planted: Vec<Edge>,
        trap_vertices: Vec<VertexId>,
        trap_edges: Vec<Edge>,
    ) -> Self {
        let trap_set = trap_edges.iter().copied().collect();
        TrapInstance {
            graph,
            planted_matching: planted,
            trap_vertices,
            trap_edges,
            trap_set,
        }
    }
}

/// Builds the maximal-matching trap instance.
///
/// Layout of the `2n + c` vertices (where `c = max(1, trap_fraction * n)`):
/// * `a_i = i` for `i in 0..n`,
/// * `b_i = n + i` for `i in 0..n`,
/// * `C = { 2n, ..., 2n + c - 1 }`.
///
/// Edges: the planted perfect matching `(a_i, b_i)` plus the complete
/// bipartite block `A x C`. The maximum matching has size `n` (it can use the
/// planted matching); a maximal matching that prefers trap edges matches at
/// most `c` of the `a_i` to `C` *and* is then forced to pick the planted edges
/// of the remaining `a_i` only if those edges are present on the same
/// machine — under a random `k`-partition most are not, so the composed
/// coreset collapses to about `c + n/k` edges.
pub fn maximal_matching_trap(n: usize, trap_fraction: f64) -> Result<TrapInstance, GraphError> {
    if !(0.0..=1.0).contains(&trap_fraction) {
        return Err(GraphError::InvalidParameter {
            reason: format!("trap_fraction must be in [0, 1], got {trap_fraction}"),
        });
    }
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "n must be positive".into(),
        });
    }
    let c = ((trap_fraction * n as f64).round() as usize).max(1);
    let total = 2 * n + c;

    let mut planted = Vec::with_capacity(n);
    let mut edges = Vec::with_capacity(n + n * c);
    for i in 0..n as VertexId {
        let e = Edge::new(i, n as VertexId + i);
        planted.push(e);
        edges.push(e);
    }
    let trap_vertices: Vec<VertexId> = (0..c as VertexId).map(|j| 2 * n as VertexId + j).collect();
    let mut trap_edges = Vec::with_capacity(n * c);
    for i in 0..n as VertexId {
        for &t in &trap_vertices {
            let e = Edge::new(i, t);
            trap_edges.push(e);
            edges.push(e);
        }
    }
    let graph = Graph::from_edges_unchecked(total, edges);
    Ok(TrapInstance::new(graph, planted, trap_vertices, trap_edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashSet;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn d_matching_structure() {
        let n = 500;
        let alpha = 5.0;
        let k = 10;
        let inst = d_matching(n, alpha, k, &mut rng(1)).unwrap();
        assert_eq!(inst.n(), n);
        assert_eq!(inst.a.len(), 100);
        assert_eq!(inst.b.len(), 100);
        assert_eq!(inst.planted_matching.len(), n - 100);
        assert!(inst.matching_lower_bound() >= n - 100);
        // The dense block has about |A| * |B| * k * alpha / n = 100*100*10*5/500 = 1000 edges.
        assert!(
            inst.dense_edges > 500 && inst.dense_edges < 1600,
            "dense edges = {}",
            inst.dense_edges
        );
        // Planted edges avoid A and B entirely.
        let a_set: HashSet<_> = inst.a.iter().collect();
        let b_set: HashSet<_> = inst.b.iter().collect();
        for (l, r) in &inst.planted_matching {
            assert!(!a_set.contains(l));
            assert!(!b_set.contains(r));
        }
    }

    #[test]
    fn d_matching_rejects_bad_parameters() {
        assert!(d_matching(100, 0.5, 4, &mut rng(2)).is_err());
        assert!(d_matching(100, 5.0, 0, &mut rng(2)).is_err());
        assert!(d_matching(3, 100.0, 4, &mut rng(2)).is_err());
    }

    #[test]
    fn d_vc_structure() {
        let n = 400;
        let alpha = 8.0;
        let k = 8;
        let inst = d_vc(n, alpha, k, &mut rng(3)).unwrap();
        assert_eq!(inst.a.len(), 50);
        assert_eq!(inst.vc_upper_bound(), 51);
        // e* is present and its left endpoint is outside A.
        let edges: HashSet<_> = inst.graph.edges().iter().copied().collect();
        assert!(edges.contains(&inst.e_star));
        assert!(!inst.a.contains(&inst.v_star));
        assert_eq!(inst.e_star.0, inst.v_star);
        // A ∪ {v*} really is a vertex cover.
        let cover: HashSet<VertexId> = inst
            .a
            .iter()
            .copied()
            .chain(std::iter::once(inst.v_star))
            .collect();
        for &(l, _) in inst.graph.edges() {
            assert!(
                cover.contains(&l),
                "edge with left endpoint {l} not covered"
            );
        }
    }

    #[test]
    fn d_vc_rejects_bad_parameters() {
        assert!(d_vc(100, 0.9, 4, &mut rng(4)).is_err());
        assert!(
            d_vc(100, 1.0, 4, &mut rng(4)).is_err(),
            "|A| = n leaves no room for v*"
        );
        assert!(d_vc(100, 5.0, 0, &mut rng(4)).is_err());
    }

    #[test]
    fn trap_instance_structure() {
        let n = 200;
        let inst = maximal_matching_trap(n, 0.05).unwrap();
        let c = 10;
        assert_eq!(inst.trap_vertices.len(), c);
        assert_eq!(inst.planted_matching.len(), n);
        assert_eq!(inst.trap_edges.len(), n * c);
        assert_eq!(inst.graph.n(), 2 * n + c);
        assert_eq!(inst.graph.m(), n + n * c);
        assert_eq!(inst.matching_lower_bound(), n);
        assert!(inst.is_trap_edge(&Edge::new(0, 2 * n as VertexId)));
        assert!(!inst.is_trap_edge(&inst.planted_matching[0]));
    }

    #[test]
    fn trap_rejects_bad_parameters() {
        assert!(maximal_matching_trap(0, 0.1).is_err());
        assert!(maximal_matching_trap(10, 1.5).is_err());
    }
}
