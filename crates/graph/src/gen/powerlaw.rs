//! Chung–Lu random graphs with power-law expected degree sequences.
//!
//! The paper's introduction motivates the distributed setting with "massive
//! graphs"; realistic massive graphs are heavy-tailed, so the experiment suite
//! includes Chung–Lu instances with a configurable power-law exponent in
//! addition to Erdős–Rényi ones.

use crate::edge::Edge;
use crate::graph::Graph;
use rand::Rng;
// Membership-only rejection-sampling dedup; iteration order never observed.
use std::collections::HashSet; // xtask: allow(hash-collections)

/// Samples a Chung–Lu graph: vertex `i` receives weight
/// `w_i = (n / (i + i0))^(1 / (gamma - 1))` (a power-law with exponent
/// `gamma`), and each pair `(i, j)` becomes an edge with probability
/// `min(1, w_i w_j / W)` where `W` is the total weight.
///
/// The expected average degree is controlled by `avg_degree` via a global
/// rescaling of the weights.
///
/// # Panics
///
/// Panics if `gamma <= 2` (the weight sequence would not be summable in the
/// usual regime) or `avg_degree <= 0`.
pub fn chung_lu<R: Rng + ?Sized>(n: usize, gamma: f64, avg_degree: f64, rng: &mut R) -> Graph {
    assert!(gamma > 2.0, "power-law exponent must exceed 2, got {gamma}");
    assert!(avg_degree > 0.0, "average degree must be positive");
    if n < 2 {
        return Graph::empty(n);
    }

    // Raw power-law weights, then rescale so the mean weight equals avg_degree.
    let i0 = 1.0;
    let exponent = 1.0 / (gamma - 1.0);
    let mut weights: Vec<f64> = (0..n)
        .map(|i| (n as f64 / (i as f64 + i0)).powf(exponent))
        .collect();
    let mean: f64 = weights.iter().sum::<f64>() / n as f64;
    let scale = avg_degree / mean;
    for w in &mut weights {
        *w *= scale;
    }
    let total: f64 = weights.iter().sum();

    // Edge probabilities are proportional to w_i * w_j; sample per vertex
    // using the high-weight vertices as "hubs" to keep the cost near O(m).
    // For the sizes used in experiments (n <= ~100k, avg_degree small) a
    // simple per-pair loop over candidate neighbours of each hub would be
    // O(n^2); instead sample, for each vertex i, a Binomial-ish number of
    // candidate partners proportional to its weight and accept by weight.
    let mut seen: HashSet<Edge> = HashSet::new(); // xtask: allow(hash-collections)
    let mut edges = Vec::new();
    // Expected number of edges is roughly total * avg_degree / 2; we sample
    // candidate pairs by weighted choice of both endpoints which reproduces
    // the Chung-Lu marginal probabilities up to O(1/n) corrections
    // (the standard "fast Chung-Lu" approach).
    // With W = total weight, drawing W weighted endpoint-pairs gives each pair
    // (i, j) expected multiplicity w_i w_j / W — the Chung-Lu edge probability.
    let target_samples = total.ceil() as usize;
    // Precompute the cumulative distribution for weighted sampling.
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &w in &weights {
        acc += w;
        cumulative.push(acc);
    }
    let sample_vertex = |rng: &mut R, cumulative: &[f64], acc: f64| -> u32 {
        let x = rng.gen_range(0.0..acc);
        match cumulative.binary_search_by(|probe| probe.total_cmp(&x)) {
            Ok(i) | Err(i) => i.min(cumulative.len() - 1) as u32,
        }
    };
    for _ in 0..target_samples.max(1) {
        let u = sample_vertex(rng, &cumulative, acc);
        let v = sample_vertex(rng, &cumulative, acc);
        if u == v {
            continue;
        }
        let e = Edge::new(u, v);
        if seen.insert(e) {
            edges.push(e);
        }
    }
    Graph::from_edges_unchecked(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn average_degree_is_in_the_right_ballpark() {
        let n = 2000;
        let g = chung_lu(n, 2.5, 6.0, &mut rng(1));
        let avg = 2.0 * g.m() as f64 / n as f64;
        assert!(avg > 2.0 && avg < 12.0, "average degree {avg} out of range");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let n = 3000;
        let g = chung_lu(n, 2.3, 5.0, &mut rng(2));
        let max_deg = g.max_degree();
        let avg = 2.0 * g.m() as f64 / n as f64;
        assert!(
            max_deg as f64 > 5.0 * avg,
            "expected a hub: max degree {max_deg}, average {avg}"
        );
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(chung_lu(0, 2.5, 3.0, &mut rng(3)).n(), 0);
        assert_eq!(chung_lu(1, 2.5, 3.0, &mut rng(3)).m(), 0);
    }

    #[test]
    #[should_panic(expected = "exceed 2")]
    fn bad_gamma_rejected() {
        let _ = chung_lu(10, 1.5, 3.0, &mut rng(4));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_degree_rejected() {
        let _ = chung_lu(10, 2.5, 0.0, &mut rng(5));
    }

    #[test]
    fn reproducible() {
        let a = chung_lu(500, 2.5, 4.0, &mut rng(6));
        let b = chung_lu(500, 2.5, 4.0, &mut rng(6));
        assert_eq!(a, b);
    }
}
