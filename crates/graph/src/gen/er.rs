//! Erdős–Rényi random graphs.

use crate::edge::Edge;
use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;
// Membership-only rejection-sampling dedup; iteration order never observed.
use std::collections::HashSet; // xtask: allow(hash-collections)

/// Samples `G(n, p)`: every unordered pair becomes an edge independently with
/// probability `p`.
///
/// Uses the geometric "skip" sampling technique so that the running time is
/// `O(n + m)` rather than `O(n^2)` when `p` is small, which matters for the
/// large-n experiments.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1], got {p}"
    );
    if n < 2 || p == 0.0 {
        return Graph::empty(n);
    }
    if p >= 1.0 {
        return complete_graph(n);
    }

    // Iterate over the pairs (u, v), u < v, in lexicographic order and skip
    // ahead geometrically.
    let mut edges = Vec::new();
    let log_q = (1.0 - p).ln();
    let total_pairs = n as u64 * (n as u64 - 1) / 2;
    let mut idx: u64 = 0;
    loop {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (r.ln() / log_q).floor() as u64;
        idx = idx.saturating_add(skip);
        if idx >= total_pairs {
            break;
        }
        let (u, v) = pair_from_index(idx, n as u64);
        edges.push(Edge::new(u as u32, v as u32));
        idx += 1;
    }
    Graph::from_edges_unchecked(n, edges)
}

/// Samples `G(n, m)`: a graph with exactly `m` distinct edges chosen uniformly
/// at random among all simple graphs with `m` edges (rejection sampling for
/// sparse graphs, shuffled enumeration for dense ones).
///
/// # Panics
///
/// Panics if `m` exceeds the number of available pairs `n(n-1)/2`.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let total_pairs = if n < 2 { 0 } else { n * (n - 1) / 2 };
    assert!(
        m <= total_pairs,
        "requested {m} edges but only {total_pairs} pairs exist"
    );
    if m == 0 {
        return Graph::empty(n);
    }

    if m * 3 > total_pairs {
        // Dense: enumerate all pairs, shuffle, take the first m.
        let mut pairs: Vec<Edge> = Vec::with_capacity(total_pairs);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                pairs.push(Edge::new(u, v));
            }
        }
        pairs.shuffle(rng);
        pairs.truncate(m);
        return Graph::from_edges_unchecked(n, pairs);
    }

    // Sparse: rejection-sample distinct pairs.
    let mut seen = HashSet::with_capacity(m * 2); // xtask: allow(hash-collections)
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let e = Edge::new(u, v);
        if seen.insert(e) {
            edges.push(e);
        }
    }
    Graph::from_edges_unchecked(n, edges)
}

fn complete_graph(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push(Edge::new(u, v));
        }
    }
    Graph::from_edges_unchecked(n, edges)
}

/// Maps a linear index in `0..n(n-1)/2` to the corresponding pair `(u, v)`,
/// `u < v`, in lexicographic order.
fn pair_from_index(idx: u64, n: u64) -> (u64, u64) {
    // Row u contains (n - 1 - u) pairs. Find the row by walking; rows shrink
    // so an O(sqrt) closed form exists, but a loop with cumulative counts is
    // simpler and still O(n) total across the generator because idx increases.
    // For performance we solve the quadratic directly.
    // Pairs before row u: S(u) = u*n - u - u*(u-1)/2.
    // We need the largest u with S(u) <= idx.
    let idx_f = idx as f64;
    let n_f = n as f64;
    // Solve u^2 - (2n - 1)u + 2*idx >= 0 boundary.
    let estimate =
        (2.0 * n_f - 1.0 - ((2.0 * n_f - 1.0).powi(2) - 8.0 * idx_f).max(0.0).sqrt()) / 2.0;
    let mut u = (estimate.floor().max(0.0) as u64).min(n.saturating_sub(2));
    // Guard against floating-point rounding by adjusting locally.
    loop {
        let before = pairs_before_row(u, n);
        if before > idx {
            u = u.saturating_sub(1);
            continue;
        }
        let next = pairs_before_row(u + 1, n);
        if idx >= next {
            u += 1;
            continue;
        }
        let offset = idx - before;
        return (u, u + 1 + offset);
    }
}

fn pairs_before_row(u: u64, n: u64) -> u64 {
    // sum_{r=0}^{u-1} (n - 1 - r) = u*(n-1) - u*(u-1)/2
    u * (n - 1) - u * u.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn pair_from_index_is_lexicographic() {
        let n = 7u64;
        let mut expected = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                expected.push((u, v));
            }
        }
        for (i, &(u, v)) in expected.iter().enumerate() {
            assert_eq!(pair_from_index(i as u64, n), (u, v), "index {i}");
        }
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, &mut rng(1));
        let expected = p * (n * (n - 1) / 2) as f64;
        let ratio = g.m() as f64 / expected;
        assert!(
            ratio > 0.85 && ratio < 1.15,
            "m={} expected≈{expected}",
            g.m()
        );
        assert_eq!(g.n(), n);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, &mut rng(2)).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng(2)).m(), 45);
        assert_eq!(gnp(1, 0.5, &mut rng(2)).m(), 0);
        assert_eq!(gnp(0, 0.5, &mut rng(2)).n(), 0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn gnp_rejects_bad_probability() {
        let _ = gnp(5, 1.5, &mut rng(3));
    }

    #[test]
    fn gnm_exact_count_and_simple() {
        let g = gnm(50, 200, &mut rng(4));
        assert_eq!(g.m(), 200);
        assert_eq!(g.n(), 50);
        // Simplicity is enforced by Graph invariants (debug asserts) plus dedup here.
        let set: std::collections::HashSet<_> = g.edges().iter().collect();
        assert_eq!(set.len(), 200);
    }

    #[test]
    fn gnm_dense_path() {
        let g = gnm(10, 44, &mut rng(5)); // out of 45 pairs
        assert_eq!(g.m(), 44);
    }

    #[test]
    fn gnm_zero_and_full() {
        assert_eq!(gnm(10, 0, &mut rng(6)).m(), 0);
        assert_eq!(gnm(6, 15, &mut rng(6)).m(), 15);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn gnm_rejects_too_many_edges() {
        let _ = gnm(4, 10, &mut rng(7));
    }

    #[test]
    fn gnp_is_reproducible_from_seed() {
        let a = gnp(100, 0.1, &mut rng(42));
        let b = gnp(100, 0.1, &mut rng(42));
        assert_eq!(a, b);
    }
}
