//! Compressed sparse row (CSR) representation.
//!
//! The matching and peeling algorithms traverse neighbourhoods many times;
//! a CSR layout keeps all neighbour lists in one contiguous allocation which
//! is friendlier to the cache than `Vec<Vec<u32>>` (see the Rust Performance
//! Book's guidance on heap allocations and memory locality).

use crate::edge::{Edge, VertexId};
use crate::graph::Graph;
use crate::view::{GraphRef, GraphView};

/// Compressed sparse row adjacency structure for an undirected graph.
///
/// This is the canonical adjacency representation for traversal: every solver
/// in the workspace builds one `Csr` per call (from an owned [`Graph`] or a
/// borrowed [`GraphView`] alike) instead of a `Vec<Vec<VertexId>>`.
///
/// For each vertex `v`, its neighbours are
/// `targets[offsets[v] .. offsets[v + 1]]`, sorted in increasing order.
#[derive(Debug, Clone)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
}

impl Csr {
    /// Builds the CSR adjacency of `n` vertices over a trusted edge slice —
    /// the core constructor every representation funnels into.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut deg = vec![0u32; n];
        for e in edges {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; 2 * edges.len()];
        for e in edges {
            targets[cursor[e.u as usize] as usize] = e.v;
            cursor[e.u as usize] += 1;
            targets[cursor[e.v as usize] as usize] = e.u;
            cursor[e.v as usize] += 1;
        }
        // Sort each neighbourhood for deterministic traversal and binary search.
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[lo..hi].sort_unstable();
        }
        Csr { offsets, targets }
    }

    /// Builds the CSR view of an owned graph.
    pub fn from_graph(g: &Graph) -> Self {
        Self::from_edges(g.n(), g.edges())
    }

    /// Builds the CSR view of any [`GraphRef`] (owned graph or borrowed
    /// view).
    pub fn from_ref<G: GraphRef + ?Sized>(g: &G) -> Self {
        Self::from_edges(g.n(), g.edges())
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Neighbours of `v`, sorted.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Returns `true` if `(a, b)` is an edge.
    #[inline]
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterates over all vertices with non-zero degree.
    pub fn non_isolated(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.n() as VertexId).filter(move |&v| self.degree(v) > 0)
    }
}

impl From<&Graph> for Csr {
    fn from(g: &Graph) -> Self {
        Csr::from_graph(g)
    }
}

impl From<GraphView<'_>> for Csr {
    fn from(v: GraphView<'_>) -> Self {
        Csr::from_ref(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_matches_adjacency() {
        let g = Graph::from_pairs(5, vec![(0, 1), (0, 2), (1, 2), (3, 4)]).unwrap();
        let csr = Csr::from_graph(&g);
        let adj = g.adjacency();
        assert_eq!(csr.n(), 5);
        assert_eq!(csr.m(), 4);
        for v in 0..5u32 {
            assert_eq!(csr.neighbors(v), adj.neighbors(v), "vertex {v}");
            assert_eq!(csr.degree(v), adj.degree(v));
        }
        assert!(csr.has_edge(0, 2));
        assert!(!csr.has_edge(0, 4));
    }

    #[test]
    fn csr_of_empty_graph() {
        let g = Graph::empty(3);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.n(), 3);
        assert_eq!(csr.m(), 0);
        assert!(csr.neighbors(1).is_empty());
        assert_eq!(csr.non_isolated().count(), 0);
    }

    #[test]
    fn non_isolated_iteration() {
        let g = Graph::from_pairs(6, vec![(1, 4)]).unwrap();
        let csr = Csr::from_graph(&g);
        let v: Vec<_> = csr.non_isolated().collect();
        assert_eq!(v, vec![1, 4]);
    }

    #[test]
    fn from_ref_conversion() {
        let g = Graph::from_pairs(2, vec![(0, 1)]).unwrap();
        let csr: Csr = (&g).into();
        assert_eq!(csr.m(), 1);
    }
}
