//! Plain-text edge-list serialization.
//!
//! The experiment binaries occasionally persist generated instances so a run
//! can be replayed; the format is one `u v` pair per line preceded by a
//! header line `n m` (a de-facto standard for matching benchmarks).

use crate::edge::VertexId;
use crate::error::GraphError;
use crate::graph::Graph;
use std::fmt::Write as _;

/// Serializes a graph to the `n m\nu v\n...` edge-list format.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::with_capacity(16 + g.m() * 12);
    let _ = writeln!(out, "{} {}", g.n(), g.m());
    for e in g.edges() {
        let _ = writeln!(out, "{} {}", e.u, e.v);
    }
    out
}

/// Parses the `n m\nu v\n...` edge-list format produced by [`to_edge_list`].
pub fn from_edge_list(text: &str) -> Result<Graph, GraphError> {
    let mut lines = text
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'));
    let header = lines.next().ok_or_else(|| GraphError::InvalidParameter {
        reason: "edge list is empty (missing `n m` header)".into(),
    })?;
    let mut parts = header.split_whitespace();
    let n: usize = parse_field(parts.next(), "n")?;
    let m: usize = parse_field(parts.next(), "m")?;

    let mut pairs = Vec::with_capacity(m);
    for line in lines {
        let mut parts = line.split_whitespace();
        let u: VertexId = parse_field(parts.next(), "u")?;
        let v: VertexId = parse_field(parts.next(), "v")?;
        pairs.push((u, v));
    }
    if pairs.len() != m {
        return Err(GraphError::InvalidParameter {
            reason: format!("header declared {m} edges but {} were found", pairs.len()),
        });
    }
    Graph::from_pairs(n, pairs)
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, name: &str) -> Result<T, GraphError> {
    field
        .ok_or_else(|| GraphError::InvalidParameter {
            reason: format!("missing field `{name}`"),
        })?
        .parse()
        .map_err(|_| GraphError::InvalidParameter {
            reason: format!("field `{name}` is not a number"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = Graph::from_pairs(5, vec![(0, 1), (2, 4), (1, 3)]).unwrap();
        let text = to_edge_list(&g);
        let g2 = from_edge_list(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n4 2\n\n0 1\n2 3\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::from_pairs(0, vec![]).unwrap();
        let text = to_edge_list(&g);
        assert_eq!(text, "0 0\n");
        assert_eq!(from_edge_list(&text).unwrap(), g);
    }

    #[test]
    fn isolated_vertices_survive_round_trip() {
        // Vertices 3..10 touch no edge; `n` in the header must preserve them.
        let g = Graph::from_pairs(10, vec![(0, 1), (1, 2)]).unwrap();
        let g2 = from_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(g2.n(), 10);
        assert_eq!(g2, g);
    }

    #[test]
    fn tolerates_extra_whitespace() {
        let g = from_edge_list("  3   2  \n 0\t1 \n\t1 2\n").unwrap();
        assert_eq!((g.n(), g.m()), (3, 2));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_edge_list("").is_err());
        assert!(from_edge_list("abc def\n").is_err());
        assert!(from_edge_list("3 2\n0 1\n").is_err(), "edge count mismatch");
        assert!(from_edge_list("3 1\n0 x\n").is_err());
        assert!(from_edge_list("3 1\n0 7\n").is_err(), "vertex out of range");
    }
}
