//! Edge-weighted graphs for the weighted-matching extension.
//!
//! The paper extends its matching coreset to weighted graphs via the
//! Crouch–Stubbs technique (grouping edges into geometric weight classes,
//! Section 1.1). [`WeightedGraph`] stores weighted edges and can split itself
//! into the unweighted weight-class subgraphs that the technique requires.

use crate::edge::{Edge, VertexId, WeightedEdge};
use crate::error::GraphError;
use crate::graph::Graph;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A simple undirected graph with non-negative edge weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedGraph {
    n: usize,
    edges: Vec<WeightedEdge>,
}

impl WeightedGraph {
    /// Creates an empty weighted graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        WeightedGraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Builds a weighted graph from `(u, v, w)` triples; duplicate edges keep
    /// the maximum weight seen (a matching never benefits from the lighter
    /// parallel edge).
    pub fn from_triples<I>(n: usize, triples: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId, f64)>,
    {
        let mut best: BTreeMap<Edge, f64> = BTreeMap::new();
        for (a, b, w) in triples {
            if a == b {
                return Err(GraphError::SelfLoop { vertex: a });
            }
            if a as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: a, n });
            }
            if b as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: b, n });
            }
            if !(w.is_finite() && w >= 0.0) {
                return Err(GraphError::InvalidParameter {
                    reason: format!("edge weight must be finite and non-negative, got {w}"),
                });
            }
            let e = Edge::new(a, b);
            best.entry(e)
                .and_modify(|old| *old = old.max(w))
                .or_insert(w);
        }
        let mut edges: Vec<WeightedEdge> = best
            .into_iter()
            .map(|(edge, weight)| WeightedEdge { edge, weight })
            .collect();
        edges.sort_by_key(|we| we.edge);
        Ok(WeightedGraph { n, edges })
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The weighted edge list, sorted by endpoints.
    #[inline]
    pub fn edges(&self) -> &[WeightedEdge] {
        &self.edges
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// The largest edge weight, or `0.0` for an edgeless graph.
    pub fn max_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).fold(0.0, f64::max)
    }

    /// Drops the weights, returning the underlying simple graph.
    pub fn to_unweighted(&self) -> Graph {
        Graph::from_edges_unchecked(self.n, self.edges.iter().map(|e| e.edge).collect())
    }

    /// Splits the graph into geometric weight classes
    /// `class i = { e : base^i <= w(e) < base^(i+1) }` for `i >= 0`, together
    /// with the weight-class lower bound `base^i` of each class.
    ///
    /// Edges with weight below `1.0` are clamped into class 0 after rescaling
    /// by the minimum positive weight, matching the standard Crouch–Stubbs
    /// setup where weights are assumed to be at least 1. Classes with no edges
    /// are omitted.
    pub fn weight_classes(&self, base: f64) -> Vec<(f64, Graph)> {
        assert!(base > 1.0, "weight-class base must exceed 1.0");
        if self.edges.is_empty() {
            return Vec::new();
        }
        let min_pos = self
            .edges
            .iter()
            .map(|e| e.weight)
            .filter(|&w| w > 0.0)
            .fold(f64::INFINITY, f64::min);
        let scale = if min_pos.is_finite() && min_pos < 1.0 {
            1.0 / min_pos
        } else {
            1.0
        };

        let mut classes: BTreeMap<u32, Vec<Edge>> = BTreeMap::new();
        for e in &self.edges {
            let w = (e.weight * scale).max(1.0);
            let class = w.log(base).floor().max(0.0) as u32;
            classes.entry(class).or_default().push(e.edge);
        }
        let mut out: Vec<(f64, Graph)> = classes
            .into_iter()
            .map(|(class, edges)| {
                (
                    base.powi(class as i32) / scale,
                    Graph::from_edges_unchecked(self.n, edges),
                )
            })
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// Looks up the weight of edge `(a, b)`, if present.
    pub fn weight_of(&self, a: VertexId, b: VertexId) -> Option<f64> {
        if a == b {
            return None;
        }
        let e = Edge::new(a, b);
        self.edges
            .iter()
            .find(|we| we.edge == e)
            .map(|we| we.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let g =
            WeightedGraph::from_triples(4, vec![(0, 1, 2.0), (1, 2, 5.0), (2, 3, 0.5)]).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.weight_of(1, 0), Some(2.0));
        assert_eq!(g.weight_of(0, 3), None);
        assert!((g.total_weight() - 7.5).abs() < 1e-12);
        assert_eq!(g.max_weight(), 5.0);
    }

    #[test]
    fn duplicate_edges_keep_max_weight() {
        let g = WeightedGraph::from_triples(3, vec![(0, 1, 1.0), (1, 0, 4.0)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.weight_of(0, 1), Some(4.0));
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(WeightedGraph::from_triples(3, vec![(0, 0, 1.0)]).is_err());
        assert!(WeightedGraph::from_triples(3, vec![(0, 9, 1.0)]).is_err());
        assert!(WeightedGraph::from_triples(3, vec![(0, 1, -2.0)]).is_err());
        assert!(WeightedGraph::from_triples(3, vec![(0, 1, f64::NAN)]).is_err());
    }

    #[test]
    fn to_unweighted_preserves_structure() {
        let g = WeightedGraph::from_triples(3, vec![(0, 1, 2.0), (1, 2, 3.0)]).unwrap();
        let u = g.to_unweighted();
        assert_eq!(u.m(), 2);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(1, 2));
    }

    #[test]
    fn weight_classes_partition_edges() {
        let g = WeightedGraph::from_triples(
            6,
            vec![
                (0, 1, 1.0),
                (1, 2, 1.5),
                (2, 3, 4.0),
                (3, 4, 8.0),
                (4, 5, 100.0),
            ],
        )
        .unwrap();
        let classes = g.weight_classes(2.0);
        let total: usize = classes.iter().map(|(_, g)| g.m()).sum();
        assert_eq!(total, g.m(), "every edge lands in exactly one class");
        // class lower bounds increase strictly
        for w in classes.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn weight_classes_of_empty_graph() {
        let g = WeightedGraph::empty(5);
        assert!(g.weight_classes(2.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "base must exceed")]
    fn weight_classes_rejects_bad_base() {
        let g = WeightedGraph::from_triples(2, vec![(0, 1, 1.0)]).unwrap();
        let _ = g.weight_classes(1.0);
    }
}
