//! Bipartite graphs with explicit left/right sides.
//!
//! The hard distributions of the paper (`D_Matching`, `D_VC`) are bipartite
//! graphs `G(L, R, E)` with `|L| = |R| = n`, and Hopcroft–Karp operates on
//! bipartite inputs. A [`BipartiteGraph`] keeps the two sides separate and can
//! be converted to a plain [`Graph`] (right vertices are offset by `left_n`)
//! whenever a side-agnostic algorithm is needed.

use crate::edge::VertexId;
use crate::error::GraphError;
use crate::graph::Graph;
use serde::{Deserialize, Serialize};
// Membership-only dedup probes below; iteration order never observed.
use std::collections::HashSet; // xtask: allow(hash-collections)

/// A bipartite graph with `left_n` left vertices and `right_n` right
/// vertices. Edges are pairs `(l, r)` with `l < left_n` and `r < right_n`;
/// left and right ids are independent namespaces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BipartiteGraph {
    left_n: usize,
    right_n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph.
    pub fn empty(left_n: usize, right_n: usize) -> Self {
        BipartiteGraph {
            left_n,
            right_n,
            edges: Vec::new(),
        }
    }

    /// Builds a bipartite graph from `(left, right)` pairs, validating ranges
    /// and deduplicating.
    pub fn from_pairs<I>(left_n: usize, right_n: usize, pairs: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut seen = HashSet::new(); // xtask: allow(hash-collections)
        let mut edges = Vec::new();
        for (l, r) in pairs {
            if l as usize >= left_n {
                return Err(GraphError::LeftVertexOutOfRange { vertex: l, left_n });
            }
            if r as usize >= right_n {
                return Err(GraphError::RightVertexOutOfRange { vertex: r, right_n });
            }
            if seen.insert((l, r)) {
                edges.push((l, r));
            }
        }
        Ok(BipartiteGraph {
            left_n,
            right_n,
            edges,
        })
    }

    /// Builds without validation; used by trusted generators.
    pub(crate) fn from_pairs_unchecked(
        left_n: usize,
        right_n: usize,
        edges: Vec<(VertexId, VertexId)>,
    ) -> Self {
        #[cfg(debug_assertions)]
        {
            let mut seen = HashSet::with_capacity(edges.len()); // xtask: allow(hash-collections)
            for &(l, r) in &edges {
                debug_assert!((l as usize) < left_n && (r as usize) < right_n);
                debug_assert!(seen.insert((l, r)), "duplicate bipartite edge ({l}, {r})");
            }
        }
        BipartiteGraph {
            left_n,
            right_n,
            edges,
        }
    }

    /// Number of left vertices.
    #[inline]
    pub fn left_n(&self) -> usize {
        self.left_n
    }

    /// Number of right vertices.
    #[inline]
    pub fn right_n(&self) -> usize {
        self.right_n
    }

    /// Total number of vertices (`left_n + right_n`).
    #[inline]
    pub fn n(&self) -> usize {
        self.left_n + self.right_n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The `(left, right)` edge pairs.
    #[inline]
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Flat CSR of the left-side adjacency (`left vertex -> sorted right
    /// neighbours`), one contiguous allocation instead of `Vec<Vec<_>>`.
    ///
    /// This is what Hopcroft–Karp and König traverse; the per-vertex
    /// neighbour order is identical to [`Self::left_adjacency`].
    pub fn left_csr(&self) -> LeftCsr {
        let mut deg = vec![0u32; self.left_n];
        for &(l, _) in &self.edges {
            deg[l as usize] += 1;
        }
        let mut offsets = vec![0u32; self.left_n + 1];
        for l in 0..self.left_n {
            offsets[l + 1] = offsets[l] + deg[l];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; self.edges.len()];
        for &(l, r) in &self.edges {
            targets[cursor[l as usize] as usize] = r;
            cursor[l as usize] += 1;
        }
        for l in 0..self.left_n {
            let (lo, hi) = (offsets[l] as usize, offsets[l + 1] as usize);
            targets[lo..hi].sort_unstable();
        }
        LeftCsr { offsets, targets }
    }

    /// Left-side adjacency lists (`left vertex -> sorted right neighbours`).
    pub fn left_adjacency(&self) -> Vec<Vec<VertexId>> {
        let mut adj = vec![Vec::new(); self.left_n];
        for &(l, r) in &self.edges {
            adj[l as usize].push(r);
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        adj
    }

    /// Right-side adjacency lists (`right vertex -> sorted left neighbours`).
    pub fn right_adjacency(&self) -> Vec<Vec<VertexId>> {
        let mut adj = vec![Vec::new(); self.right_n];
        for &(l, r) in &self.edges {
            adj[r as usize].push(l);
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        adj
    }

    /// Degrees of the left vertices.
    pub fn left_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.left_n];
        for &(l, _) in &self.edges {
            deg[l as usize] += 1;
        }
        deg
    }

    /// Degrees of the right vertices.
    pub fn right_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.right_n];
        for &(_, r) in &self.edges {
            deg[r as usize] += 1;
        }
        deg
    }

    /// Converts to a side-agnostic [`Graph`]: left vertices keep their ids,
    /// right vertex `r` becomes `left_n + r`.
    pub fn to_graph(&self) -> Graph {
        let offset = self.left_n as VertexId;
        let edges = self
            .edges
            .iter()
            .map(|&(l, r)| crate::edge::Edge::new(l, offset + r))
            .collect();
        Graph::from_edges_unchecked(self.n(), edges)
    }

    /// Interprets a side-agnostic vertex id from [`Self::to_graph`] back as a
    /// `(side, local id)` pair, where side 0 = left, side 1 = right.
    pub fn split_vertex(&self, v: VertexId) -> (u8, VertexId) {
        if (v as usize) < self.left_n {
            (0, v)
        } else {
            (1, v - self.left_n as VertexId)
        }
    }

    /// Returns the subgraph containing only the given edges (by index).
    pub fn edge_subgraph(&self, indices: &[usize]) -> BipartiteGraph {
        let edges = indices.iter().map(|&i| self.edges[i]).collect();
        BipartiteGraph {
            left_n: self.left_n,
            right_n: self.right_n,
            edges,
        }
    }
}

/// Compressed left-side adjacency of a [`BipartiteGraph`]: neighbours of left
/// vertex `l` are `targets[offsets[l] .. offsets[l + 1]]`, sorted.
#[derive(Debug, Clone)]
pub struct LeftCsr {
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
}

impl LeftCsr {
    /// Number of left vertices.
    #[inline]
    pub fn left_n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Sorted right-side neighbours of left vertex `l`.
    #[inline]
    pub fn neighbors(&self, l: usize) -> &[VertexId] {
        &self.targets[self.offsets[l] as usize..self.offsets[l + 1] as usize]
    }

    /// Degree of left vertex `l`.
    #[inline]
    pub fn degree(&self, l: usize) -> usize {
        (self.offsets[l + 1] - self.offsets[l]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BipartiteGraph {
        // L = {0,1,2}, R = {0,1}; edges 0-0, 0-1, 1-1, 2-0
        BipartiteGraph::from_pairs(3, 2, vec![(0, 0), (0, 1), (1, 1), (2, 0)]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let g = small();
        assert_eq!(g.left_n(), 3);
        assert_eq!(g.right_n(), 2);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
    }

    #[test]
    fn dedup_and_validation() {
        let g = BipartiteGraph::from_pairs(2, 2, vec![(0, 0), (0, 0), (1, 1)]).unwrap();
        assert_eq!(g.m(), 2);
        assert!(matches!(
            BipartiteGraph::from_pairs(2, 2, vec![(2, 0)]),
            Err(GraphError::LeftVertexOutOfRange {
                vertex: 2,
                left_n: 2
            })
        ));
        assert!(matches!(
            BipartiteGraph::from_pairs(2, 2, vec![(0, 5)]),
            Err(GraphError::RightVertexOutOfRange {
                vertex: 5,
                right_n: 2
            })
        ));
    }

    #[test]
    fn adjacency_and_degrees() {
        let g = small();
        assert_eq!(g.left_adjacency(), vec![vec![0, 1], vec![1], vec![0]]);
        assert_eq!(g.right_adjacency(), vec![vec![0, 2], vec![0, 1]]);
        assert_eq!(g.left_degrees(), vec![2, 1, 1]);
        assert_eq!(g.right_degrees(), vec![2, 2]);
    }

    #[test]
    fn left_csr_matches_left_adjacency() {
        let g = small();
        let csr = g.left_csr();
        let adj = g.left_adjacency();
        assert_eq!(csr.left_n(), 3);
        for (l, expected) in adj.iter().enumerate() {
            assert_eq!(csr.neighbors(l), expected.as_slice(), "left vertex {l}");
            assert_eq!(csr.degree(l), expected.len());
        }
    }

    #[test]
    fn to_graph_offsets_right_side() {
        let g = small();
        let plain = g.to_graph();
        assert_eq!(plain.n(), 5);
        assert_eq!(plain.m(), 4);
        assert!(plain.has_edge(0, 3)); // (0, R0) -> (0, 3)
        assert!(plain.has_edge(2, 3)); // (2, R0) -> (2, 3)
        assert!(plain.has_edge(1, 4)); // (1, R1) -> (1, 4)
        assert_eq!(g.split_vertex(3), (1, 0));
        assert_eq!(g.split_vertex(2), (0, 2));
    }

    #[test]
    fn edge_subgraph_selects_by_index() {
        let g = small();
        let sub = g.edge_subgraph(&[0, 3]);
        assert_eq!(sub.m(), 2);
        assert_eq!(sub.edges(), &[(0, 0), (2, 0)]);
        assert_eq!(sub.left_n(), 3);
    }
}
