//! Degree statistics and summary measures used by the experiments.

use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Summary statistics of a graph, reported alongside every experiment so the
/// tables in `EXPERIMENTS.md` are self-describing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree (`2m / n`), 0 for an empty vertex set.
    pub avg_degree: f64,
    /// Number of isolated vertices.
    pub isolated: usize,
}

impl GraphStats {
    /// Computes the statistics of `g`.
    pub fn of(g: &Graph) -> Self {
        let degrees = g.degrees();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let isolated = degrees.iter().filter(|&&d| d == 0).count();
        let avg_degree = if g.n() == 0 {
            0.0
        } else {
            2.0 * g.m() as f64 / g.n() as f64
        };
        GraphStats {
            n: g.n(),
            m: g.m(),
            max_degree,
            avg_degree,
            isolated,
        }
    }
}

/// Returns the degree histogram of `g`: `hist[d]` = number of vertices with
/// degree exactly `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let degrees = g.degrees();
    let max = degrees.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for d in degrees {
        hist[d] += 1;
    }
    hist
}

/// Number of vertices with degree exactly `d`.
pub fn count_degree(g: &Graph, d: usize) -> usize {
    g.degrees().into_iter().filter(|&x| x == d).count()
}

/// Number of connected components (isolated vertices each count as one).
pub fn connected_components(g: &Graph) -> usize {
    let adj = g.adjacency();
    let mut visited = vec![false; g.n()];
    let mut components = 0;
    let mut stack = Vec::new();
    for start in 0..g.n() {
        if visited[start] {
            continue;
        }
        components += 1;
        visited[start] = true;
        stack.push(start as u32);
        while let Some(v) = stack.pop() {
            for &w in adj.neighbors(v) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    stack.push(w);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_path() {
        let g = Graph::from_pairs(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.n, 4);
        assert_eq!(s.m, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated, 0);
        assert!((s.avg_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty() {
        let s = GraphStats::of(&Graph::empty(0));
        assert_eq!(s.n, 0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn histogram_counts() {
        let g = Graph::from_pairs(5, vec![(0, 1), (0, 2), (0, 3)]).unwrap();
        let hist = degree_histogram(&g);
        assert_eq!(hist, vec![1, 3, 0, 1]); // one isolated, three leaves, one hub of degree 3
        assert_eq!(count_degree(&g, 1), 3);
        assert_eq!(count_degree(&g, 3), 1);
    }

    #[test]
    fn components_counted_correctly() {
        let g = Graph::from_pairs(6, vec![(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(connected_components(&g), 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(connected_components(&Graph::empty(4)), 4);
    }
}
