//! Random k-partitioning of edge sets — the central model of the paper.
//!
//! A *random k-partitioning* of `E` assigns every edge independently and
//! uniformly at random to one of `k` machines (paper, Section 1,
//! "Randomized Composable Coresets"). This module implements that
//! partitioning for plain, bipartite and weighted graphs, plus two
//! *adversarial* partitionings used as negative controls:
//!
//! * [`PartitionStrategy::Adversarial`] — a deterministic partition designed
//!   to be hard (contiguous chunks of a sorted edge list), modelling the
//!   adversarial setting of [10] in which Õ(n)-size summaries cannot beat
//!   Θ(n^{1/3})-approximation.
//! * [`PartitionStrategy::RoundRobin`] — a deterministic but "spread out"
//!   partition, useful for sanity comparisons.

use crate::bipartite::BipartiteGraph;
use crate::edge::WeightedEdge;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::weighted::WeightedGraph;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the edge set is split across the `k` machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// Each edge goes to a uniformly random machine, independently.
    /// This is the paper's model.
    Random,
    /// Edges are sorted and split into `k` contiguous chunks. Because edges
    /// incident on the same vertex are adjacent in the sorted order, a single
    /// machine sees whole neighbourhoods — the structured, adversarial case
    /// in which composable coresets provably fail.
    Adversarial,
    /// Edge `i` goes to machine `i mod k`.
    RoundRobin,
}

/// The result of partitioning a graph's edges across `k` machines: one
/// subgraph per machine, all sharing the original vertex set.
#[derive(Debug, Clone)]
pub struct EdgePartition {
    pieces: Vec<Graph>,
    strategy: PartitionStrategy,
}

impl EdgePartition {
    /// Partitions `g` into `k` pieces using `strategy`.
    ///
    /// For [`PartitionStrategy::Random`] the supplied RNG drives the
    /// machine choice of every edge; the other strategies are deterministic
    /// and ignore the RNG.
    pub fn new<R: Rng + ?Sized>(
        g: &Graph,
        k: usize,
        strategy: PartitionStrategy,
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        if k == 0 {
            return Err(GraphError::InvalidMachineCount { k });
        }
        let assignment = assign_indices(g.m(), k, strategy, |i| canonical_sort_key(g, i), rng);
        let mut buckets: Vec<Vec<crate::edge::Edge>> = vec![Vec::new(); k];
        for (idx, &machine) in assignment.iter().enumerate() {
            buckets[machine].push(g.edges()[idx]);
        }
        let pieces = buckets
            .into_iter()
            .map(|edges| Graph::from_edges_unchecked(g.n(), edges))
            .collect();
        Ok(EdgePartition { pieces, strategy })
    }

    /// Convenience constructor for the paper's model (random partitioning).
    pub fn random<R: Rng + ?Sized>(g: &Graph, k: usize, rng: &mut R) -> Result<Self, GraphError> {
        Self::new(g, k, PartitionStrategy::Random, rng)
    }

    /// The per-machine subgraphs.
    #[inline]
    pub fn pieces(&self) -> &[Graph] {
        &self.pieces
    }

    /// Number of machines.
    #[inline]
    pub fn k(&self) -> usize {
        self.pieces.len()
    }

    /// The strategy that produced this partition.
    #[inline]
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Total number of edges across all pieces (equals `m` of the original
    /// graph — partitioning never duplicates or drops edges).
    pub fn total_edges(&self) -> usize {
        self.pieces.iter().map(Graph::m).sum()
    }

    /// Reassembles the original edge set by unioning all pieces.
    pub fn reunite(&self) -> Graph {
        let refs: Vec<&Graph> = self.pieces.iter().collect();
        Graph::union(&refs)
    }
}

/// Partitions a bipartite graph's edges across `k` machines, returning one
/// bipartite subgraph per machine (same left/right sizes).
pub fn partition_bipartite<R: Rng + ?Sized>(
    g: &BipartiteGraph,
    k: usize,
    strategy: PartitionStrategy,
    rng: &mut R,
) -> Result<Vec<BipartiteGraph>, GraphError> {
    if k == 0 {
        return Err(GraphError::InvalidMachineCount { k });
    }
    let assignment = assign_indices(
        g.m(),
        k,
        strategy,
        |i| {
            let (l, r) = g.edges()[i];
            (l as u64) << 32 | r as u64
        },
        rng,
    );
    let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); k];
    for (idx, &machine) in assignment.iter().enumerate() {
        buckets[machine].push(g.edges()[idx]);
    }
    Ok(buckets
        .into_iter()
        .map(|edges| BipartiteGraph::from_pairs_unchecked(g.left_n(), g.right_n(), edges))
        .collect())
}

/// Partitions a weighted graph's edges across `k` machines.
pub fn partition_weighted<R: Rng + ?Sized>(
    g: &WeightedGraph,
    k: usize,
    strategy: PartitionStrategy,
    rng: &mut R,
) -> Result<Vec<WeightedGraph>, GraphError> {
    if k == 0 {
        return Err(GraphError::InvalidMachineCount { k });
    }
    let assignment = assign_indices(
        g.m(),
        k,
        strategy,
        |i| {
            let e = g.edges()[i].edge;
            (e.u as u64) << 32 | e.v as u64
        },
        rng,
    );
    let mut buckets: Vec<Vec<WeightedEdge>> = vec![Vec::new(); k];
    for (idx, &machine) in assignment.iter().enumerate() {
        buckets[machine].push(g.edges()[idx]);
    }
    Ok(buckets
        .into_iter()
        .map(|edges| {
            WeightedGraph::from_triples(g.n(), edges.iter().map(|e| (e.edge.u, e.edge.v, e.weight)))
                .expect("edges already validated by the source graph")
        })
        .collect())
}

fn canonical_sort_key(g: &Graph, i: usize) -> u64 {
    let e = g.edges()[i];
    (e.u as u64) << 32 | e.v as u64
}

/// Computes, for each of `m` edge indices, the machine in `0..k` it is
/// assigned to under the given strategy. `sort_key` is only consulted by the
/// adversarial strategy.
fn assign_indices<R: Rng + ?Sized, K: Fn(usize) -> u64>(
    m: usize,
    k: usize,
    strategy: PartitionStrategy,
    sort_key: K,
    rng: &mut R,
) -> Vec<usize> {
    match strategy {
        PartitionStrategy::Random => (0..m).map(|_| rng.gen_range(0..k)).collect(),
        PartitionStrategy::RoundRobin => (0..m).map(|i| i % k).collect(),
        PartitionStrategy::Adversarial => {
            // Sort edge indices by (u, v) and cut into k contiguous chunks so
            // that each machine receives whole neighbourhoods.
            let mut order: Vec<usize> = (0..m).collect();
            order.sort_by_key(|&i| sort_key(i));
            let mut assignment = vec![0usize; m];
            if m == 0 {
                return assignment;
            }
            let chunk = m.div_ceil(k);
            for (pos, &idx) in order.iter().enumerate() {
                assignment[idx] = (pos / chunk).min(k - 1);
            }
            assignment
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er::gnp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn random_partition_is_a_partition() {
        let mut r = rng(1);
        let g = gnp(200, 0.05, &mut r);
        let part = EdgePartition::random(&g, 7, &mut r).unwrap();
        assert_eq!(part.k(), 7);
        assert_eq!(part.total_edges(), g.m());
        let reunited = part.reunite();
        assert_eq!(reunited.m(), g.m());
        // Every original edge appears in exactly one piece.
        for e in g.edges() {
            let count = part
                .pieces()
                .iter()
                .filter(|p| p.edges().contains(e))
                .count();
            assert_eq!(count, 1, "edge {e:?} should be in exactly one piece");
        }
    }

    #[test]
    fn zero_machines_rejected() {
        let mut r = rng(2);
        let g = gnp(10, 0.3, &mut r);
        assert!(matches!(
            EdgePartition::random(&g, 0, &mut r),
            Err(GraphError::InvalidMachineCount { k: 0 })
        ));
    }

    #[test]
    fn k_greater_than_m_leaves_empty_pieces() {
        let mut r = rng(3);
        let g = Graph::from_pairs(4, vec![(0, 1), (2, 3)]).unwrap();
        let part = EdgePartition::random(&g, 10, &mut r).unwrap();
        assert_eq!(part.k(), 10);
        assert_eq!(part.total_edges(), 2);
        let nonempty = part.pieces().iter().filter(|p| !p.is_empty()).count();
        assert!(nonempty <= 2);
    }

    #[test]
    fn random_partition_is_roughly_balanced() {
        let mut r = rng(4);
        let g = gnp(300, 0.1, &mut r);
        let k = 8;
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let expected = g.m() as f64 / k as f64;
        for p in part.pieces() {
            let ratio = p.m() as f64 / expected;
            assert!(
                ratio > 0.6 && ratio < 1.4,
                "piece size {} far from expected {expected}",
                p.m()
            );
        }
    }

    #[test]
    fn round_robin_is_deterministic_and_balanced() {
        let mut r = rng(5);
        let g = gnp(100, 0.1, &mut r);
        let p1 = EdgePartition::new(&g, 4, PartitionStrategy::RoundRobin, &mut rng(99)).unwrap();
        let p2 = EdgePartition::new(&g, 4, PartitionStrategy::RoundRobin, &mut rng(7)).unwrap();
        for (a, b) in p1.pieces().iter().zip(p2.pieces()) {
            assert_eq!(a.edges(), b.edges());
        }
        let sizes: Vec<usize> = p1.pieces().iter().map(Graph::m).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn adversarial_partition_groups_neighbourhoods() {
        // Star centred at 0: adversarial partitioning puts contiguous chunks
        // of 0's neighbourhood on each machine.
        let n = 101;
        let g = Graph::from_pairs(n, (1..n as u32).map(|v| (0, v))).unwrap();
        let part = EdgePartition::new(&g, 4, PartitionStrategy::Adversarial, &mut rng(0)).unwrap();
        assert_eq!(part.total_edges(), 100);
        // Chunks are contiguous in sorted order: piece 0 gets neighbours 1..=25, etc.
        let piece0 = &part.pieces()[0];
        assert_eq!(piece0.m(), 25);
        assert!(piece0.has_edge(0, 1));
        assert!(piece0.has_edge(0, 25));
        assert!(!piece0.has_edge(0, 26));
    }

    #[test]
    fn bipartite_partition_preserves_edges() {
        let mut r = rng(6);
        let g = crate::gen::bipartite::random_bipartite(50, 50, 0.1, &mut r);
        let pieces = partition_bipartite(&g, 5, PartitionStrategy::Random, &mut r).unwrap();
        assert_eq!(pieces.len(), 5);
        let total: usize = pieces.iter().map(BipartiteGraph::m).sum();
        assert_eq!(total, g.m());
        for p in &pieces {
            assert_eq!(p.left_n(), 50);
            assert_eq!(p.right_n(), 50);
        }
    }

    #[test]
    fn weighted_partition_preserves_total_weight() {
        let mut r = rng(7);
        let g = WeightedGraph::from_triples(
            6,
            vec![
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 3.0),
                (3, 4, 4.0),
                (4, 5, 5.0),
            ],
        )
        .unwrap();
        let pieces = partition_weighted(&g, 3, PartitionStrategy::Random, &mut r).unwrap();
        let total: f64 = pieces.iter().map(WeightedGraph::total_weight).sum();
        assert!((total - g.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_partitions_cleanly() {
        let g = Graph::empty(10);
        let part = EdgePartition::random(&g, 3, &mut rng(8)).unwrap();
        assert_eq!(part.total_edges(), 0);
        assert!(part.pieces().iter().all(Graph::is_empty));
    }
}
