//! Random k-partitioning of edge sets — the central model of the paper.
//!
//! A *random k-partitioning* of `E` assigns every edge independently and
//! uniformly at random to one of `k` machines (paper, Section 1,
//! "Randomized Composable Coresets"). This module implements that
//! partitioning for plain, bipartite and weighted graphs, plus two
//! *adversarial* partitionings used as negative controls:
//!
//! * [`PartitionStrategy::Adversarial`] — a deterministic partition designed
//!   to be hard (contiguous chunks of a sorted edge list), modelling the
//!   adversarial setting of \[10\] in which Õ(n)-size summaries cannot beat
//!   Θ(n^{1/3})-approximation.
//! * [`PartitionStrategy::RoundRobin`] — a deterministic but "spread out"
//!   partition, useful for sanity comparisons.
//!
//! Two partition containers are provided:
//!
//! * [`PartitionedGraph`] — the **edge arena**: one machine-sorted copy of the
//!   edge permutation plus `k + 1` offsets (a CSR over machines). Per-machine
//!   access returns zero-copy [`GraphView`]s; this is what all protocol
//!   runners use, so a full run copies the edge set exactly once.
//! * [`EdgePartition`] — owned per-machine [`Graph`]s, materialized from a
//!   [`PartitionedGraph`]. Retained for callers that need `'static` pieces;
//!   every materialization is charged to
//!   [`crate::metrics::piece_edges_materialized`].
//!
//! For a fixed RNG the two containers produce byte-identical per-machine edge
//! sequences (the arena fill is a stable counting sort by machine, exactly
//! the order the bucketing construction used).

use crate::bipartite::BipartiteGraph;
use crate::edge::{Edge, WeightedEdge};
use crate::error::GraphError;
use crate::graph::Graph;
use crate::view::GraphView;
use crate::weighted::WeightedGraph;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the edge set is split across the `k` machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// Each edge goes to a uniformly random machine, independently.
    /// This is the paper's model.
    Random,
    /// Edges are sorted and split into `k` contiguous chunks. Because edges
    /// incident on the same vertex are adjacent in the sorted order, a single
    /// machine sees whole neighbourhoods — the structured, adversarial case
    /// in which composable coresets provably fail.
    Adversarial,
    /// Edge `i` goes to machine `i mod k`.
    RoundRobin,
}

/// The edge arena of a `k`-partitioned graph: **one** machine-sorted copy of
/// the edge set plus `k + 1` offsets, i.e. a CSR over machines.
///
/// `piece(i)` is the slice `edges[offsets[i] .. offsets[i + 1]]`, returned as
/// a zero-copy [`GraphView`]; within a machine the edges keep their original
/// relative order (the fill is a stable counting sort by machine), so the
/// per-machine sequences are byte-identical to what bucketing into owned
/// graphs produced.
///
/// This is the storage type of the paper's model itself — the partitioned
/// edge set is the unit of storage, not `k` independent graphs — and the
/// foundation every protocol runner builds on.
#[derive(Debug, Clone)]
pub struct PartitionedGraph {
    n: usize,
    strategy: PartitionStrategy,
    /// Machine-major edge permutation (machine 0's edges first, each
    /// machine's run in original input order).
    edges: Vec<Edge>,
    /// `offsets.len() == k + 1`; machine `i` owns `edges[offsets[i]..offsets[i+1]]`.
    offsets: Vec<usize>,
}

impl PartitionedGraph {
    /// Partitions `g` into `k` machine slices using `strategy`, copying the
    /// edge set exactly once (into the machine-sorted arena).
    ///
    /// For [`PartitionStrategy::Random`] the supplied RNG drives the machine
    /// choice of every edge (consuming it exactly as [`EdgePartition::new`]
    /// always has); the other strategies are deterministic and ignore the
    /// RNG.
    pub fn new<R: Rng + ?Sized>(
        g: &Graph,
        k: usize,
        strategy: PartitionStrategy,
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        if k == 0 {
            return Err(GraphError::InvalidMachineCount { k });
        }
        let all = g.edges();
        let assignment = assign_indices(all.len(), k, strategy, |i| canonical_sort_key(g, i), rng);

        let mut counts = vec![0usize; k];
        for &machine in &assignment {
            counts[machine] += 1;
        }
        let mut offsets = vec![0usize; k + 1];
        for i in 0..k {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        // Stable counting-sort fill: scanning edges in input order preserves
        // each machine's relative order. The placeholder is overwritten at
        // every index because the cursors sweep their machine's range exactly.
        let mut cursor = offsets.clone();
        let mut edges = vec![Edge { u: 0, v: 1 }; all.len()];
        for (idx, &machine) in assignment.iter().enumerate() {
            edges[cursor[machine]] = all[idx];
            cursor[machine] += 1;
        }
        Ok(PartitionedGraph {
            n: g.n(),
            strategy,
            edges,
            offsets,
        })
    }

    /// Convenience constructor for the paper's model (random partitioning).
    pub fn random<R: Rng + ?Sized>(g: &Graph, k: usize, rng: &mut R) -> Result<Self, GraphError> {
        Self::new(g, k, PartitionStrategy::Random, rng)
    }

    /// Partitions `g` under the **churn-stable** per-edge hash placement of
    /// [`crate::churn::edge_machine`]: each edge's machine is a salted hash
    /// of `(seed, edge)` — uniform and independent per edge, the paper's
    /// model — but reproducible from the edge's identity alone, so churn on
    /// other edges never moves it. This is the placement the churn overlay
    /// ([`crate::churn::ChurnPartition`]) and its from-scratch baselines
    /// share; the strategy reports [`PartitionStrategy::Random`] because the
    /// per-edge distribution is the same random model.
    pub fn by_edge_hash(g: &Graph, k: usize, seed: u64) -> Result<Self, GraphError> {
        if k == 0 {
            return Err(GraphError::InvalidMachineCount { k });
        }
        let (edges, offsets) = crate::churn::hash_arena(g, k, seed);
        Ok(PartitionedGraph {
            n: g.n(),
            strategy: PartitionStrategy::Random,
            edges,
            offsets,
        })
    }

    /// Number of vertices (shared by every piece).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total number of edges in the arena (equals `m` of the original graph).
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Number of machines.
    #[inline]
    pub fn k(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The strategy that produced this partition.
    #[inline]
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The whole machine-sorted edge arena.
    #[inline]
    pub fn arena(&self) -> &[Edge] {
        &self.edges
    }

    /// Machine `i`'s subgraph as a zero-copy view into the arena.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    #[inline]
    pub fn piece(&self, i: usize) -> GraphView<'_> {
        // The arena slice inherits the graph's invariants; skip revalidation.
        GraphView::new_unchecked(self.n, &self.edges[self.offsets[i]..self.offsets[i + 1]])
    }

    /// Zero-copy views of every machine's subgraph, in machine order.
    pub fn views(&self) -> Vec<GraphView<'_>> {
        (0..self.k()).map(|i| self.piece(i)).collect()
    }

    /// Number of edges each machine received, in machine order.
    pub fn piece_sizes(&self) -> Vec<usize> {
        self.offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Total number of edges across all pieces (identical to [`Self::m`];
    /// kept for parity with [`EdgePartition::total_edges`]).
    #[inline]
    pub fn total_edges(&self) -> usize {
        self.edges.len()
    }

    /// Reassembles the original edge set from the arena, in machine-major
    /// order (not canonical sorted order — the multiset, not the layout, is
    /// what reuniting restores). Pieces of a partition are disjoint by
    /// construction, so this is a single preallocated copy, no dedup pass.
    pub fn reunite(&self) -> Graph {
        let g = Graph::from_edges_unchecked(self.n, self.edges.clone());
        debug_assert_eq!(g.m(), self.total_edges(), "partition must preserve m");
        g
    }

    /// Materializes owned per-machine [`Graph`]s (the legacy representation).
    ///
    /// Copies every piece out of the arena; the copies are charged to
    /// [`crate::metrics::piece_edges_materialized`].
    pub fn materialize(&self) -> EdgePartition {
        let pieces = (0..self.k()).map(|i| self.piece(i).to_graph()).collect();
        EdgePartition {
            pieces,
            strategy: self.strategy,
        }
    }
}

/// Owned per-machine subgraphs of a partitioned edge set, all sharing the
/// original vertex set.
///
/// Protocol runners operate on [`PartitionedGraph`] views and never build
/// this; it remains for callers that genuinely need owned pieces (e.g. to
/// move them across threads with `'static` lifetimes or mutate them).
#[derive(Debug, Clone)]
pub struct EdgePartition {
    pieces: Vec<Graph>,
    strategy: PartitionStrategy,
}

impl EdgePartition {
    /// Partitions `g` into `k` owned pieces using `strategy`.
    ///
    /// Equivalent to [`PartitionedGraph::new`] followed by
    /// [`PartitionedGraph::materialize`] — same RNG consumption, same
    /// per-machine edge order.
    pub fn new<R: Rng + ?Sized>(
        g: &Graph,
        k: usize,
        strategy: PartitionStrategy,
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        Ok(PartitionedGraph::new(g, k, strategy, rng)?.materialize())
    }

    /// Convenience constructor for the paper's model (random partitioning).
    pub fn random<R: Rng + ?Sized>(g: &Graph, k: usize, rng: &mut R) -> Result<Self, GraphError> {
        Self::new(g, k, PartitionStrategy::Random, rng)
    }

    /// The per-machine subgraphs.
    #[inline]
    pub fn pieces(&self) -> &[Graph] {
        &self.pieces
    }

    /// Number of machines.
    #[inline]
    pub fn k(&self) -> usize {
        self.pieces.len()
    }

    /// The strategy that produced this partition.
    #[inline]
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Total number of edges across all pieces (equals `m` of the original
    /// graph — partitioning never duplicates or drops edges).
    pub fn total_edges(&self) -> usize {
        self.pieces.iter().map(Graph::m).sum()
    }

    /// Reassembles the original edge set by concatenating all pieces.
    ///
    /// Pieces of a partition are edge-disjoint by construction, so the result
    /// is built with a single preallocated copy; the debug invariant checks
    /// that no edge was duplicated or dropped.
    pub fn reunite(&self) -> Graph {
        let n = self.pieces.first().map_or(0, Graph::n);
        let total = self.total_edges();
        let mut edges = Vec::with_capacity(total);
        for p in &self.pieces {
            edges.extend_from_slice(p.edges());
        }
        let g = Graph::from_edges_unchecked(n, edges);
        debug_assert_eq!(g.m(), total, "partition must preserve m");
        g
    }
}

/// Partitions a bipartite graph's edges across `k` machines, returning one
/// bipartite subgraph per machine (same left/right sizes).
pub fn partition_bipartite<R: Rng + ?Sized>(
    g: &BipartiteGraph,
    k: usize,
    strategy: PartitionStrategy,
    rng: &mut R,
) -> Result<Vec<BipartiteGraph>, GraphError> {
    if k == 0 {
        return Err(GraphError::InvalidMachineCount { k });
    }
    let assignment = assign_indices(
        g.m(),
        k,
        strategy,
        |i| {
            let (l, r) = g.edges()[i];
            (l as u64) << 32 | r as u64
        },
        rng,
    );
    let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); k];
    for (idx, &machine) in assignment.iter().enumerate() {
        buckets[machine].push(g.edges()[idx]);
    }
    Ok(buckets
        .into_iter()
        .map(|edges| BipartiteGraph::from_pairs_unchecked(g.left_n(), g.right_n(), edges))
        .collect())
}

/// Partitions a weighted graph's edges across `k` machines.
pub fn partition_weighted<R: Rng + ?Sized>(
    g: &WeightedGraph,
    k: usize,
    strategy: PartitionStrategy,
    rng: &mut R,
) -> Result<Vec<WeightedGraph>, GraphError> {
    if k == 0 {
        return Err(GraphError::InvalidMachineCount { k });
    }
    let assignment = assign_indices(
        g.m(),
        k,
        strategy,
        |i| {
            let e = g.edges()[i].edge;
            (e.u as u64) << 32 | e.v as u64
        },
        rng,
    );
    let mut buckets: Vec<Vec<WeightedEdge>> = vec![Vec::new(); k];
    for (idx, &machine) in assignment.iter().enumerate() {
        buckets[machine].push(g.edges()[idx]);
    }
    buckets
        .into_iter()
        .map(|edges| {
            WeightedGraph::from_triples(g.n(), edges.iter().map(|e| (e.edge.u, e.edge.v, e.weight)))
        })
        .collect()
}

fn canonical_sort_key(g: &Graph, i: usize) -> u64 {
    let e = g.edges()[i];
    (e.u as u64) << 32 | e.v as u64
}

/// Computes, for each of `m` edge indices, the machine in `0..k` it is
/// assigned to under the given strategy. `sort_key` is only consulted by the
/// adversarial strategy.
fn assign_indices<R: Rng + ?Sized, K: Fn(usize) -> u64>(
    m: usize,
    k: usize,
    strategy: PartitionStrategy,
    sort_key: K,
    rng: &mut R,
) -> Vec<usize> {
    match strategy {
        PartitionStrategy::Random => (0..m).map(|_| rng.gen_range(0..k)).collect(),
        PartitionStrategy::RoundRobin => (0..m).map(|i| i % k).collect(),
        PartitionStrategy::Adversarial => {
            // Sort edge indices by (u, v) and cut into k contiguous chunks so
            // that each machine receives whole neighbourhoods.
            let mut order: Vec<usize> = (0..m).collect();
            order.sort_by_key(|&i| sort_key(i));
            let mut assignment = vec![0usize; m];
            if m == 0 {
                return assignment;
            }
            let chunk = m.div_ceil(k);
            for (pos, &idx) in order.iter().enumerate() {
                assignment[idx] = (pos / chunk).min(k - 1);
            }
            assignment
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er::gnp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn random_partition_is_a_partition() {
        let mut r = rng(1);
        let g = gnp(200, 0.05, &mut r);
        let part = EdgePartition::random(&g, 7, &mut r).unwrap();
        assert_eq!(part.k(), 7);
        assert_eq!(part.total_edges(), g.m());
        let reunited = part.reunite();
        assert_eq!(reunited.m(), g.m());
        // Every original edge appears in exactly one piece.
        for e in g.edges() {
            let count = part
                .pieces()
                .iter()
                .filter(|p| p.edges().contains(e))
                .count();
            assert_eq!(count, 1, "edge {e:?} should be in exactly one piece");
        }
    }

    #[test]
    fn zero_machines_rejected() {
        let mut r = rng(2);
        let g = gnp(10, 0.3, &mut r);
        assert!(matches!(
            EdgePartition::random(&g, 0, &mut r),
            Err(GraphError::InvalidMachineCount { k: 0 })
        ));
    }

    #[test]
    fn k_greater_than_m_leaves_empty_pieces() {
        let mut r = rng(3);
        let g = Graph::from_pairs(4, vec![(0, 1), (2, 3)]).unwrap();
        let part = EdgePartition::random(&g, 10, &mut r).unwrap();
        assert_eq!(part.k(), 10);
        assert_eq!(part.total_edges(), 2);
        let nonempty = part.pieces().iter().filter(|p| !p.is_empty()).count();
        assert!(nonempty <= 2);
    }

    #[test]
    fn random_partition_is_roughly_balanced() {
        let mut r = rng(4);
        let g = gnp(300, 0.1, &mut r);
        let k = 8;
        let part = EdgePartition::random(&g, k, &mut r).unwrap();
        let expected = g.m() as f64 / k as f64;
        for p in part.pieces() {
            let ratio = p.m() as f64 / expected;
            assert!(
                ratio > 0.6 && ratio < 1.4,
                "piece size {} far from expected {expected}",
                p.m()
            );
        }
    }

    #[test]
    fn round_robin_is_deterministic_and_balanced() {
        let mut r = rng(5);
        let g = gnp(100, 0.1, &mut r);
        let p1 = EdgePartition::new(&g, 4, PartitionStrategy::RoundRobin, &mut rng(99)).unwrap();
        let p2 = EdgePartition::new(&g, 4, PartitionStrategy::RoundRobin, &mut rng(7)).unwrap();
        for (a, b) in p1.pieces().iter().zip(p2.pieces()) {
            assert_eq!(a.edges(), b.edges());
        }
        let sizes: Vec<usize> = p1.pieces().iter().map(Graph::m).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn adversarial_partition_groups_neighbourhoods() {
        // Star centred at 0: adversarial partitioning puts contiguous chunks
        // of 0's neighbourhood on each machine.
        let n = 101;
        let g = Graph::from_pairs(n, (1..n as u32).map(|v| (0, v))).unwrap();
        let part = EdgePartition::new(&g, 4, PartitionStrategy::Adversarial, &mut rng(0)).unwrap();
        assert_eq!(part.total_edges(), 100);
        // Chunks are contiguous in sorted order: piece 0 gets neighbours 1..=25, etc.
        let piece0 = &part.pieces()[0];
        assert_eq!(piece0.m(), 25);
        assert!(piece0.has_edge(0, 1));
        assert!(piece0.has_edge(0, 25));
        assert!(!piece0.has_edge(0, 26));
    }

    #[test]
    fn bipartite_partition_preserves_edges() {
        let mut r = rng(6);
        let g = crate::gen::bipartite::random_bipartite(50, 50, 0.1, &mut r);
        let pieces = partition_bipartite(&g, 5, PartitionStrategy::Random, &mut r).unwrap();
        assert_eq!(pieces.len(), 5);
        let total: usize = pieces.iter().map(BipartiteGraph::m).sum();
        assert_eq!(total, g.m());
        for p in &pieces {
            assert_eq!(p.left_n(), 50);
            assert_eq!(p.right_n(), 50);
        }
    }

    #[test]
    fn weighted_partition_preserves_total_weight() {
        let mut r = rng(7);
        let g = WeightedGraph::from_triples(
            6,
            vec![
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 3.0),
                (3, 4, 4.0),
                (4, 5, 5.0),
            ],
        )
        .unwrap();
        let pieces = partition_weighted(&g, 3, PartitionStrategy::Random, &mut r).unwrap();
        let total: f64 = pieces.iter().map(WeightedGraph::total_weight).sum();
        assert!((total - g.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_partitions_cleanly() {
        let g = Graph::empty(10);
        let part = EdgePartition::random(&g, 3, &mut rng(8)).unwrap();
        assert_eq!(part.total_edges(), 0);
        assert!(part.pieces().iter().all(Graph::is_empty));
    }

    #[test]
    fn arena_views_match_materialized_pieces_exactly() {
        // The zero-copy arena and the owned pieces must expose byte-identical
        // per-machine edge sequences for the same RNG draws.
        let g = gnp(150, 0.06, &mut rng(21));
        for strategy in [
            PartitionStrategy::Random,
            PartitionStrategy::RoundRobin,
            PartitionStrategy::Adversarial,
        ] {
            let arena = PartitionedGraph::new(&g, 5, strategy, &mut rng(77)).unwrap();
            let owned = EdgePartition::new(&g, 5, strategy, &mut rng(77)).unwrap();
            assert_eq!(arena.k(), owned.k());
            assert_eq!(
                arena.piece_sizes(),
                arena.views().iter().map(|v| v.m()).collect::<Vec<_>>()
            );
            for (i, piece) in owned.pieces().iter().enumerate() {
                assert_eq!(
                    arena.piece(i).edges(),
                    piece.edges(),
                    "{strategy:?} piece {i}"
                );
                assert_eq!(arena.piece(i).n(), piece.n());
            }
        }
    }

    #[test]
    fn arena_is_one_permutation_of_the_input() {
        let g = gnp(120, 0.08, &mut rng(22));
        let arena = PartitionedGraph::random(&g, 7, &mut rng(23)).unwrap();
        assert_eq!(arena.m(), g.m());
        assert_eq!(arena.total_edges(), g.m());
        let mut perm: Vec<Edge> = arena.arena().to_vec();
        perm.sort_unstable();
        let mut orig: Vec<Edge> = g.edges().to_vec();
        orig.sort_unstable();
        assert_eq!(perm, orig, "the arena is a permutation of the edge set");
        // Reuniting recovers the exact multiset, preallocated and dedup-free.
        let reunited = arena.reunite();
        assert_eq!(reunited.n(), g.n());
        assert_eq!(reunited.m(), g.m());
    }

    #[test]
    fn arena_zero_machines_rejected() {
        let g = gnp(10, 0.3, &mut rng(24));
        assert!(matches!(
            PartitionedGraph::random(&g, 0, &mut rng(25)),
            Err(GraphError::InvalidMachineCount { k: 0 })
        ));
    }

    #[test]
    fn materialize_records_edge_copies() {
        let g = gnp(80, 0.1, &mut rng(26));
        let arena = PartitionedGraph::random(&g, 4, &mut rng(27)).unwrap();
        // The counter is process-wide and tests run concurrently, so only
        // assert monotone movement attributable to this materialization.
        let mid = crate::metrics::piece_edges_materialized();
        let _ = arena.materialize();
        let after = crate::metrics::piece_edges_materialized();
        assert!(
            after - mid >= g.m() as u64,
            "materializing owned pieces copies every edge"
        );
    }

    #[test]
    fn empty_graph_arena_is_clean() {
        let g = Graph::empty(6);
        let arena = PartitionedGraph::random(&g, 3, &mut rng(28)).unwrap();
        assert_eq!(arena.k(), 3);
        assert_eq!(arena.m(), 0);
        assert!(arena.views().iter().all(|v| v.is_empty()));
        assert_eq!(arena.reunite().m(), 0);
    }
}
