//! Simple undirected graphs stored as edge lists with adjacency views.
//!
//! The paper's model manipulates *edge sets*: the input graph is randomly
//! partitioned edge-by-edge across machines, each machine computes on its own
//! subgraph, and the coordinator unions subgraphs. [`Graph`] therefore stores
//! the edge list as the primary representation and derives adjacency
//! structures on demand. Borrowed access goes through
//! [`crate::view::GraphView`] (zero-copy) and traversal through
//! [`crate::csr::Csr`]; see the `view` module docs for the representation
//! guide.

use crate::edge::{Edge, VertexId};
use crate::error::GraphError;
use serde::{Deserialize, Serialize};
// Membership-only dedup probes below; iteration order never observed.
use std::collections::HashSet; // xtask: allow(hash-collections)

/// A simple undirected graph on vertices `0..n` stored as an edge list.
///
/// Invariants maintained by all constructors:
/// * every endpoint is `< n`,
/// * no self-loops,
/// * no duplicate edges (the edge list describes a *simple* graph).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
}

impl Graph {
    /// Creates an empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
        }
    }

    /// Builds a graph from an iterator of vertex pairs, validating every edge
    /// and silently deduplicating repeated edges.
    ///
    /// The resulting edge list is stored in **canonical sorted order**
    /// (lexicographic by `(u, v)`): deduplication is a sort + `dedup` pass
    /// rather than a hash set, which is faster and allocation-light for large
    /// inputs and makes the stored order deterministic regardless of the
    /// order the pairs arrive in.
    pub fn from_pairs<I>(n: usize, pairs: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let iter = pairs.into_iter();
        let mut edges = Vec::with_capacity(iter.size_hint().0);
        for (a, b) in iter {
            if a == b {
                return Err(GraphError::SelfLoop { vertex: a });
            }
            if a as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: a, n });
            }
            if b as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: b, n });
            }
            edges.push(Edge::new(a, b));
        }
        edges.sort_unstable();
        edges.dedup();
        Ok(Graph { n, edges })
    }

    /// Builds a graph from canonical [`Edge`]s, validating and deduplicating.
    pub fn from_edges<I>(n: usize, iter: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = Edge>,
    {
        Self::from_pairs(n, iter.into_iter().map(|e| (e.u, e.v)))
    }

    /// Builds a graph without validation or deduplication, preserving the
    /// given edge order exactly.
    ///
    /// Intended for trusted callers that already guarantee the simple-graph
    /// invariants: generators, partitioners, solvers wrapping their own
    /// output (a matching is trivially duplicate-free), and
    /// [`crate::view::GraphView::to_graph`]. Debug builds still assert the
    /// invariants.
    pub fn from_edges_unchecked(n: usize, edges: Vec<Edge>) -> Self {
        #[cfg(debug_assertions)]
        {
            let mut seen = HashSet::with_capacity(edges.len()); // xtask: allow(hash-collections)
            for e in &edges {
                debug_assert!(
                    (e.u as usize) < n && (e.v as usize) < n,
                    "endpoint out of range"
                );
                debug_assert!(e.u != e.v, "self loop");
                debug_assert!(seen.insert(*e), "duplicate edge {e:?}");
            }
        }
        Graph { n, edges }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edge list.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Consumes the graph and returns its edge list.
    #[inline]
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Returns `true` if the (canonicalized) edge `(a, b)` is present.
    ///
    /// This is a linear scan; use [`Adjacency`] for repeated queries.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        if a == b {
            return false;
        }
        let e = Edge::new(a, b);
        self.edges.contains(&e)
    }

    /// Builds an adjacency-list view of the graph.
    pub fn adjacency(&self) -> Adjacency {
        Adjacency::from_graph(self)
    }

    /// Degree of every vertex.
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n];
        for e in &self.edges {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        deg
    }

    /// Maximum degree, or 0 for an edgeless graph.
    pub fn max_degree(&self) -> usize {
        self.degrees().into_iter().max().unwrap_or(0)
    }

    /// Returns the subgraph consisting of the edges for which `keep` returns
    /// `true`. The vertex set (and vertex ids) are unchanged.
    pub fn filter_edges<F>(&self, mut keep: F) -> Graph
    where
        F: FnMut(&Edge) -> bool,
    {
        let edges = self.edges.iter().copied().filter(|e| keep(e)).collect();
        Graph { n: self.n, edges }
    }

    /// Returns the subgraph obtained by deleting every edge incident on a
    /// vertex in `removed`. Vertex ids are unchanged (removed vertices simply
    /// become isolated), which matches how the paper's peeling process treats
    /// `G_{j+1} = G_j \ V_j`.
    pub fn remove_vertices(&self, removed: &[VertexId]) -> Graph {
        let mut gone = vec![false; self.n];
        for &v in removed {
            if (v as usize) < self.n {
                gone[v as usize] = true;
            }
        }
        self.filter_edges(|e| !gone[e.u as usize] && !gone[e.v as usize])
    }

    /// Unions several graphs over the same vertex set, deduplicating edges.
    ///
    /// This is exactly the coordinator-side operation of the paper: the union
    /// of the coresets `ALG(G^(1)) ∪ ... ∪ ALG(G^(k))`.
    ///
    /// Unlike the validating constructors, the result keeps **first-occurrence
    /// order** (machine order, then each input's own order), not canonical
    /// sorted order — the composition step is defined over the coresets as
    /// sent, and downstream edge-order-sensitive algorithms (greedy maximal
    /// matching) rely on it.
    ///
    /// # Panics
    ///
    /// Panics if the graphs do not all have the same number of vertices.
    pub fn union(graphs: &[&Graph]) -> Graph {
        assert!(!graphs.is_empty(), "union of zero graphs is undefined");
        let n = graphs[0].n;
        assert!(
            graphs.iter().all(|g| g.n == n),
            "all graphs in a union must share the vertex set"
        );
        // The total edge count is known up front; preallocate both the seen
        // set and the output so the union never reallocates mid-build.
        let total: usize = graphs.iter().map(|g| g.edges.len()).sum();
        let mut seen: HashSet<Edge> = HashSet::with_capacity(total); // xtask: allow(hash-collections)
        let mut edges = Vec::with_capacity(total);
        for g in graphs {
            for &e in &g.edges {
                if seen.insert(e) {
                    edges.push(e);
                }
            }
        }
        Graph { n, edges }
    }

    /// Number of isolated (degree-zero) vertices.
    pub fn isolated_count(&self) -> usize {
        self.degrees().into_iter().filter(|&d| d == 0).count()
    }
}

/// Adjacency-list view of a [`Graph`].
///
/// Neighbour lists are stored sorted so that neighbourhood queries and
/// deterministic iteration are cheap.
#[derive(Debug, Clone)]
pub struct Adjacency {
    n: usize,
    neighbors: Vec<Vec<VertexId>>,
}

impl Adjacency {
    /// Builds the adjacency view of `g`.
    pub fn from_graph(g: &Graph) -> Self {
        let mut neighbors = vec![Vec::new(); g.n()];
        for e in g.edges() {
            neighbors[e.u as usize].push(e.v);
            neighbors[e.v as usize].push(e.u);
        }
        for list in &mut neighbors {
            list.sort_unstable();
        }
        Adjacency {
            n: g.n(),
            neighbors,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Neighbours of `v` in increasing order.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[v as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors[v as usize].len()
    }

    /// Returns `true` if `(a, b)` is an edge.
    #[inline]
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.neighbors[a as usize].binary_search(&b).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_pairs(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.isolated_count(), 5);
    }

    #[test]
    fn from_pairs_dedups() {
        let g = Graph::from_pairs(4, vec![(0, 1), (1, 0), (2, 3), (0, 1)]).unwrap();
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn from_pairs_rejects_self_loop() {
        let err = Graph::from_pairs(3, vec![(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { vertex: 1 });
    }

    #[test]
    fn from_pairs_rejects_out_of_range() {
        let err = Graph::from_pairs(3, vec![(0, 3)]).unwrap_err();
        assert_eq!(err, GraphError::VertexOutOfRange { vertex: 3, n: 3 });
    }

    #[test]
    fn degrees_and_max_degree() {
        let g = triangle();
        assert_eq!(g.degrees(), vec![2, 2, 2]);
        assert_eq!(g.max_degree(), 2);
        let star = Graph::from_pairs(4, vec![(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(star.degrees(), vec![3, 1, 1, 1]);
        assert_eq!(star.max_degree(), 3);
    }

    #[test]
    fn filter_and_remove_vertices() {
        let g = triangle();
        let no_02 = g.filter_edges(|e| *e != Edge::new(0, 2));
        assert_eq!(no_02.m(), 2);

        let removed = g.remove_vertices(&[0]);
        assert_eq!(removed.m(), 1);
        assert!(removed.has_edge(1, 2));
        assert_eq!(removed.n(), 3, "vertex set is preserved");
    }

    #[test]
    fn remove_vertices_ignores_out_of_range_ids() {
        let g = triangle();
        let same = g.remove_vertices(&[100]);
        assert_eq!(same.m(), 3);
    }

    #[test]
    fn union_dedups_and_preserves_n() {
        let a = Graph::from_pairs(4, vec![(0, 1), (1, 2)]).unwrap();
        let b = Graph::from_pairs(4, vec![(1, 2), (2, 3)]).unwrap();
        let u = Graph::union(&[&a, &b]);
        assert_eq!(u.n(), 4);
        assert_eq!(u.m(), 3);
    }

    #[test]
    #[should_panic(expected = "share the vertex set")]
    fn union_panics_on_mismatched_n() {
        let a = Graph::empty(3);
        let b = Graph::empty(4);
        let _ = Graph::union(&[&a, &b]);
    }

    #[test]
    fn adjacency_view() {
        let g = triangle();
        let adj = g.adjacency();
        assert_eq!(adj.n(), 3);
        assert_eq!(adj.neighbors(0), &[1, 2]);
        assert_eq!(adj.degree(1), 2);
        assert!(adj.has_edge(2, 0));
        assert!(!adj.has_edge(0, 0));
    }

    #[test]
    fn into_edges_round_trip() {
        let g = triangle();
        let edges = g.clone().into_edges();
        let g2 = Graph::from_edges(3, edges).unwrap();
        assert_eq!(g, g2);
    }
}
