//! Graph substrate for the randomized-composable-coresets reproduction.
//!
//! This crate provides every graph-shaped building block required by the
//! paper *Randomized Composable Coresets for Matching and Vertex Cover*
//! (Assadi & Khanna, SPAA 2017):
//!
//! * [`Graph`] — a simple undirected graph stored as an edge list with
//!   adjacency and CSR views ([`Adjacency`], [`Csr`]).
//! * [`BipartiteGraph`] — a bipartite graph with explicit left/right sides,
//!   used by the hard instances and by Hopcroft–Karp.
//! * [`WeightedGraph`] — edge-weighted graphs for the Crouch–Stubbs weighted
//!   extension.
//! * [`GraphView`] / [`GraphRef`] — borrowed, zero-copy edge-slice views and
//!   the representation-agnostic trait every solver in the workspace accepts.
//! * [`VertexCompactor`] — epoch-stamped relabeling of a graph onto its
//!   non-isolated vertices, the front door of the matching engine's solver
//!   hot path (sparse pieces over a huge vertex set).
//! * [`partition`] — the *random k-partitioning* of the edge set that defines
//!   the model of the paper, plus adversarial partitionings used as negative
//!   controls. [`PartitionedGraph`] stores the partition as a single
//!   machine-sorted edge arena whose pieces are zero-copy views.
//! * [`churn`] — the mutable overlay over the arena for edge-churn serving:
//!   churn-stable per-edge hash placement ([`edge_machine`]), per-machine
//!   insert/delete journals with threshold compaction, and piece fingerprints
//!   that make clean-piece coreset reuse provably sound.
//! * [`arena_file`] — a versioned binary on-disk format for partitioned edge
//!   arenas plus [`SegmentLoader`], which streams one machine segment at a
//!   time so 10⁷–10⁸-edge protocol runs never hold the whole arena resident.
//! * [`metrics`] — process-wide counters (edges materialized into owned
//!   per-machine graphs; legacy peeling scratch elements; resident-edge
//!   high-water accounting for the out-of-core path) backing the data-path
//!   experiment E12, the vertex-cover hot-path experiment E14, and the
//!   hierarchical-composition experiment E16.
//! * [`gen`] — graph generators: Erdős–Rényi, random bipartite, planted
//!   matchings, stars, power-law (Chung–Lu), and the paper's hard
//!   distributions `D_Matching` (Section 4.1/5.1) and `D_VC` (Section 4.2/5.3).
//! * [`stats`] — degree statistics used by the peeling analysis.
//!
//! All randomness flows through explicit [`rand::Rng`] arguments so that every
//! experiment in the workspace is reproducible from a single seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena_file;
pub mod bipartite;
pub mod churn;
pub mod compact;
pub mod csr;
pub mod edge;
pub mod error;
pub mod gen;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod partition;
pub mod stats;
pub mod view;
pub mod weighted;

pub use arena_file::{
    write_arena_file, write_arena_file_v1, ArenaFile, SegmentFault, SegmentFaultPlan,
    SegmentLoader, SegmentRetryPolicy,
};
pub use bipartite::BipartiteGraph;
pub use churn::{edge_machine, fingerprint_edges, ChurnOp, ChurnPartition};
pub use compact::VertexCompactor;
pub use csr::Csr;
pub use edge::{Edge, VertexId, WeightedEdge};
pub use error::GraphError;
pub use graph::{Adjacency, Graph};
pub use partition::{EdgePartition, PartitionStrategy, PartitionedGraph};
pub use view::{views_of, GraphRef, GraphView};
pub use weighted::WeightedGraph;

/// Convenience prelude re-exporting the items needed by most downstream code.
pub mod prelude {
    pub use crate::arena_file::{
        write_arena_file, write_arena_file_v1, ArenaFile, SegmentFault, SegmentFaultPlan,
        SegmentLoader, SegmentRetryPolicy,
    };
    pub use crate::bipartite::BipartiteGraph;
    pub use crate::churn::{edge_machine, fingerprint_edges, ChurnOp, ChurnPartition};
    pub use crate::csr::Csr;
    pub use crate::edge::{Edge, VertexId, WeightedEdge};
    pub use crate::error::GraphError;
    pub use crate::graph::{Adjacency, Graph};
    pub use crate::partition::{EdgePartition, PartitionStrategy, PartitionedGraph};
    pub use crate::view::{views_of, GraphRef, GraphView};
    pub use crate::weighted::WeightedGraph;
}
