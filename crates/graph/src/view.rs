//! Borrowed graph views and the [`GraphRef`] abstraction over edge-list
//! graphs.
//!
//! The paper's whole pipeline manipulates *pieces of one edge set*: the input
//! graph is randomly partitioned across `k` machines and every machine
//! computes on its own slice of the edges. [`GraphView`] is exactly that — a
//! vertex count plus a borrowed `&[Edge]` slice — so per-machine access into
//! a [`crate::partition::PartitionedGraph`] arena is zero-copy. [`GraphRef`]
//! abstracts over owned [`Graph`]s and borrowed [`GraphView`]s so that every
//! solver in the workspace (greedy, Hopcroft–Karp, blossom, peeling, …)
//! accepts either representation without cloning edges.
//!
//! Representation guide:
//!
//! * [`Graph`] — owned edge list; the canonical *storage* type for inputs,
//!   generator outputs and coordinator-side messages (coresets).
//! * [`GraphView`] — borrowed edge slice; the canonical *argument* type.
//!   Built for free from a `Graph` ([`GraphRef::as_view`]) or from a
//!   partition arena ([`crate::partition::PartitionedGraph::piece`]).
//! * [`Csr`] — compressed adjacency; the canonical *traversal* structure,
//!   built once per solver call from any [`GraphRef`] via [`Csr::from_ref`].

use crate::csr::Csr;
use crate::edge::{Edge, VertexId};
use crate::graph::Graph;

/// A borrowed, zero-copy view of a simple undirected graph: `n` vertices and
/// an edge slice living in someone else's allocation (an owned [`Graph`], a
/// [`crate::partition::PartitionedGraph`] arena, or any `&[Edge]`).
///
/// The view is `Copy` (two words) and upholds the same invariants as
/// [`Graph`]: endpoints `< n`, no self-loops, no duplicate edges.
#[derive(Debug, Clone, Copy)]
pub struct GraphView<'a> {
    n: usize,
    edges: &'a [Edge],
}

impl<'a> GraphView<'a> {
    /// Creates a view over a trusted edge slice.
    ///
    /// The caller guarantees the simple-graph invariants (generators,
    /// partitioners and [`Graph`] itself already do); debug builds assert
    /// them.
    pub fn new(n: usize, edges: &'a [Edge]) -> Self {
        #[cfg(debug_assertions)]
        {
            // Membership-only dedup probe; iteration order never observed.
            let mut seen = std::collections::HashSet::with_capacity(edges.len()); // xtask: allow(hash-collections)
            for e in edges {
                debug_assert!(
                    (e.u as usize) < n && (e.v as usize) < n,
                    "endpoint out of range"
                );
                debug_assert!(e.u != e.v, "self loop");
                debug_assert!(seen.insert(*e), "duplicate edge {e:?}");
            }
        }
        GraphView { n, edges }
    }

    /// Crate-internal constructor for slices whose invariants are guaranteed
    /// by construction (partition arenas), skipping even the debug checks —
    /// a partition arena would otherwise re-validate every piece on every
    /// access.
    #[inline]
    pub(crate) fn new_unchecked(n: usize, edges: &'a [Edge]) -> Self {
        GraphView { n, edges }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the view has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The borrowed edge slice.
    #[inline]
    pub fn edges(&self) -> &'a [Edge] {
        self.edges
    }

    /// Materializes the view into an owned [`Graph`], copying the edges.
    ///
    /// This is the *only* place the zero-copy data path pays for an owned
    /// per-piece graph, so the copy is recorded in
    /// [`crate::metrics::piece_edges_materialized`] — the allocation proxy
    /// that experiment E12 tracks.
    pub fn to_graph(&self) -> Graph {
        crate::metrics::record_piece_edges_materialized(self.edges.len());
        Graph::from_edges_unchecked(self.n, self.edges.to_vec())
    }
}

/// Abstraction over edge-list graph representations: anything with a vertex
/// count and a slice of canonical [`Edge`]s.
///
/// Implemented by [`Graph`] (owned) and [`GraphView`] (borrowed); every
/// solver in the `matching` and `vertexcover` crates is generic over it, so
/// the distributed pipelines can hand out arena-backed views without cloning
/// a single edge.
pub trait GraphRef {
    /// Number of vertices.
    fn n(&self) -> usize;

    /// The canonical edge list.
    fn edges(&self) -> &[Edge];

    /// Number of edges.
    #[inline]
    fn m(&self) -> usize {
        self.edges().len()
    }

    /// Returns `true` if there are no edges.
    #[inline]
    fn is_empty(&self) -> bool {
        self.edges().is_empty()
    }

    /// Degree of every vertex.
    fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n()];
        for e in self.edges() {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        deg
    }

    /// Maximum degree, or 0 for an edgeless graph.
    fn max_degree(&self) -> usize {
        self.degrees().into_iter().max().unwrap_or(0)
    }

    /// Number of isolated (degree-zero) vertices.
    fn isolated_count(&self) -> usize {
        self.degrees().into_iter().filter(|&d| d == 0).count()
    }

    /// Returns `true` if the (canonicalized) edge `(a, b)` is present.
    ///
    /// Linear scan; build a [`Csr`] for repeated queries.
    fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        if a == b {
            return false;
        }
        let e = Edge::new(a, b);
        self.edges().contains(&e)
    }

    /// A zero-copy view of this graph.
    #[inline]
    fn as_view(&self) -> GraphView<'_> {
        // The source already upholds the invariants; skip re-validation.
        GraphView {
            n: self.n(),
            edges: self.edges(),
        }
    }

    /// Builds the CSR adjacency of this graph (the canonical traversal
    /// structure).
    fn to_csr(&self) -> Csr
    where
        Self: Sized,
    {
        Csr::from_ref(self)
    }
}

impl GraphRef for Graph {
    #[inline]
    fn n(&self) -> usize {
        Graph::n(self)
    }

    #[inline]
    fn edges(&self) -> &[Edge] {
        Graph::edges(self)
    }
}

impl GraphRef for GraphView<'_> {
    #[inline]
    fn n(&self) -> usize {
        GraphView::n(self)
    }

    #[inline]
    fn edges(&self) -> &[Edge] {
        self.edges
    }
}

impl<'a> From<&'a Graph> for GraphView<'a> {
    #[inline]
    fn from(g: &'a Graph) -> Self {
        g.as_view()
    }
}

/// Zero-copy views of a slice of owned graphs (convenience for callers that
/// hold `Vec<Graph>` pieces but want to use the view-based runners).
pub fn views_of(graphs: &[Graph]) -> Vec<GraphView<'_>> {
    graphs.iter().map(|g| g.as_view()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_pairs(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn view_mirrors_graph() {
        let g = triangle();
        let v = g.as_view();
        assert_eq!(v.n(), 3);
        assert_eq!(v.m(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.edges(), g.edges());
        assert_eq!(GraphRef::degrees(&v), GraphRef::degrees(&g));
        assert_eq!(GraphRef::max_degree(&v), 2);
        assert!(GraphRef::has_edge(&v, 2, 0));
        assert!(!GraphRef::has_edge(&v, 0, 0));
    }

    #[test]
    fn view_round_trips_to_owned() {
        let g = triangle();
        let owned = g.as_view().to_graph();
        assert_eq!(owned, g);
    }

    #[test]
    fn view_over_raw_slice() {
        let edges = [Edge::new(0, 1), Edge::new(1, 2)];
        let v = GraphView::new(3, &edges);
        assert_eq!(v.m(), 2);
        assert_eq!(GraphRef::degrees(&v), vec![1, 2, 1]);
    }

    #[test]
    fn views_of_matches_sources() {
        let graphs = vec![triangle(), Graph::empty(2)];
        let views = views_of(&graphs);
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].m(), 3);
        assert_eq!(views[1].n(), 2);
        assert!(views[1].is_empty());
    }

    #[test]
    fn csr_from_view_matches_csr_from_graph() {
        let g = triangle();
        let a = Csr::from_graph(&g);
        let b = g.as_view().to_csr();
        for v in 0..3u32 {
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }
}
